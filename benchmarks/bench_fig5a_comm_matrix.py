"""Fig. 5a — the 1088-rank communication matrix of the traced §V execution.

Runs the full application + encoder-process execution through the
discrete-event MPI simulator (64 nodes × 17 ranks) and regenerates the
communication heat map. Claims under test: the east-west stencil exchange
dominates (the dark double diagonal), traffic is sparse (low-degree
communication graph), and intra-L1-cluster traffic dwarfs the logged
remainder.

This is the heaviest bench (a full 1088-rank simulated execution); the
benchmark runs one round.
"""

import numpy as np
import pytest

from benchmarks.conftest import FIG5_RUN_KW
from repro.core import experiment_fig5ab


@pytest.fixture(scope="module")
def study(fig5_study):
    return fig5_study


def bench_fig5a_full_trace(benchmark):
    """Time the full 1088-rank traced execution (50 iterations)."""
    result = benchmark.pedantic(
        experiment_fig5ab, kwargs=FIG5_RUN_KW, rounds=1, iterations=1
    )
    print("\n" + result.render_full(max_size=64))
    assert result.nranks == 1088
    halo = result.kind_matrices["halo"]
    assert halo.sum() / result.bytes_matrix.sum() > 0.8


class TestShape:
    def test_double_diagonal_dominates(self, study):
        """East-west (±1 app-rank) traffic carries most bytes."""
        halo = study.kind_matrices["halo"]
        ew = sum(
            halo[i, j]
            for i in range(study.nranks)
            for j in (i - 1, i + 1)
            if 0 <= j < study.nranks
        )
        assert ew / halo.sum() > 0.85

    def test_matrix_is_sparse_low_degree(self, study):
        """HPC communication graphs have low connectivity [15]."""
        partners = (study.bytes_matrix > 0).sum(axis=0)
        assert np.median(partners) <= 16

    def test_encoder_rows_carry_only_fti_traffic(self, study):
        halo = study.kind_matrices["halo"]
        for enc in study.encoder_ranks:
            assert halo[enc, :].sum() == 0
            assert halo[:, enc].sum() == 0

    def test_symmetric_stencil_traffic(self, study):
        halo = study.kind_matrices["halo"]
        np.testing.assert_allclose(halo, halo.T)
