"""Fig. 4a — reliability level, distributed vs. non-distributed clustering.

Paper setting: 128 nodes × 8 processes, cluster sizes 4/8/16, catastrophic
failure model of FTI [3]. Claims under test: non-distributed clustering is
orders of magnitude less reliable; for non-distributed clusters of 4 or 8
a single node failure can already be unrecoverable; distributed
reliability improves with cluster size.
"""

import pytest

from repro.core import experiment_fig4a

SIZES = (4, 8, 16)


@pytest.fixture(scope="module")
def study():
    return experiment_fig4a(sizes=SIZES)


def bench_fig4a(benchmark):
    """Time the reliability sweep (6 exact catastrophic-model evaluations)."""
    result = benchmark(experiment_fig4a, sizes=SIZES)
    print("\n" + result.render())
    for non, dist in zip(
        result.reliability_non_distributed, result.reliability_distributed
    ):
        assert non > dist * 1e3  # orders-of-magnitude gap


class TestShape:
    def test_small_nondistributed_die_on_single_node(self, study):
        """'For non-distributed clusters of 4 or 8 processes, one single
        node failure could lead to an unrecoverable failure.'"""
        for size, p in zip(study.sizes, study.reliability_non_distributed):
            if size in (4, 8):
                assert p == pytest.approx(0.95, abs=0.01)

    def test_distributed_orders_of_magnitude_better(self, study):
        for non, dist in zip(
            study.reliability_non_distributed, study.reliability_distributed
        ):
            assert non / max(dist, 1e-300) > 1e3

    def test_distributed_reliability_improves_with_size(self, study):
        ps = study.reliability_distributed
        assert ps[0] > ps[1] > ps[2]

    def test_monte_carlo_agrees_with_closed_form(self):
        """Cross-validate the analytic model by sampling (fragile case)."""
        from repro.clustering import size_guided_clustering
        from repro.failures import CatastrophicModel, MonteCarloEstimator
        from repro.machine import BlockPlacement

        placement = BlockPlacement(128, 8)
        model = CatastrophicModel(placement)
        clustering = size_guided_clustering(1024, 8)
        exact = model.probability(clustering)
        mc = MonteCarloEstimator(model, rng=42).estimate(clustering, 2000)
        assert mc == pytest.approx(exact, abs=0.02)
