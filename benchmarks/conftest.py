"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure from the paper's
evaluation section: it regenerates the same rows/series, prints them (run
with ``-s`` to see the rendered exhibits), and asserts the paper's *shape*
claims — orderings, crossovers and rough factors — hold. Absolute numbers
are not expected to match: the substrate is a simulator, not TSUBAME2.

Performance notes
-----------------
The sampling-heavy benches (``bench_montecarlo_validation``,
``bench_campaign``) run on the batched evaluation engine: failure events
are drawn as whole NumPy batches and scored by indexing the precomputed
per-(clustering, placement) lookup tables of :mod:`repro.core.tables`,
which the session-scoped fixtures below implicitly share across benches
(tables are memoized on the clustering/placement objects). To profile the
hot path or record the perf trajectory, run
``PYTHONPATH=src python benchmarks/record_bench.py`` — it times the scalar
reference path against the batched engine at ``n_samples=2000`` and
appends samples/sec to ``BENCH_montecarlo.json``; for finer profiling,
``python -m cProfile -m benchmarks.record_bench`` attributes the remaining
time (it should be RNG draws and table lookups, not per-event Python).
"""

from __future__ import annotations

import pytest

from repro.core import ClusteringEvaluator, paper_scenario


@pytest.fixture(scope="session")
def scenario():
    """The §V evaluation scenario (synthetic matrix, 100 iterations)."""
    return paper_scenario(iterations=100)


@pytest.fixture(scope="session")
def evaluator(scenario):
    return ClusteringEvaluator(scenario)


@pytest.fixture(scope="session")
def table2_report(evaluator):
    """Session-cached Table II evaluation (used by several benches)."""
    return evaluator.evaluate_all()


#: Shared parameters of the heavy Fig. 5 traced execution.
FIG5_RUN_KW = dict(nodes=64, app_per_node=16, iterations=50, checkpoint_every=25)


@pytest.fixture(scope="session")
def fig5_study():
    """One shared 1088-rank traced execution for the Fig. 5a/5b shape tests."""
    from repro.core import experiment_fig5ab

    return experiment_fig5ab(**FIG5_RUN_KW)
