"""End-to-end protocol benchmark: checkpoint, fail, recover, verify.

Times the complete FTI+HydEE pipeline on a simulated 8-node machine —
protocol-supervised execution (coordinated checkpoints, RS encoding,
message logging), a node failure with SSD loss, erasure-decode restore,
log replay, and bit-exact verification — the mechanism behind the paper's
recovery-cost dimension, exercised for real rather than modeled.
"""

import numpy as np
import pytest

from repro.apps import ExecutionMode, TsunamiConfig, TsunamiSimulation
from repro.clustering import Clustering
from repro.failures import FailureEvent
from repro.hydee import RecoveryManager, run_with_protocol
from repro.machine import Machine
from repro.simmpi import run_program


def build_setup(iterations=16, use_waves=True):
    mode = ExecutionMode.KERNELS if use_waves else ExecutionMode.PER_MESSAGE
    cfg = TsunamiConfig(px=4, py=4, nx=32, ny=32, iterations=iterations,
                        allreduce_every=5, mode=mode)
    sim = TsunamiSimulation(cfg)
    machine = Machine(8, 2)
    l1 = np.array([0] * 8 + [1] * 8)
    l2 = np.array([(r // 2 // 4) * 2 + (r % 2) for r in range(16)])
    clustering = Clustering("hier-8-4", l1, l2)
    return sim, machine, clustering


def bench_protocol_run(benchmark):
    """Time a 16-iteration protocol-supervised run (16 ranks, ckpt every 6)."""

    def run():
        sim, machine, clustering = build_setup()
        return run_with_protocol(
            sim, machine, clustering, iterations=16, checkpoint_every=6
        )

    result = benchmark(run)
    assert result.checkpointer.stats.local_writes == 16 * 3  # v0, v6, v12
    assert result.log.logged_messages > 0


def bench_contained_recovery(benchmark):
    """Time restore + replay after a node failure (decode path included)."""

    def run():
        sim, machine, clustering = build_setup()
        protocol_run = run_with_protocol(
            sim, machine, clustering, iterations=16, checkpoint_every=6
        )
        manager = RecoveryManager(sim, machine, protocol_run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1,)), failure_iteration=16
        )
        return sim, result

    sim, result = benchmark(run)
    assert result.rollback_iteration == 12
    assert sorted(result.decoded_ranks()) == [2, 3]
    reference = run_program(sim.make_program(iterations=16), 16)
    for rank in result.restarted_ranks:
        np.testing.assert_array_equal(
            result.recovered_states[rank]["eta"], reference[rank]["eta"]
        )


def bench_protocol_run_permsg(benchmark):
    """The per-message reference of :func:`bench_protocol_run`.

    Same protocol-supervised run with ``use_waves=False`` — the halo loop
    posts one engine interaction per message instead of one wave. The
    delta between the two benches is the wave win with the full protocol
    observer stack (message log + receive counting) live.
    """

    def run():
        sim, machine, clustering = build_setup(use_waves=False)
        return run_with_protocol(
            sim, machine, clustering, iterations=16, checkpoint_every=6
        )

    result = benchmark(run)
    assert result.checkpointer.stats.local_writes == 16 * 3


class TestWaveEquivalence:
    """The wave-native protocol run is indistinguishable end-to-end."""

    def test_wave_run_matches_per_message_run(self):
        # Shared equivalence contract (same-directory module, like the
        # tests' sibling imports): one owner for what "indistinguishable"
        # means, used by both this test and the bench recorder.
        from record_bench import assert_protocol_runs_equal

        runs = {}
        for use_waves in (False, True):
            sim, machine, clustering = build_setup(use_waves=use_waves)
            runs[use_waves] = run_with_protocol(
                sim, machine, clustering, iterations=16, checkpoint_every=6
            )
        assert_protocol_runs_equal(runs[False], runs[True])

    def test_wave_run_recovers_identically(self):
        """A node failure after a wave-native run replays (per-message,
        through the ReplayCommunicator fallback) to the same states a
        per-message original run recovers to."""
        recovered = {}
        for use_waves in (False, True):
            sim, machine, clustering = build_setup(use_waves=use_waves)
            protocol_run = run_with_protocol(
                sim, machine, clustering, iterations=16, checkpoint_every=6
            )
            manager = RecoveryManager(sim, machine, protocol_run)
            result = manager.recover(
                FailureEvent(kind="node", nodes=(1,)), failure_iteration=16
            )
            manager.verify_send_determinism(result)
            recovered[use_waves] = result
        ref, waved = recovered[False], recovered[True]
        assert sorted(ref.restarted_ranks) == sorted(waved.restarted_ranks)
        for rank in ref.restarted_ranks:
            np.testing.assert_array_equal(
                ref.recovered_states[rank]["eta"],
                waved.recovered_states[rank]["eta"],
            )


class TestEndToEndProperties:
    def test_protocol_overhead_accounted_in_virtual_time(self):
        sim, machine, clustering = build_setup()
        with_ft = run_with_protocol(
            sim, machine, clustering, iterations=16, checkpoint_every=6
        )
        assert with_ft.checkpointer.stats.total_encode_time_s > 0
        assert with_ft.engine.max_time > 0

    def test_recovery_restart_fraction_matches_model(self):
        """The protocol's actual restart set equals the analytic
        recovery-cost model's prediction."""
        from repro.models import restart_set_for_nodes

        sim, machine, clustering = build_setup()
        protocol_run = run_with_protocol(
            sim, machine, clustering, iterations=16, checkpoint_every=6
        )
        manager = RecoveryManager(sim, machine, protocol_run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(3,)), failure_iteration=16
        )
        predicted = restart_set_for_nodes(clustering, machine.placement, [3])
        assert sorted(result.restarted_ranks) == sorted(predicted.tolist())

    def test_logged_fraction_matches_graph_model(self):
        """Observed protocol logging equals the CommGraph prediction."""
        from repro.commgraph import graph_from_trace

        sim, machine, clustering = build_setup()
        protocol_run = run_with_protocol(
            sim, machine, clustering, iterations=16, checkpoint_every=6,
            trace=True,
        )
        graph = graph_from_trace(protocol_run.engine.tracer)
        assert protocol_run.logged_fraction_observed == pytest.approx(
            graph.logged_fraction(clustering.l1_labels)
        )
