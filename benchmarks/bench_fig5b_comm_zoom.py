"""Fig. 5b — zoom on the first 68 ranks of the traced execution.

Every structural feature the paper narrates must be present:

* the blue double diagonal (boundary exchange) interrupted at ranks
  0, 17, 34, 51 — the four encoding processes of the first 4 nodes;
* light horizontal lines at the encoder rows (app→encoder checkpoint
  notifications);
* isolated points at encoder-row × encoder-column intersections (the
  Reed–Solomon exchange between encoders);
* light diagonals starting at power-of-two ranks (MPICH2's
  ``MPI_Allgather`` during FTI initialization).
"""

import numpy as np
import pytest

from benchmarks.conftest import FIG5_RUN_KW
from repro.core import experiment_fig5ab


@pytest.fixture(scope="module")
def study(fig5_study):
    return fig5_study


def bench_fig5b_zoom(benchmark):
    """Time trace + zoom extraction, and render the 68-rank corner."""
    result = benchmark.pedantic(
        experiment_fig5ab, kwargs=FIG5_RUN_KW, rounds=1, iterations=1
    )
    result.zoom_size = 68
    print("\n" + result.render_zoom())
    assert result.zoom.shape == (68, 68)
    assert result.encoder_ranks[:4] == [0, 17, 34, 51]


class TestFig5bFeatures:
    def test_encoder_ranks_are_0_17_34_51(self, study):
        assert study.encoder_ranks[:4] == [0, 17, 34, 51]

    def test_diagonals_interrupted_at_encoders(self, study):
        """'the diagonals get interrupted for ranks 0, 17, 34 and 51'."""
        halo = study.kind_matrices["halo"][:68, :68]
        for enc in (0, 17, 34, 51):
            assert halo[enc, :].sum() == 0
            assert halo[:, enc].sum() == 0
        # ... but present between adjacent app ranks.
        assert halo[1, 2] > 0 and halo[2, 1] > 0

    def test_horizontal_lines_at_encoder_rows(self, study):
        """'four short horizontal lines ... at 0, 17, 34 and 51 (y axis)
        which correspond to the few communications done between the
        application processes and the encoding process'."""
        ready = study.kind_matrices["fti-ready"][:68, :68]
        for enc, apps in ((0, range(1, 17)), (17, range(18, 34))):
            for app in apps:
                assert ready[enc, app] > 0
        # Ready traffic is tiny next to the stencil exchange.
        halo = study.kind_matrices["halo"]
        assert ready.sum() < 0.01 * halo.sum()

    def test_isolated_points_between_encoders(self, study):
        """'isolated points at the intersections of processes 0, 17, 34
        and 51 ... communications done between the encoding processes'."""
        ring = study.kind_matrices["fti-encode"][:68, :68]
        assert ring.sum() > 0
        nz = np.transpose(np.nonzero(ring))
        for dst, src in nz:
            assert dst in (0, 17, 34, 51) and src in (0, 17, 34, 51)

    def test_allgather_power_of_two_diagonals(self, study):
        """'diagonals in light blue starting ... from processes with a
        power-of-two rank ... MPI_Allgather ... during initialization'."""
        ag = study.kind_matrices["allgather"]
        distances = set()
        nz = np.transpose(np.nonzero(ag))
        for dst, src in nz:
            distances.add((src - dst) % study.nranks)
        # Bruck over 1088 ranks: all ring distances are powers of two.
        for d in distances:
            assert d & (d - 1) == 0, f"non power-of-two distance {d}"
