"""Capstone — month-long failure campaigns: the four dimensions composed.

The paper's conclusion promises "a complete CR solution that minimizes
both the checkpointing overhead and the recovery cost". This bench checks
the composition: simulate month-long campaigns of MTBF-distributed
failures against each clustering's concrete checkpoint, restore, and
catastrophic-rollback costs, and report the end-to-end machine efficiency.
The hierarchical clustering must waste the least — and for the reasons the
paper gives (cheap encoding every interval, contained recoveries, no
catastrophic rollbacks).
"""

import pytest

from repro.clustering import (
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.models import CampaignConfig, CampaignSimulator
from repro.util.tables import AsciiTable
from repro.util.units import format_duration

CONFIG = CampaignConfig(
    horizon_s=30 * 24 * 3600.0,
    checkpoint_interval_s=1800.0,
    node_mtbf_s=0.25 * 365 * 24 * 3600.0,  # a stressed machine
)


def _strategies(scenario):
    return [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(scenario.placement, 16),
        hierarchical_clustering(
            scenario.node_comm_graph(),
            scenario.placement,
            cost=scenario.partition_cost,
        ),
    ]


def bench_campaign_month(benchmark, scenario):
    """Time 4 strategies × 3 sampled month-long campaigns."""
    simulator = CampaignSimulator(scenario.machine, CONFIG)
    strategies = _strategies(scenario)

    def run():
        results = {}
        for i, clustering in enumerate(strategies):
            runs = [
                simulator.run(clustering, rng=100 * i + k) for k in range(3)
            ]
            results[clustering.name] = runs
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        [
            "clustering",
            "failures",
            "catastrophic",
            "ckpt overhead",
            "rework+restore",
            "waste %",
        ],
        title="Month-long campaign (half-hour checkpoints, stressed MTBF)",
    )
    mean_waste = {}
    for name, runs in results.items():
        waste = sum(r.waste_fraction for r in runs) / len(runs)
        mean_waste[name] = waste
        table.add_row(
            [
                name,
                sum(r.n_failures for r in runs),
                sum(r.n_catastrophic for r in runs),
                format_duration(sum(r.checkpoint_overhead_s for r in runs) / 3),
                format_duration(
                    sum(r.rework_s + r.restore_s for r in runs) / 3
                ),
                f"{100 * waste:.2f}",
            ]
        )
    print("\n" + table.render())
    assert min(mean_waste, key=mean_waste.get) == "hierarchical-64-4"
    # The composed gap is material: hierarchical halves naive's waste.
    assert mean_waste["hierarchical-64-4"] < mean_waste["naive-32"] / 2


class TestCampaignShape:
    @pytest.fixture(scope="class")
    def results(self, scenario):
        simulator = CampaignSimulator(scenario.machine, CONFIG)
        return {
            c.name: [simulator.run(c, rng=7 * k) for k in range(3)]
            for c in _strategies(scenario)
        }

    def test_hierarchical_never_catastrophic(self, results):
        assert all(
            r.n_catastrophic == 0 for r in results["hierarchical-64-4"]
        )

    def test_size_guided_catastrophes_dominate_its_waste(self, results):
        runs = results["size-guided-8"]
        assert sum(r.n_catastrophic for r in runs) > 0
        penalized = [r for r in runs if r.n_catastrophic]
        for r in penalized:
            assert r.catastrophic_penalty_s > r.rework_s

    def test_naive_pays_in_checkpoint_overhead(self, results):
        naive = results["naive-32"][0]
        hier = results["hierarchical-64-4"][0]
        assert naive.checkpoint_overhead_s > 4 * hier.checkpoint_overhead_s

    def test_every_campaign_saw_failures(self, results):
        for runs in results.values():
            assert sum(r.n_failures for r in runs) > 0
