"""Fig. 4c — restart cost, distributed vs. non-distributed (64 × 16).

Paper claim: "one single node failure forces 16 nodes to restart" under
16-wide distribution; at 32-process clusters the recovery cost grows from
3 % (non-distributed) to 50 % (distributed).
"""

import pytest

from repro.core import experiment_fig4bc

SIZES = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def study(scenario):
    return experiment_fig4bc(scenario, sizes=SIZES)


def bench_fig4c(benchmark, scenario):
    """Time the restart-cost sweep."""
    result = benchmark(experiment_fig4bc, scenario, sizes=SIZES)
    print("\n" + result.render())
    i = result.sizes.index(32)
    assert result.restart_non_distributed[i] == pytest.approx(0.031, abs=0.002)
    assert result.restart_distributed[i] == pytest.approx(0.50)


class TestShape:
    def test_headline_3_vs_50_percent(self, study):
        i = study.sizes.index(32)
        assert study.restart_non_distributed[i] == pytest.approx(
            0.031, abs=0.002
        )
        assert study.restart_distributed[i] == pytest.approx(0.50)

    def test_one_node_failure_forces_16_nodes(self, study):
        """At size 16: the restarted set spans a full 16-node band = 25 %."""
        i = study.sizes.index(16)
        assert study.restart_distributed[i] == pytest.approx(0.25)

    def test_distribution_always_worse(self, study):
        for non, dist in zip(
            study.restart_non_distributed, study.restart_distributed
        ):
            assert dist >= non

    def test_distributed_restart_grows_with_size(self, study):
        assert study.restart_distributed == sorted(study.restart_distributed)
