"""Record the Monte-Carlo / campaign / simmpi / fuzzer trajectories in-tree.

Three artifact files at the repo root, one record appended per run:

* ``BENCH_montecarlo.json`` — the failure-sampling hot paths both ways
  (per-event scalar reference vs the batched engine) on the TSUBAME2 paper
  scenario, plus a batched month-long campaign sweep;
* ``BENCH_simmpi.json`` — the §V traced discrete-event execution (1088
  world ranks) timed four ways: the generator cascade reference
  (``use_fast_collectives=False``), the fast-collective per-message run,
  the *wave-native* run (every steady-state p2p loop posted as
  persistent-request waves, ``use_waves=True`` on the app config), and
  the *kernelized* run (the wave loops compiled into whole-world
  iteration kernels, ``use_kernels=True``) — asserting byte-identical
  traces and bit-identical per-rank clocks across all four, the ≥5×
  cascade floor, (against the last pre-wave record) the ≥1.3×
  wave-over-engine floor, and (against the last pre-kernel record) the
  ≥2× kernel-over-wave floor; plus a
  split-communicator workload (per-iteration group allreduce) with a ≥3×
  floor, a stencil halo workload timed scalar/batched/wave on the
  struct-of-arrays message pool (≥2× over the recorded PR 3 batched
  path), and the end-to-end HydEE protocol run (sender-based logging +
  receive counting live) wave vs per-message;
* ``BENCH_fuzzer.json`` — one steered adversarial fuzz campaign
  (``repro fuzz``): scenarios/s through the full engine+protocol
  executor, classification histogram, per-actor coverage, disagreement
  rate and the shrunken minimal repros.

Each record also carries small ``gate`` measurements (same code paths,
reduced shapes) that ``tests/test_perf_gate.py`` re-runs on every tier-1
verify and compares against the last recorded values, so a >2× regression
of any hot path fails CI rather than silently bending the curve.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [--n-samples 2000]
    PYTHONPATH=src python benchmarks/record_bench.py --smoke   # CI job
    PYTHONPATH=src python benchmarks/record_bench.py \
        --out-dir bench-artifacts --diff-baseline   # nightly trajectory

The speedup floors (and the ``--diff-baseline`` report) are enforced
locally and skipped on hosted CI runners (``CI`` set without
``PERF_GATE``): shared runners are not the machine class the in-tree
trajectory describes. Set ``PERF_GATE=1`` to enforce anywhere.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.clustering import (
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core import (
    montecarlo_scores_scalar,
    paper_scenario,
    query_for,
    run_query,
)
from repro.models import CampaignConfig, CampaignSimulator

ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = ROOT / "BENCH_montecarlo.json"
SIMMPI_ARTIFACT = ROOT / "BENCH_simmpi.json"
FUZZER_ARTIFACT = ROOT / "BENCH_fuzzer.json"
SERVICE_ARTIFACT = ROOT / "BENCH_service.json"
MIN_SPEEDUP = 10.0
MIN_SIMMPI_SPEEDUP = 5.0
MIN_SPLIT_SPEEDUP = 3.0
MIN_P2P_WAVE_SPEEDUP = 2.0
#: Floor of the wave-native fig5 run against the last recorded pre-wave
#: engine baseline (applies exactly once: for the first wave record).
MIN_FIG5_WAVE_SPEEDUP = 1.3
#: Floor of the kernelized fig5 run against the last recorded pre-kernel
#: wave baseline (applies exactly once: for the first kernel record).
MIN_FIG5_KERNEL_SPEEDUP = 2.0
#: Floor of the 4-shard fig5 run against the single-process engine.
#: Parallel shards need parallel hardware, so — unlike the other floors —
#: this one is additionally gated on ``os.cpu_count() >= 4``; hosts with
#: fewer cores record honest (unscaled) numbers alongside their core
#: count instead.
MIN_SHARDED_SPEEDUP = 1.5


def _floors_enforced() -> bool:
    """Whether speedup floors (and baseline diffs) should fail the run.

    Same convention as ``tests/test_perf_gate.py``: enforced locally,
    skipped on hosted CI runners (``CI`` set) unless ``PERF_GATE=1``
    forces them — the recorded baselines describe the machine class that
    maintains the trajectory, not arbitrary shared runners.
    """
    return not bool(os.environ.get("CI")) or bool(os.environ.get("PERF_GATE"))


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=ARTIFACT.parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _strategies(scenario):
    return [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(scenario.placement, 16),
        hierarchical_clustering(
            scenario.node_comm_graph(),
            scenario.placement,
            cost=scenario.partition_cost,
        ),
    ]


def time_montecarlo(scenario, strategies, n_samples: int, seed: int = 42):
    """Time scalar vs batched sampling; assert statistical equivalence.

    The batched path goes through the :class:`ReliabilityQuery` API
    (``query_for`` + ``run_query``) — seed-for-seed identical to the old
    ``montecarlo_scores(..., rng=seed)`` call it replaced.
    """
    per_strategy = []
    scalar_total = batched_total = 0.0
    for clustering in strategies:
        # Warm the lookup-table caches outside the timed region so both
        # paths are measured on identical footing.
        run_query(query_for(scenario, clustering, n_samples=2, seed=0))

        t0 = time.perf_counter()
        scalar = montecarlo_scores_scalar(
            scenario, clustering, n_samples=n_samples, rng=seed
        )
        t1 = time.perf_counter()
        batched = run_query(
            query_for(scenario, clustering, n_samples=n_samples, seed=seed)
        )
        t2 = time.perf_counter()

        restart_mean = batched.value("restart_fraction_mean")
        cat_rate = batched.value("catastrophic_rate")
        if (
            abs(restart_mean - scalar.restart_fraction_mean) >= 0.01
            or abs(cat_rate - scalar.catastrophic_rate) >= 0.03
        ):
            raise RuntimeError(
                f"{clustering.name}: batched and scalar paths disagree — "
                f"restart {restart_mean:.4f} vs "
                f"{scalar.restart_fraction_mean:.4f}, cat rate "
                f"{cat_rate:.4f} vs {scalar.catastrophic_rate:.4f}"
            )

        scalar_s, batched_s = t1 - t0, t2 - t1
        scalar_total += scalar_s
        batched_total += batched_s
        per_strategy.append(
            {
                "clustering": clustering.name,
                "scalar_s": round(scalar_s, 6),
                "batched_s": round(batched_s, 6),
                "speedup": round(scalar_s / batched_s, 1),
                "restart_fraction_mean": round(restart_mean, 6),
                "catastrophic_rate": round(cat_rate, 6),
            }
        )
    return {
        "n_samples": n_samples,
        "scalar_samples_per_s": round(
            n_samples * len(strategies) / scalar_total
        ),
        "batched_samples_per_s": round(
            n_samples * len(strategies) / batched_total
        ),
        "speedup": round(scalar_total / batched_total, 1),
        "per_strategy": per_strategy,
    }


def time_campaign(scenario, strategies, n_runs: int = 3):
    """Time the batched month-long campaign sweep of ``bench_campaign``."""
    simulator = CampaignSimulator(
        scenario.machine,
        CampaignConfig(
            horizon_s=30 * 24 * 3600.0,
            checkpoint_interval_s=1800.0,
            node_mtbf_s=0.25 * 365 * 24 * 3600.0,
        ),
    )
    t0 = time.perf_counter()
    n_failures = 0
    for i, clustering in enumerate(strategies):
        for k in range(n_runs):
            n_failures += simulator.run(clustering, rng=100 * i + k).n_failures
    elapsed = time.perf_counter() - t0
    return {
        "campaigns": len(strategies) * n_runs,
        "total_failures": n_failures,
        "total_s": round(elapsed, 4),
        "campaigns_per_s": round(len(strategies) * n_runs / elapsed, 1),
    }


def measure_batched_montecarlo(
    scenario=None, strategies=None, *, n_samples: int = 2000, repeats: int = 3
) -> float:
    """Batched-path samples/sec (best of ``repeats``) — the CI gate probe."""
    scenario = scenario or paper_scenario(iterations=5)
    strategies = strategies or _strategies(scenario)
    queries = [
        query_for(scenario, clustering, n_samples=n_samples, seed=42)
        for clustering in strategies
    ]
    for query in queries:  # warm the lookup-table caches
        run_query(query)
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        for query in queries:
            run_query(query)
        elapsed = time.perf_counter() - t0
        best = max(best, n_samples * len(strategies) / elapsed)
    return best


# ---------------------------------------------------------------------------
# simmpi: the §V traced discrete-event execution
# ---------------------------------------------------------------------------


def _fig5_setup(
    nodes: int,
    app_per_node: int,
    iterations: int,
    *,
    use_waves: bool = True,
    use_kernels: bool = False,
):
    """Programs + placement + network of one §V-style traced execution.

    ``use_waves`` selects the wave-native steady-state loops or the
    per-message reference; ``use_kernels`` additionally compiles the
    steady loops into whole-world iteration kernels (the production
    shape). Messages, traces and clocks are identical all three ways
    (asserted by :func:`time_simmpi`).
    """
    from repro.apps.tsunami import TsunamiConfig, TsunamiSimulation
    from repro.apps.workload import ExecutionMode
    from repro.ftilib.tracesim import FTITraceConfig, make_fti_world_programs
    from repro.machine.placement import FTIPlacement
    from repro.machine.tsubame2 import tsubame2_fti_machine

    n_app = nodes * app_per_node
    px = 32 if n_app == 1024 else int(np.sqrt(n_app))
    py = n_app // px
    if use_kernels:
        mode = ExecutionMode.KERNELS
    elif use_waves:
        mode = ExecutionMode.WAVES
    else:
        mode = ExecutionMode.PER_MESSAGE
    cfg = TsunamiConfig(
        px=px,
        py=py,
        nx=32 * px,
        ny=768 * py if n_app == 1024 else 32 * py,
        iterations=iterations,
        synthetic=True,
        allreduce_every=0,
        mode=mode,
    )
    sim = TsunamiSimulation(cfg)
    placement = FTIPlacement(nodes, app_per_node)
    programs = make_fti_world_programs(
        sim,
        placement,
        iterations=iterations,
        trace_cfg=FTITraceConfig(checkpoint_every=25),
    )
    network = tsubame2_fti_machine(nodes, app_per_node).network
    return placement, programs, network


def _run_traced(placement, programs, network, *, fast: bool):
    from repro.simmpi.engine import Engine
    from repro.simmpi.tracing import TraceRecorder

    tracer = TraceRecorder(placement.nranks, by_kind=True)
    engine = Engine(
        placement.nranks,
        network=network,
        tracer=tracer,
        use_fast_collectives=fast,
    )
    # Earlier runs leave cyclic garbage (generator frames, request
    # graphs); collect it now so a GC pause triggered by the previous
    # run's debris never lands inside this run's timed region.
    gc.collect()
    t0 = time.perf_counter()
    engine.run(programs)
    elapsed = time.perf_counter() - t0
    return tracer, engine.rank_times(), elapsed


def measure_simmpi(
    *,
    nodes: int = 16,
    app_per_node: int = 4,
    iterations: int = 10,
    repeats: int = 3,
    use_kernels: bool = False,
) -> float:
    """Fast-path rank-iterations/sec of a traced run — the CI gate probe.

    One untimed warm-up run absorbs first-call costs (imports, the network
    model's node-vector cache, NumPy dispatch); the best of ``repeats``
    timed runs is reported so the gate compares warm rates on both sides.
    ``use_kernels`` probes the kernelized steady-state path instead of
    the interpreted wave loop.
    """
    placement, programs, network = _fig5_setup(
        nodes, app_per_node, iterations, use_kernels=use_kernels
    )
    _run_traced(placement, programs, network, fast=True)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        _, _, elapsed = _run_traced(placement, programs, network, fast=True)
        best = min(best, elapsed)
    return placement.nranks * iterations / best


# -- split-communicator collectives (group-aware fast paths) ---------------


def _sixteen_per_node(rank: int) -> int:
    """Locator for the split/stencil benchmarks (module-level, picklable)."""
    return rank // 16


def _bench_network():
    from repro.simmpi.network import LinkParameters, NetworkModel

    return NetworkModel(
        intra_node=LinkParameters(5e-7, 6.0e9),
        inter_node=LinkParameters(2e-6, 8.0e9),
        locator=_sixteen_per_node,
    )


def _split_workload(group_size: int, iterations: int):
    """The paper's multi-group shape: per-iteration allreduce per group."""

    def program(ctx):
        ctx.advance(1e-6 * ctx.rank)
        grp = yield from ctx.comm.split(color=ctx.rank // group_size)
        value = np.full(16, float(ctx.rank))
        for _ in range(iterations):
            value = yield from grp.allreduce(value)
        return float(value[0])

    return program


def _run_split(nranks: int, group_size: int, iterations: int, *, fast: bool):
    from repro.simmpi.engine import Engine
    from repro.simmpi.tracing import TraceRecorder

    tracer = TraceRecorder(nranks, by_kind=True)
    engine = Engine(
        nranks,
        network=_bench_network(),
        tracer=tracer,
        use_fast_collectives=fast,
    )
    t0 = time.perf_counter()
    results = engine.run(_split_workload(group_size, iterations))
    elapsed = time.perf_counter() - t0
    return results, engine.rank_times(), tracer, elapsed


def measure_simmpi_split(
    *,
    nranks: int = 128,
    group_size: int = 16,
    iterations: int = 10,
    repeats: int = 3,
) -> float:
    """Fast-path rank-iterations/sec of the split workload — CI gate probe."""
    _run_split(nranks, group_size, iterations, fast=True)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        *_, elapsed = _run_split(nranks, group_size, iterations, fast=True)
        best = min(best, elapsed)
    return nranks * iterations / best


def time_simmpi_split(
    *, nranks: int = 256, group_size: int = 16, iterations: int = 25
) -> dict:
    """Time the split-communicator allreduce workload cascade vs fast.

    Asserts the group-aware fast path is byte-identical in traces and
    bit-identical in virtual clocks versus the generator cascade.
    """
    res_slow, clocks_slow, tracer_slow, slow_s = _run_split(
        nranks, group_size, iterations, fast=False
    )
    res_fast, clocks_fast, tracer_fast, fast_s = _run_split(
        nranks, group_size, iterations, fast=True
    )
    if res_slow != res_fast:
        raise RuntimeError("split fast path results diverge from the cascade")
    if clocks_slow != clocks_fast:
        raise RuntimeError("split fast path clocks diverge from the cascade")
    if not np.array_equal(tracer_slow.bytes_matrix, tracer_fast.bytes_matrix):
        raise RuntimeError("split fast path trace bytes diverge from the cascade")
    if not np.array_equal(tracer_slow.count_matrix, tracer_fast.count_matrix):
        raise RuntimeError("split fast path message counts diverge from the cascade")
    return {
        "nranks": nranks,
        "group_size": group_size,
        "groups": nranks // group_size,
        "iterations": iterations,
        "slow_s": round(slow_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(slow_s / fast_s, 1),
        "ranks_per_s": round(nranks * iterations / fast_s),
    }


# -- stencil p2p (message pool + wave posting) -------------------------------


def _stencil_grid(px: int = 32, py: int = 32):
    from repro.apps.stencil import ProcessGrid

    return ProcessGrid(px=px, py=py, nx=8 * px, ny=8 * py)


def _stencil_program(grid, iterations: int):
    """The per-message reference program: isend/irecv/wait per halo edge."""
    from repro.apps.stencil import synthetic_halo_exchange

    def program(ctx):
        for _ in range(iterations):
            yield from synthetic_halo_exchange(ctx.comm, grid, nfields=3)
        return ctx.now

    return program


def _stencil_wave_program(grid, iterations: int):
    """The persistent-wave program: one start + one drain per iteration.

    Same messages, tags and posting order as :func:`_stencil_program` —
    the engine's equivalence contract (and the asserts below) pin traces
    byte-identical and clocks bit-identical between the two.
    """
    from repro.apps.stencil import halo_wave_init

    def program(ctx):
        comm = ctx.comm
        wave, recvs = halo_wave_init(comm, grid, nfields=3)
        start = comm.start_all_op(wave)
        drain = comm.waitall_op(recvs)
        for _ in range(iterations):
            yield start
            yield drain
        return ctx.now

    return program


def _run_stencil(grid, program, *, batched: bool = True):
    from repro.simmpi.engine import Engine
    from repro.simmpi.tracing import TraceRecorder

    tracer = TraceRecorder(grid.nranks, by_kind=True)
    engine = Engine(
        grid.nranks,
        network=_bench_network(),
        tracer=tracer,
        use_batched_p2p=batched,
    )
    t0 = time.perf_counter()
    engine.run(program)
    elapsed = time.perf_counter() - t0
    return engine.rank_times(), tracer, elapsed


def _assert_stencil_equivalence(ref, other, what: str) -> None:
    clocks_ref, tracer_ref, _ = ref
    clocks_other, tracer_other, _ = other
    if clocks_ref != clocks_other:
        raise RuntimeError(f"{what}: virtual clocks diverge from the scalar reference")
    if not np.array_equal(tracer_ref.bytes_matrix, tracer_other.bytes_matrix):
        raise RuntimeError(f"{what}: trace bytes diverge from the scalar reference")
    if not np.array_equal(tracer_ref.count_matrix, tracer_other.count_matrix):
        raise RuntimeError(f"{what}: message counts diverge from the scalar reference")
    if sorted(tracer_ref.kind_matrices) != sorted(tracer_other.kind_matrices) or any(
        not np.array_equal(tracer_ref.kind_matrices[k], tracer_other.kind_matrices[k])
        for k in tracer_ref.kind_matrices
    ):
        raise RuntimeError(f"{what}: per-kind matrices diverge from the scalar reference")


def measure_p2p_wave(
    *, px: int = 32, py: int = 32, iterations: int = 5, repeats: int = 3
) -> float:
    """Wave-path messages/sec of the stencil halo workload — CI gate probe."""
    grid = _stencil_grid(px, py)
    program = _stencil_wave_program(grid, iterations)
    _, tracer, _ = _run_stencil(grid, program)  # warm-up
    msgs = tracer.total_messages
    best = float("inf")
    for _ in range(repeats):
        *_, elapsed = _run_stencil(grid, program)
        best = min(best, elapsed)
    return msgs / best


def time_simmpi_p2p(
    *, px: int = 32, py: int = 32, iterations: int = 10, repeats: int = 3
) -> dict:
    """Time the stencil halo workload three ways on the message pool.

    * per-message **scalar** pricing (``use_batched_p2p=False``) — the
      bit-exact reference;
    * per-message **batched** pricing (PR 3's API shape on the pool);
    * the persistent-request **wave** path (``start_all`` + ``waitall``) —
      the p2p-bound shape the struct-of-arrays pool was built for.

    All three must produce bit-identical per-rank virtual clocks and
    byte-identical traces (asserted here on every run). Runs are
    interleaved and best-of-``repeats`` to damp scheduler noise.
    """
    grid = _stencil_grid(px, py)
    permsg = _stencil_program(grid, iterations)
    wave = _stencil_wave_program(grid, iterations)
    # Warm-ups absorb import and NumPy-dispatch first-call costs.
    _run_stencil(grid, wave)
    _run_stencil(grid, permsg)

    ref = _run_stencil(grid, permsg, batched=False)
    batched = _run_stencil(grid, permsg)
    waved = _run_stencil(grid, wave)
    _assert_stencil_equivalence(ref, batched, "batched p2p pricing")
    _assert_stencil_equivalence(ref, waved, "persistent wave path")
    msgs = ref[1].total_messages

    best = {"scalar": ref[2], "batched": batched[2], "wave": waved[2]}
    for _ in range(repeats - 1):
        best["scalar"] = min(
            best["scalar"], _run_stencil(grid, permsg, batched=False)[2]
        )
        best["batched"] = min(best["batched"], _run_stencil(grid, permsg)[2])
        best["wave"] = min(best["wave"], _run_stencil(grid, wave)[2])

    nranks = grid.nranks
    return {
        "nranks": nranks,
        "iterations": iterations,
        "messages": int(msgs),
        "scalar_s": round(best["scalar"], 4),
        "batched_s": round(best["batched"], 4),
        "wave_s": round(best["wave"], 4),
        "batched_speedup": round(best["scalar"] / best["batched"], 2),
        "wave_speedup_vs_batched": round(best["batched"] / best["wave"], 2),
        "scalar_msgs_per_s": round(msgs / best["scalar"]),
        "batched_msgs_per_s": round(msgs / best["batched"]),
        "wave_msgs_per_s": round(msgs / best["wave"]),
        "ranks_per_s": round(nranks * iterations / best["wave"]),
        "note": (
            "wave numbers use the persistent-request path (one start_all "
            "+ one waitall per rank-iteration) on the struct-of-arrays "
            "message pool; per-message numbers share the pool but pay the "
            "per-message generator API"
        ),
    }


def _pr3_p2p_baseline() -> int | None:
    """PR 3's recorded batched-path throughput (rank-iters/s), if current.

    The pre-pool records are recognizable by a ``p2p`` section without
    ``wave_msgs_per_s`` — their ``ranks_per_s`` measured the per-message
    batched path on the same machine class that records today. The
    baseline (and with it the 2× floor in ``main``) applies only while
    such a record is still the *latest* p2p entry, i.e. exactly once: for
    the first wave-path record. Later re-records are regression-guarded
    by the perf-gate probe against their own trajectory instead.
    """
    if not SIMMPI_ARTIFACT.exists():
        return None
    latest = None
    for record in json.loads(SIMMPI_ARTIFACT.read_text()):
        p2p = record.get("simmpi", {}).get("p2p")
        if p2p:
            latest = p2p
    if latest is None or "wave_msgs_per_s" in latest:
        return None
    return latest.get("ranks_per_s")


def _assert_traced_equal(ref, other, what: str) -> None:
    tracer_ref, clocks_ref = ref
    tracer_other, clocks_other = other
    if not np.array_equal(tracer_ref.bytes_matrix, tracer_other.bytes_matrix):
        raise RuntimeError(f"{what}: trace bytes diverge")
    if not np.array_equal(tracer_ref.count_matrix, tracer_other.count_matrix):
        raise RuntimeError(f"{what}: message counts diverge")
    if sorted(tracer_ref.kind_matrices) != sorted(tracer_other.kind_matrices) or any(
        not np.array_equal(tracer_ref.kind_matrices[k], tracer_other.kind_matrices[k])
        for k in tracer_ref.kind_matrices
    ):
        raise RuntimeError(f"{what}: per-kind matrices diverge")
    if clocks_ref != clocks_other:
        raise RuntimeError(f"{what}: virtual clocks diverge")


def time_simmpi(
    *, nodes: int = 64, app_per_node: int = 16, iterations: int = 10
) -> dict:
    """Time the §V traced run four ways; assert byte-identical traces.

    * **slow** — generator-cascade collectives, per-message p2p loops;
    * **fast** — vectorized collectives, per-message p2p loops (the PR 4
      engine shape, ``use_waves=False``);
    * **wave** — vectorized collectives plus wave-native steady-state
      loops (``use_waves=True``, the PR 5 shape);
    * **kernel** — the wave loops compiled into whole-world iteration
      kernels (``use_kernels=True``, the production shape).

    All four must produce byte-identical traces and bit-identical
    per-rank virtual clocks. ``ranks_per_s`` counts rank-iterations per
    second of the kernelized traced run (1088 world ranks × the
    iteration count over the wall time).
    """
    placement, programs, network = _fig5_setup(
        nodes, app_per_node, iterations, use_waves=False
    )
    tracer_slow, clocks_slow, slow_s = _run_traced(
        placement, programs, network, fast=False
    )
    tracer_fast, clocks_fast, fast_s = _run_traced(
        placement, programs, network, fast=True
    )
    _, programs_wave, _ = _fig5_setup(
        nodes, app_per_node, iterations, use_waves=True
    )
    tracer_wave, clocks_wave, wave_s = _run_traced(
        placement, programs_wave, network, fast=True
    )
    # One untimed kernel warm-up: the kernel run is the first to touch
    # the compile path's NumPy entry points (argsort/unique/reduceat
    # dispatch), first-call costs the three interpreted runs amortized
    # across each other above. Fresh programs — engine state is per-run.
    _, programs_warm, _ = _fig5_setup(
        nodes, app_per_node, iterations, use_waves=True, use_kernels=True
    )
    _run_traced(placement, programs_warm, network, fast=True)
    _, programs_kernel, _ = _fig5_setup(
        nodes, app_per_node, iterations, use_waves=True, use_kernels=True
    )
    tracer_kernel, clocks_kernel, kernel_s = _run_traced(
        placement, programs_kernel, network, fast=True
    )

    _assert_traced_equal(
        (tracer_slow, clocks_slow),
        (tracer_fast, clocks_fast),
        "fast path vs the cascade",
    )
    _assert_traced_equal(
        (tracer_fast, clocks_fast),
        (tracer_wave, clocks_wave),
        "wave-native programs vs the per-message reference",
    )
    _assert_traced_equal(
        (tracer_wave, clocks_wave),
        (tracer_kernel, clocks_kernel),
        "kernelized steady state vs the interpreted wave loop",
    )

    return {
        "nranks": placement.nranks,
        "iterations": iterations,
        "slow_s": round(slow_s, 4),
        "fast_s": round(fast_s, 4),
        "wave_s": round(wave_s, 4),
        "kernel_s": round(kernel_s, 4),
        "speedup": round(slow_s / fast_s, 1),
        "wave_speedup_vs_permsg": round(fast_s / wave_s, 2),
        "kernel_speedup_vs_wave": round(wave_s / kernel_s, 2),
        "wave_ranks_per_s": round(placement.nranks * iterations / wave_s),
        "ranks_per_s": round(placement.nranks * iterations / kernel_s),
        "traced_messages": int(tracer_kernel.total_messages),
        "gate": {
            "nodes": 16,
            "app_per_node": 4,
            "iterations": 10,
            "ranks_per_s": round(measure_simmpi()),
            "fig5_kernel_ranks_per_s": round(measure_simmpi(use_kernels=True)),
        },
    }


def _pr4_engine_baseline() -> int | None:
    """PR 4's recorded fig5 engine throughput (rank-iters/s), if current.

    Pre-wave records are recognizable by a ``simmpi`` section without
    ``wave_s`` — their ``ranks_per_s`` measured the per-message engine on
    the machine class that records today. Like :func:`_pr3_p2p_baseline`,
    the baseline (and the 1.3× floor in ``main``) applies only while such
    a record is the latest one, i.e. exactly once: for the first
    wave-native record. Later re-records are regression-guarded by the
    perf-gate probe against their own trajectory instead.
    """
    if not SIMMPI_ARTIFACT.exists():
        return None
    latest = None
    for record in json.loads(SIMMPI_ARTIFACT.read_text()):
        simmpi = record.get("simmpi")
        if simmpi:
            latest = simmpi
    if latest is None or "wave_s" in latest:
        return None
    return latest.get("ranks_per_s")


def _pr5_wave_baseline() -> int | None:
    """PR 5's recorded fig5 wave-engine throughput (rank-iters/s), if current.

    Pre-kernel records are recognizable by a ``simmpi`` section with
    ``wave_s`` but no ``kernel_s`` — their ``ranks_per_s`` measured the
    interpreted wave loop. The baseline (and the kernel-speedup floor in
    ``main``) applies only while such a record is the latest one, i.e.
    exactly once: for the first kernelized record. Later re-records are
    regression-guarded by the perf-gate probe against their own
    trajectory instead.
    """
    if not SIMMPI_ARTIFACT.exists():
        return None
    latest = None
    for record in json.loads(SIMMPI_ARTIFACT.read_text()):
        simmpi = record.get("simmpi")
        if simmpi:
            latest = simmpi
    if latest is None or "wave_s" not in latest or "kernel_s" in latest:
        return None
    return latest.get("ranks_per_s")


# -- sharded multi-process engine (conservative-window parallel DES) --------


def _run_sharded(workload, network, *, shards: int, workers: int):
    from repro.simmpi.shard import ShardedEngine
    from repro.simmpi.tracing import TraceRecorder

    tracer = TraceRecorder(workload.nranks, by_kind=True)
    engine = ShardedEngine(
        shards, workers=workers, network=network, tracer=tracer
    )
    gc.collect()
    t0 = time.perf_counter()
    engine.run(workload)
    elapsed = time.perf_counter() - t0
    return tracer, engine.rank_times(), elapsed


def time_sharded(
    *, nodes: int = 64, app_per_node: int = 16, iterations: int = 10
) -> dict:
    """The §V fig5 run on the sharded engine; byte-identity asserted first.

    Runs ``shards ∈ {1, 2, 4}`` with one worker process per shard and
    asserts every run byte-identical (traces) and bit-identical (clocks)
    to the single-process engine *before* recording any timing — a
    sharded number that isn't exact is not a number worth recording.
    ``ranks_per_s`` is the 4-shard rate; ``cores`` records the host's
    parallelism so trajectory readers can tell scaling shortfalls on
    narrow hosts from real regressions (the scaling floor in ``main``
    is gated on ``cores >= 4``).
    """
    from repro.apps.workload import fig5_workload
    from repro.machine.tsubame2 import tsubame2_fti_machine

    workload = fig5_workload(
        nodes=nodes,
        app_per_node=app_per_node,
        iterations=iterations,
        checkpoint_every=25,
    )
    network = tsubame2_fti_machine(nodes, app_per_node).network

    class _World:
        nranks = workload.nranks

    ref_tracer, ref_clocks, single_s = _run_traced(
        _World, workload.build_programs(), network, fast=True
    )
    record: dict = {
        "nranks": workload.nranks,
        "iterations": iterations,
        "cores": os.cpu_count(),
        "single_s": round(single_s, 4),
        "single_ranks_per_s": round(workload.nranks * iterations / single_s),
        "scaling": {},
    }
    for shards in (1, 2, 4):
        tracer, clocks, elapsed = _run_sharded(
            workload, network, shards=shards, workers=shards
        )
        _assert_traced_equal(
            (ref_tracer, ref_clocks),
            (tracer, clocks),
            f"{shards}-shard run vs the single-process engine",
        )
        record["scaling"][str(shards)] = {
            "wall_s": round(elapsed, 4),
            "ranks_per_s": round(workload.nranks * iterations / elapsed),
        }
    record["ranks_per_s"] = record["scaling"]["4"]["ranks_per_s"]
    record["speedup_4shards"] = round(
        single_s / record["scaling"]["4"]["wall_s"], 2
    )
    return record


def time_sharded_10k(
    *, px: int = 64, py: int = 160, iterations: int = 2
) -> dict:
    """A ≥10k-rank traced run: the world size dense recording can't hold.

    10 240 heat-stencil ranks on 4 shards with a sparse (COO) recorder —
    a dense 10240² byte matrix alone is ~840 MB, which is exactly the
    regime the sharded engine plus :class:`SparseTraceRecorder` exist
    for. Sanity-checks structure (message conservation, halo-neighbor
    count) rather than re-running a single-process reference at this
    scale; exactness is pinned by :func:`time_sharded` and the test
    suite on smaller worlds.
    """
    from repro.apps.heat import HeatConfig
    from repro.apps.workload import HeatWorkload
    from repro.simmpi.shard import ShardedEngine
    from repro.simmpi.tracing import SparseTraceRecorder

    workload = HeatWorkload(
        HeatConfig(
            px=px,
            py=py,
            nx=2 * px,
            ny=2 * py,
            iterations=iterations,
            synthetic=True,
        )
    )
    nranks = workload.nranks
    tracer = SparseTraceRecorder(nranks, by_kind=True)
    engine = ShardedEngine(4, workers=4, tracer=tracer)
    gc.collect()
    t0 = time.perf_counter()
    engine.run(workload)
    elapsed = time.perf_counter() - t0
    messages = int(tracer.total_messages)
    if messages <= 0 or messages % iterations != 0:
        raise RuntimeError(
            f"10k-rank run traced {messages} messages "
            f"(not a multiple of {iterations} iterations)"
        )
    return {
        "nranks": nranks,
        "iterations": iterations,
        "shards": 4,
        "workers": 4,
        "recorder": "sparse",
        "wall_s": round(elapsed, 4),
        "ranks_per_s": round(nranks * iterations / elapsed),
        "traced_messages": messages,
        "traced_bytes": int(tracer.total_bytes),
    }


def _smoke_sharded() -> None:
    """Sharded-vs-single byte-identity on tiny shapes (the CI smoke cut).

    Sweeps the fig5 world over shard counts with in-process and
    multi-process hosting — worker-count invariance is part of the
    contract, so both paths run with the equivalence asserts live.
    """
    from repro.apps.workload import fig5_workload
    from repro.machine.tsubame2 import tsubame2_fti_machine

    workload = fig5_workload(
        nodes=4, app_per_node=4, iterations=3, checkpoint_every=2
    )
    network = tsubame2_fti_machine(4, 4).network

    class _World:
        nranks = workload.nranks

    ref_tracer, ref_clocks, _ = _run_traced(
        _World, workload.build_programs(), network, fast=True
    )
    for shards in (1, 2, 4):
        for workers in (0, 2):
            tracer, clocks, _ = _run_sharded(
                workload, network, shards=shards, workers=workers
            )
            _assert_traced_equal(
                (ref_tracer, ref_clocks),
                (tracer, clocks),
                f"smoke sharded x{shards} (workers={workers})",
            )


# -- protocol end-to-end (sender-based logging + receive counting live) -----


def _protocol_setup(*, use_waves: bool, iterations: int):
    from repro.apps.tsunami import TsunamiConfig, TsunamiSimulation
    from repro.apps.workload import ExecutionMode
    from repro.clustering import naive_clustering
    from repro.machine.machine import Machine

    cfg = TsunamiConfig(
        px=4,
        py=4,
        nx=32,
        ny=32,
        iterations=iterations,
        allreduce_every=5,
        mode=ExecutionMode.KERNELS if use_waves else ExecutionMode.PER_MESSAGE,
    )
    return TsunamiSimulation(cfg), Machine(4, 4), naive_clustering(16, 4)


def _run_protocol(*, use_waves: bool, iterations: int, checkpoint_every: int):
    from repro.hydee.protocol import run_with_protocol

    sim, machine, clustering = _protocol_setup(
        use_waves=use_waves, iterations=iterations
    )
    t0 = time.perf_counter()
    result = run_with_protocol(
        sim,
        machine,
        clustering,
        iterations=iterations,
        checkpoint_every=checkpoint_every,
    )
    return result, time.perf_counter() - t0


def assert_protocol_runs_equal(ref, waved) -> None:
    """Assert two protocol runs are indistinguishable end-to-end.

    The single owner of the protocol-level equivalence contract —
    bit-identical states and clocks, identical receive counts, and
    channel-identical logs (tags, sizes, payloads) — shared by this
    recorder and the ``bench_protocol_end2end.py`` equivalence tests.
    Raises :class:`AssertionError` naming the first divergence.
    """
    for rank, (ref_state, wave_state) in enumerate(zip(ref.states, waved.states)):
        for key in ("eta", "u", "v"):
            assert np.array_equal(ref_state[key], wave_state[key]), (
                f"rank {rank}: state field {key!r} diverges"
            )
    assert ref.engine.rank_times() == waved.engine.rank_times(), (
        "virtual clocks diverge"
    )
    assert ref.engine.recv_counts == waved.engine.recv_counts, (
        "receive counts diverge"
    )
    ref_log, wave_log = ref.log, waved.log
    assert sorted(ref_log.channels) == sorted(wave_log.channels), (
        "logged channels diverge"
    )
    for channel, entries in ref_log.channels.items():
        others = wave_log.channels[channel]
        assert len(entries) == len(others), f"log channel {channel} diverges"
        for entry, other in zip(entries, others):
            assert (entry.tag, entry.nbytes) == (other.tag, other.nbytes), (
                f"log channel {channel} diverges"
            )
            if isinstance(entry.payload, np.ndarray):
                assert np.array_equal(entry.payload, other.payload), (
                    f"log channel {channel}: payload diverges"
                )
    assert ref_log.logged_bytes == wave_log.logged_bytes, (
        "logged bytes diverge"
    )


def time_protocol_end2end(
    *, iterations: int = 16, checkpoint_every: int = 6
) -> dict:
    """Time the full HydEE protocol run wave-native vs per-message.

    This is the end-to-end shape of ``bench_protocol_end2end.py``: real
    payloads, sender-based message logging and receive counting live
    (which pins collectives to the cascade — the wave win here is pure
    p2p). :func:`assert_protocol_runs_equal` pins the two runs
    indistinguishable.
    """
    permsg, permsg_s = _run_protocol(
        use_waves=False, iterations=iterations, checkpoint_every=checkpoint_every
    )
    waved, wave_s = _run_protocol(
        use_waves=True, iterations=iterations, checkpoint_every=checkpoint_every
    )
    assert_protocol_runs_equal(permsg, waved)
    wave_log = waved.log

    return {
        "nranks": 16,
        "iterations": iterations,
        "checkpoint_every": checkpoint_every,
        "logged_messages": int(wave_log.logged_messages),
        "permsg_s": round(permsg_s, 4),
        "wave_s": round(wave_s, 4),
        "wave_speedup": round(permsg_s / wave_s, 2),
    }


# -- schedule-interleaving exploration (seeded drain-order sweeps) ----------


def time_interleaving(
    *,
    nodes: int = 8,
    app_per_node: int = 2,
    iterations: int = 4,
    n_schedules: int = 24,
) -> dict:
    """Sweep seeded drain-order interleavings of the fig5 control traffic.

    Two contracts are pinned before the rate lands:

    * ``schedule_seed=None`` **is** the canonical drain — an Engine
      passed the explicit exploration kwargs produces byte-identical
      traces and bit-identical virtual clocks to a default-constructed
      one on the fig5 world, and records no schedule trace;
    * the fig5 control traffic is schedule-invariant — every seeded
      interleaving in the sweep must match canonical bit for bit
      (``findings == []``; the nightly CI sweep hunts violations of
      this at thousands of seeds).

    ``schedules_per_s`` prices full traced fig5 runs per second under
    randomized batch permutation. Exploration gates the iteration
    kernels off (non-canonical schedules deopt), so this is interpreted
    wave-engine throughput, not the kernel rate.
    """
    from repro.fuzz import InterleavingSpec, sweep
    from repro.simmpi.engine import Engine
    from repro.simmpi.tracing import TraceRecorder

    placement, programs, network = _fig5_setup(nodes, app_per_node, iterations)
    tracer_ref, clocks_ref, _ = _run_traced(
        placement, programs, network, fast=True
    )

    _, programs_explicit, _ = _fig5_setup(nodes, app_per_node, iterations)
    tracer = TraceRecorder(placement.nranks, by_kind=True)
    engine = Engine(
        placement.nranks,
        network=network,
        tracer=tracer,
        schedule_seed=None,
        schedule_trace=None,
    )
    engine.run(programs_explicit)
    _assert_traced_equal(
        (tracer_ref, clocks_ref),
        (tracer, engine.rank_times()),
        "explicit schedule_seed=None vs the default engine",
    )
    if engine.schedule_trace is not None:
        raise RuntimeError(
            "canonical run recorded a schedule trace — exploration leaked "
            "into the schedule_seed=None path"
        )

    spec = InterleavingSpec(
        nodes=nodes, app_per_node=app_per_node, iterations=iterations
    )
    gc.collect()
    report = sweep(spec, n_schedules=n_schedules, shrink=False)
    if report.findings:
        raise RuntimeError(
            "fig5 control traffic diverged under seeded schedules: "
            + "; ".join(f.describe() for f in report.findings)
        )
    return {
        "workload": spec.workload,
        "nranks": placement.nranks,
        "iterations": iterations,
        "schedules": report.n_schedules,
        "permuted_batches": report.permuted_batches,
        "wall_s": round(report.wall_seconds, 4),
        "schedules_per_s": round(report.schedules_per_s, 2),
        "note": (
            "canonical schedule_seed=None pinned byte-identical to the "
            "default engine; every seeded schedule matched canonical"
        ),
    }


def _smoke_interleaving() -> None:
    """A sub-second schedule sweep: equivalence live plus one real find.

    The tiny fti sweep must stay schedule-invariant (every seeded
    interleaving matches canonical bit for bit while actually permuting
    batches), and the race-demo sweep must find its legal wildcard
    deadlock and carry it through the shrink → repro-dict → replay
    pipeline.
    """
    from repro.fuzz import InterleavingSpec, replay_interleaving, sweep
    from repro.fuzz.interleave import DEADLOCK, finding_to_dict

    fti = sweep(
        InterleavingSpec(nodes=2, app_per_node=2, iterations=2),
        n_schedules=3,
        shrink=False,
    )
    if fti.findings:
        raise RuntimeError("tiny fti world diverged under seeded schedules")
    if fti.permuted_batches == 0:
        raise RuntimeError("fti sweep never permuted a batch")

    race_spec = InterleavingSpec(workload="race-demo")
    race = sweep(race_spec, n_schedules=12)
    if not race.findings:
        raise RuntimeError("race-demo sweep missed its wildcard deadlock")
    finding = race.findings[0]
    observed, expected = replay_interleaving(
        finding_to_dict(race_spec, finding)
    )
    if observed != expected or expected != DEADLOCK:
        raise RuntimeError(
            f"race-demo repro replayed as {observed!r}, recorded {expected!r}"
        )


# -- adversarial fuzzer campaign (model falsification throughput) -----------


def time_fuzzer(*, budget: int = 120, seed: int = 42) -> dict:
    """Run one steered fuzz campaign and report its summary record.

    The record is :meth:`CampaignReport.to_record` — scenarios/s,
    classification histogram, per-actor coverage, disagreement rate and
    the shrunken repros — i.e. the campaign's falsification throughput,
    not a microbenchmark. Asserts the campaign is seed-deterministic in
    its classification stream before recording (the acceptance criterion
    of the fuzz subsystem, cheap to re-check here on a small prefix).
    """
    from repro.fuzz import FuzzCampaignConfig, run_campaign

    report = run_campaign(FuzzCampaignConfig(budget=budget, seed=seed))
    # Re-run a small prefix and pin determinism before the record lands.
    prefix = run_campaign(
        FuzzCampaignConfig(budget=min(8, budget), seed=seed, shrink_limit=0)
    )
    if prefix.scenarios != report.scenarios[: len(prefix.scenarios)]:
        raise RuntimeError("fuzz campaign scenario stream is not seed-stable")
    if [r.classification for r in prefix.results] != [
        r.classification for r in report.results[: len(prefix.results)]
    ]:
        raise RuntimeError("fuzz campaign classifications are not seed-stable")
    return report.to_record()


def _smoke_fuzzer() -> None:
    """One scenario per actor type through the executor, asserts live.

    Composes a single-actor scenario for each registered adversary and
    executes it end to end: the classification must be a known class, a
    scenario that kills nodes must force the engine off its kernels
    (``failure-injection`` deopt recorded), and the whole sweep stays
    well under two seconds on the tiny default shape.
    """
    from repro.fuzz import (
        ACTOR_NAMES,
        CLASSIFICATIONS,
        FuzzShape,
        compose_scenario,
        execute_scenario,
    )
    from repro.util.rng import resolve_rng

    shape = FuzzShape()
    for i, name in enumerate(ACTOR_NAMES):
        scenario = compose_scenario(
            shape, (name,), resolve_rng(1000 + i), seed=i
        )
        result = execute_scenario(scenario)
        if result.classification not in CLASSIFICATIONS:
            raise RuntimeError(
                f"actor {name}: unknown classification {result.classification}"
            )
        killed = scenario.schedule.killed_nodes()
        if (
            killed
            and len(killed) < shape.nnodes  # total wipeout never deopts
            and not any(
                "failure-injection" in d for d, _ in result.kernel_deopts
            )
        ):
            raise RuntimeError(
                f"actor {name}: node kills did not deopt the engine kernels"
            )


# -- reliability-planning service (campaign-as-a-service) -------------------


def time_service(
    *,
    workers: int = 0,
    n_samples: int = 2000,
    concurrency: int = 8,
    repeat: int = 3,
) -> dict:
    """Benchmark the HTTP reliability service; equivalence gated first.

    Starts a private server, asserts every query of the standing mix —
    plus one streamed sweep — bit-equal to direct in-process calls
    (:func:`repro.service.loadgen.verify_equivalence`: service ==
    ``run_query`` == the deprecated ``montecarlo_scores`` /
    ``expected_waste`` paths), and only then records the concurrent load
    numbers. The equivalence pass doubles as the warm-up: it touches
    every table the load run needs, so the recorded rate is the warm,
    cache-hitting rate a long-lived server would serve at.
    """
    from repro.service import ServiceClient, ServiceThread
    from repro.service.loadgen import (
        default_query_mix,
        run_load,
        sweep_query,
        verify_equivalence,
    )

    mix = default_query_mix(n_samples=n_samples)
    stream = sweep_query()
    with ServiceThread(workers=workers) as running:
        client = ServiceClient(running.host, running.port)
        checks = verify_equivalence(client, mix, stream=stream)
        report = run_load(
            running.host,
            running.port,
            mix,
            concurrency=concurrency,
            repeat=repeat,
        )
        if report.errors:
            raise RuntimeError(
                f"{report.errors} queries failed under load — not recording"
            )
        stats = client.stats()
    return {
        "equivalence_checks": checks,
        "mix_size": len(mix),
        "n_samples": n_samples,
        **report.to_dict(),
        "dispatcher_batches": stats["dispatcher"]["batches"],
        "largest_batch": stats["dispatcher"]["largest_batch"],
    }


def _smoke_service() -> None:
    """The service self-test (equivalence + load + stream) at smoke scale,
    in-process and against a two-worker shard pool."""
    from repro.service.loadgen import run_self_test

    run_self_test(workers=0, verbose=False)
    run_self_test(workers=2, verbose=False)


def _append(path: Path, record: dict) -> None:
    trajectory = json.loads(path.read_text()) if path.exists() else []
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")


#: (record section path, human label) pairs compared by --diff-baseline.
#: Only rates measured at fixed shapes belong here: the diff must stay
#: like-with-like whatever --n-samples the invocation used (which is why
#: the Monte-Carlo entry is the canonical-shape gate probe, not the
#: shape-dependent batched_samples_per_s headline).
_BASELINE_RATES: dict[str, list[tuple[tuple[str, ...], str]]] = {
    "BENCH_montecarlo.json": [
        (
            ("montecarlo", "gate_batched_samples_per_s"),
            "batched Monte-Carlo gate samples/s",
        ),
        (("campaign", "campaigns_per_s"), "campaign sweeps/s"),
    ],
    "BENCH_simmpi.json": [
        (("simmpi", "ranks_per_s"), "fig5 traced rank-iters/s"),
        (("simmpi", "split", "ranks_per_s"), "split-collective rank-iters/s"),
        (("simmpi", "p2p", "wave_msgs_per_s"), "p2p wave msgs/s"),
        (("simmpi", "protocol", "wave_s"), "protocol end-to-end seconds"),
        (
            ("simmpi", "interleaving", "schedules_per_s"),
            "interleaving schedules/s",
        ),
        (("simmpi", "sharded", "ranks_per_s"), "sharded fig5 rank-iters/s"),
    ],
    "BENCH_fuzzer.json": [
        (("fuzzer", "scenarios_per_s"), "fuzz scenarios/s"),
    ],
    "BENCH_service.json": [
        (("service", "queries_per_s"), "service queries/s"),
    ],
}


def _dig(record: dict, path: tuple[str, ...]):
    node = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def snapshot_baselines() -> dict[str, dict]:
    """Latest committed record per ``BENCH_*.json``, read before recording.

    Must be captured *before* the run appends its own record, so
    ``--diff-baseline`` without ``--out-dir`` compares against the
    previously committed trajectory rather than the record just written.
    """
    committed: dict[str, dict] = {}
    for name in _BASELINE_RATES:
        path = ROOT / name
        if path.exists():
            trajectory = json.loads(path.read_text())
            if trajectory:
                committed[name] = trajectory[-1]
    return committed


def diff_against_baseline(
    fresh: dict[str, dict], committed: dict[str, dict]
) -> bool:
    """Report fresh throughput vs the committed ``BENCH_*.json`` baselines.

    ``fresh`` maps artifact names to the record just measured and
    ``committed`` to the pre-run snapshot from :func:`snapshot_baselines`.
    Prints one line per tracked rate with the fresh/committed ratio.
    Report-only by default; with floors enforced (local runs, or
    ``PERF_GATE=1`` on CI) a >2× shortfall on any throughput rate makes
    the function return ``False`` so callers can fail the job.
    """
    ok = True
    for name, rates in _BASELINE_RATES.items():
        if name not in committed or name not in fresh:
            continue
        for path, label in rates:
            base = _dig(committed[name], path)
            new = _dig(fresh[name], path)
            if base is None or new is None or not base:
                continue
            # Rates (…_per_s, ranks_per_s, …) grow when things improve;
            # wall-time sections (…_s) shrink.
            is_seconds = path[-1].endswith("_s") and not path[-1].endswith("per_s")
            ratio = base / new if is_seconds else new / base
            flag = ""
            if ratio < 0.5:
                flag = "  <-- >2x below committed baseline"
                ok = False
            print(f"baseline diff: {label}: {new} vs {base} ({ratio:.2f}x){flag}")
    return ok


def _smoke_wave_apps() -> None:
    """Per-message vs wave vs kernel equivalence of the heat and
    spectral apps.

    The tsunami app's wave and kernel paths are covered by the smoke
    fig5 run; this sweeps the other kernel-eligible steady-state loops
    on tiny shapes.
    """
    from repro.apps.heat import HeatConfig, HeatSimulation
    from repro.apps.spectral import SpectralConfig, SpectralSimulation
    from repro.apps.workload import ExecutionMode, with_mode
    from repro.simmpi.engine import Engine
    from repro.simmpi.tracing import TraceRecorder

    for name, sim_cls, cfg in (
        ("heat", HeatSimulation, HeatConfig(px=2, py=2, nx=8, ny=8, iterations=4)),
        (
            "heat-synthetic",
            HeatSimulation,
            HeatConfig(px=2, py=2, nx=8, ny=8, iterations=4, synthetic=True),
        ),
        (
            "spectral",
            SpectralSimulation,
            SpectralConfig(nranks=4, n=8, iterations=3, synthetic=True),
        ),
    ):
        runs = {}
        for label, mode in (
            ("permsg", ExecutionMode.PER_MESSAGE),
            ("wave", ExecutionMode.WAVES),
            ("kernel", ExecutionMode.KERNELS),
        ):
            nranks = 4
            tracer = TraceRecorder(nranks, by_kind=True)
            engine = Engine(nranks, network=_bench_network(), tracer=tracer)
            engine.run(sim_cls(with_mode(cfg, mode)).make_program())
            runs[label] = (tracer, engine.rank_times())
        _assert_traced_equal(
            runs["permsg"], runs["wave"], f"{name} wave vs per-message"
        )
        _assert_traced_equal(
            runs["wave"], runs["kernel"], f"{name} kernel vs wave"
        )


def run_smoke() -> None:
    """Exercise every bench path on shrunken shapes; assert equivalence only.

    This is the CI smoke job: every code path the full benchmark drives
    (batched Monte-Carlo vs scalar, campaign sweep, the three-way traced
    simmpi run — cascade / per-message engine / wave-native programs —
    split-communicator collectives, the three-way p2p stencil comparison
    including the persistent-wave path, the wave-native heat/spectral
    loops, and the end-to-end protocol run wave vs per-message) runs end
    to end with its equivalence asserts live, in well under two minutes.
    No JSON is written and no perf floor is enforced — CI machines are
    not the machine class the in-tree trajectory was recorded on.
    """
    t_start = time.perf_counter()
    scenario = paper_scenario(iterations=2)
    strategies = _strategies(scenario)
    mc = time_montecarlo(scenario, strategies, n_samples=60)
    print(f"smoke montecarlo: {mc['speedup']}x over scalar (equivalent)")
    campaign = time_campaign(scenario, strategies, n_runs=1)
    print(f"smoke campaign: {campaign['campaigns']} campaigns ok")

    simmpi = time_simmpi(nodes=4, app_per_node=4, iterations=3)
    print(
        f"smoke simmpi: {simmpi['nranks']} ranks, cascade/fast/wave/kernel "
        f"traces identical"
    )
    split = time_simmpi_split(nranks=32, group_size=8, iterations=4)
    print(f"smoke split: {split['groups']} groups, traces identical")
    p2p = time_simmpi_p2p(px=8, py=8, iterations=4, repeats=1)
    print(
        f"smoke p2p: {p2p['messages']} messages, scalar/batched/wave "
        f"clocks and traces identical"
    )
    _smoke_wave_apps()
    print("smoke wave apps: heat/spectral wave and kernel paths identical")
    _smoke_sharded()
    print(
        "smoke sharded: fig5 over 1/2/4 shards, in-process and "
        "multi-process, byte-identical to the single engine"
    )
    protocol = time_protocol_end2end(iterations=8, checkpoint_every=3)
    print(
        f"smoke protocol: {protocol['logged_messages']} logged messages, "
        f"wave run indistinguishable end-to-end"
    )
    _smoke_interleaving()
    print(
        "smoke interleaving: fti sweep schedule-invariant, race-demo "
        "deadlock replayed from its repro"
    )
    t_fuzz = time.perf_counter()
    _smoke_fuzzer()
    print(
        f"smoke fuzzer: one scenario per actor classified "
        f"({time.perf_counter() - t_fuzz:.1f}s)"
    )
    t_service = time.perf_counter()
    _smoke_service()
    print(
        f"smoke service: self-test equivalent at workers=0 and workers=2 "
        f"({time.perf_counter() - t_service:.1f}s)"
    )
    print(f"smoke ok in {time.perf_counter() - t_start:.1f}s")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-samples", type=int, default=2000)
    parser.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="tsunami iterations for the scenario graph (perf-irrelevant)",
    )
    parser.add_argument(
        "--simmpi-iterations",
        type=int,
        default=10,
        help="tsunami iterations of the traced 1088-rank simmpi benchmark",
    )
    parser.add_argument(
        "--skip-simmpi",
        action="store_true",
        help="only rerun the Monte-Carlo/campaign sections",
    )
    parser.add_argument(
        "--skip-montecarlo",
        action="store_true",
        help="only rerun the simmpi sections",
    )
    parser.add_argument(
        "--skip-fuzzer",
        action="store_true",
        help="skip the adversarial fuzz-campaign section",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip the reliability-service load benchmark",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=0,
        help="worker processes of the recorded service run (0 = in-process; "
        "single-core record hosts should keep 0)",
    )
    parser.add_argument(
        "--fuzz-budget",
        type=int,
        default=120,
        help="scenario budget of the recorded fuzz campaign",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: every bench path on tiny shapes, equivalence "
        "asserts only, no JSON writes, no perf floors (<2 min)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="write/append the BENCH_*.json records under this directory "
        "instead of the repo root (the nightly bench-trajectory job "
        "stages its artifacts here)",
    )
    parser.add_argument(
        "--diff-baseline",
        action="store_true",
        help="after measuring, report fresh throughput against the "
        "committed BENCH_*.json baselines (report-only on CI unless "
        "PERF_GATE=1)",
    )
    args = parser.parse_args()

    if args.smoke:
        run_smoke()
        return

    enforce = _floors_enforced()
    if not enforce:
        print(
            "perf floors disabled (CI without PERF_GATE): recording/report "
            "only on this runner class"
        )
    out_root = args.out_dir if args.out_dir is not None else ROOT
    mc_artifact = out_root / ARTIFACT.name
    simmpi_artifact = out_root / SIMMPI_ARTIFACT.name
    committed_baselines = snapshot_baselines()
    fresh: dict[str, dict] = {}

    stamp = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
    }

    if not args.skip_montecarlo:
        scenario = paper_scenario(iterations=args.iterations)
        strategies = _strategies(scenario)
        record = {
            **stamp,
            "scenario": scenario.name,
            "montecarlo": time_montecarlo(scenario, strategies, args.n_samples),
            "campaign": time_campaign(scenario, strategies),
        }
        # The gate probe always runs its canonical shape (n_samples=2000),
        # decoupled from --n-samples: tests/test_perf_gate.py and the
        # nightly --diff-baseline both compare against it, so it must be
        # like-with-like across invocations.
        record["montecarlo"]["gate_batched_samples_per_s"] = round(
            measure_batched_montecarlo(scenario, strategies)
        )

        # Gate before recording: a regressed run must fail loudly, not bend
        # the in-tree trajectory.
        mc = record["montecarlo"]
        if enforce and mc["speedup"] < MIN_SPEEDUP:
            raise RuntimeError(
                f"batched Monte-Carlo regressed to {mc['speedup']}x "
                f"(floor {MIN_SPEEDUP}x) — not recording"
            )
        fresh[ARTIFACT.name] = record
        _append(mc_artifact, record)
        print(
            f"montecarlo: scalar {mc['scalar_samples_per_s']}/s, "
            f"batched {mc['batched_samples_per_s']}/s "
            f"({mc['speedup']}x)"
        )
        print(
            f"campaign: {record['campaign']['campaigns']} campaigns in "
            f"{record['campaign']['total_s']}s"
        )
        print(f"recorded -> {mc_artifact}")

    if not args.skip_simmpi:
        pr3_baseline = _pr3_p2p_baseline()
        pr4_baseline = _pr4_engine_baseline()
        pr5_baseline = _pr5_wave_baseline()
        simmpi = time_simmpi(iterations=args.simmpi_iterations)
        simmpi["split"] = time_simmpi_split()
        simmpi["p2p"] = time_simmpi_p2p()
        simmpi["protocol"] = time_protocol_end2end()
        simmpi["interleaving"] = time_interleaving()
        simmpi["sharded"] = time_sharded(iterations=args.simmpi_iterations)
        simmpi["sharded"]["world10k"] = time_sharded_10k()
        simmpi["gate"]["split_ranks_per_s"] = round(measure_simmpi_split())
        simmpi["gate"]["p2p_wave_msgs_per_s"] = round(measure_p2p_wave())
        if enforce and simmpi["speedup"] < MIN_SIMMPI_SPEEDUP:
            raise RuntimeError(
                f"simmpi fast path regressed to {simmpi['speedup']}x "
                f"(floor {MIN_SIMMPI_SPEEDUP}x) — not recording"
            )
        if enforce and simmpi["split"]["speedup"] < MIN_SPLIT_SPEEDUP:
            raise RuntimeError(
                f"split-communicator fast path at {simmpi['split']['speedup']}x "
                f"(floor {MIN_SPLIT_SPEEDUP}x) — not recording"
            )
        sharded = simmpi["sharded"]
        if (
            enforce
            and (sharded["cores"] or 0) >= 4
            and sharded["speedup_4shards"] < MIN_SHARDED_SPEEDUP
        ):
            raise RuntimeError(
                f"4-shard fig5 run at {sharded['speedup_4shards']}x over "
                f"the single-process engine on {sharded['cores']} cores "
                f"(floor {MIN_SHARDED_SPEEDUP}x) — not recording"
            )
        if pr4_baseline is not None:
            # The honest before/after of the wave-native port: PR 4's
            # recorded per-message engine on the full traced fig5 run vs
            # the wave-native programs, same machine class, same shape.
            # The floor applies only while a pre-wave record is the
            # latest; later re-records are guarded by the perf-gate probe.
            simmpi["pr4_engine_ranks_per_s"] = pr4_baseline
            speedup = simmpi["ranks_per_s"] / pr4_baseline
            simmpi["wave_speedup_vs_pr4"] = round(speedup, 2)
            if enforce and speedup < MIN_FIG5_WAVE_SPEEDUP:
                raise RuntimeError(
                    f"wave-native fig5 run at {speedup:.2f}x over the "
                    f"recorded PR 4 engine (floor {MIN_FIG5_WAVE_SPEEDUP}x) "
                    f"— not recording"
                )
        if pr5_baseline is not None:
            # The honest before/after of the kernel compiler: PR 5's
            # recorded interpreted wave engine on the full traced fig5
            # run vs the kernelized steady state, same machine class,
            # same shape. The floor applies only while a pre-kernel
            # record is the latest; later re-records are guarded by the
            # perf-gate probe.
            simmpi["pr5_wave_ranks_per_s"] = pr5_baseline
            speedup = simmpi["ranks_per_s"] / pr5_baseline
            simmpi["kernel_speedup_vs_pr5"] = round(speedup, 2)
            if enforce and speedup < MIN_FIG5_KERNEL_SPEEDUP:
                raise RuntimeError(
                    f"kernelized fig5 run at {speedup:.2f}x over the "
                    f"recorded PR 5 wave engine (floor "
                    f"{MIN_FIG5_KERNEL_SPEEDUP}x) — not recording"
                )
        p2p = simmpi["p2p"]
        if pr3_baseline is not None:
            # The honest before/after: PR 3's recorded per-message batched
            # path vs the pool's wave path, same machine class, same
            # workload shape. The floor only applies while a pre-pool
            # baseline is in the trajectory; later re-records are guarded
            # by the perf-gate probe instead.
            p2p["pr3_batched_ranks_per_s"] = pr3_baseline
            speedup = p2p["ranks_per_s"] / pr3_baseline
            p2p["wave_speedup_vs_pr3"] = round(speedup, 2)
            if enforce and speedup < MIN_P2P_WAVE_SPEEDUP:
                raise RuntimeError(
                    f"p2p wave path at {speedup:.2f}x over the recorded "
                    f"PR 3 batched path (floor {MIN_P2P_WAVE_SPEEDUP}x) — "
                    f"not recording"
                )
        simmpi_record = {**stamp, "simmpi": simmpi}
        fresh[SIMMPI_ARTIFACT.name] = simmpi_record
        _append(simmpi_artifact, simmpi_record)
        print(
            f"simmpi: {simmpi['nranks']} ranks x {simmpi['iterations']} iters "
            f"— cascade {simmpi['slow_s']}s, fast {simmpi['fast_s']}s, wave "
            f"{simmpi['wave_s']}s, kernel {simmpi['kernel_s']}s "
            f"({simmpi['speedup']}x cascade→fast, "
            f"{simmpi['wave_speedup_vs_permsg']}x fast→wave, "
            f"{simmpi['kernel_speedup_vs_wave']}x wave→kernel, "
            f"{simmpi['ranks_per_s']} rank-iters/s)"
        )
        split = simmpi["split"]
        print(
            f"simmpi split: {split['groups']} groups x {split['group_size']} "
            f"ranks x {split['iterations']} allreduces — cascade "
            f"{split['slow_s']}s, fast {split['fast_s']}s ({split['speedup']}x)"
        )
        print(
            f"simmpi p2p: {p2p['nranks']}-rank stencil — scalar "
            f"{p2p['scalar_s']}s, batched {p2p['batched_s']}s, wave "
            f"{p2p['wave_s']}s ({p2p['wave_msgs_per_s']} msgs/s)"
        )
        protocol = simmpi["protocol"]
        print(
            f"simmpi protocol: 16-rank end-to-end — per-message "
            f"{protocol['permsg_s']}s, wave {protocol['wave_s']}s "
            f"({protocol['wave_speedup']}x, runs indistinguishable)"
        )
        ilv = simmpi["interleaving"]
        print(
            f"simmpi interleaving: {ilv['schedules']} seeded schedules of "
            f"the fig5 control traffic — {ilv['permuted_batches']} permuted "
            f"batches, 0 divergences ({ilv['schedules_per_s']}/s)"
        )
        sharded = simmpi["sharded"]
        print(
            f"simmpi sharded: {sharded['nranks']} ranks on 1/2/4 shards — "
            f"single {sharded['single_s']}s, 4-shard "
            f"{sharded['scaling']['4']['wall_s']}s "
            f"({sharded['speedup_4shards']}x on {sharded['cores']} core(s), "
            f"byte-identical)"
        )
        w10k = sharded["world10k"]
        print(
            f"simmpi sharded 10k: {w10k['nranks']} ranks x "
            f"{w10k['iterations']} iters in {w10k['wall_s']}s "
            f"({w10k['ranks_per_s']} rank-iters/s, sparse trace, "
            f"{w10k['traced_messages']} messages)"
        )
        print(f"recorded -> {simmpi_artifact}")

    if not args.skip_fuzzer:
        fuzzer = time_fuzzer(budget=args.fuzz_budget)
        fuzzer_record = {**stamp, "fuzzer": fuzzer}
        fresh[FUZZER_ARTIFACT.name] = fuzzer_record
        fuzzer_artifact = out_root / FUZZER_ARTIFACT.name
        _append(fuzzer_artifact, fuzzer_record)
        print(
            f"fuzzer: {fuzzer['scenarios']} scenarios in "
            f"{fuzzer['wall_seconds']}s ({fuzzer['scenarios_per_s']}/s), "
            f"disagreement rate {100 * fuzzer['disagreement_rate']:.1f}%, "
            f"{len(fuzzer['shrunken'])} shrunken repros"
        )
        print(f"recorded -> {fuzzer_artifact}")

    if not args.skip_service:
        service = time_service(workers=args.service_workers)
        service_record = {**stamp, "service": service}
        fresh[SERVICE_ARTIFACT.name] = service_record
        service_artifact = out_root / SERVICE_ARTIFACT.name
        _append(service_artifact, service_record)
        print(
            f"service: {service['equivalence_checks']} equivalence checks, "
            f"then {service['queries']} queries at "
            f"{service['queries_per_s']}/s (p50 {service['p50_ms']}ms, "
            f"p99 {service['p99_ms']}ms, hit rate "
            f"{100 * service['cache_hit_rate']:.0f}%, "
            f"{service['coalesced']} coalesced into "
            f"{service['scoring_passes']} passes)"
        )
        print(f"recorded -> {service_artifact}")

    if args.diff_baseline:
        ok = diff_against_baseline(fresh, committed_baselines)
        if not ok and _floors_enforced():
            raise SystemExit(
                "baseline diff found a >2x shortfall (PERF_GATE enforcement)"
            )


if __name__ == "__main__":
    main()
