"""Record the Monte-Carlo / campaign perf trajectory into a JSON artifact.

Runs the failure-sampling hot paths both ways — the per-event scalar
reference (``montecarlo_scores_scalar``) and the batched engine
(``montecarlo_scores``) — on the TSUBAME2 paper scenario, times a batched
month-long campaign sweep, and *appends* one record to
``BENCH_montecarlo.json`` at the repo root. Future PRs rerun this script so
the samples/sec curve (before vs after each change) is tracked in-tree.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [--n-samples 2000]

The script asserts the two paths are statistically equivalent at a fixed
seed and that the batched path clears the 10× floor the batching work
promised, so a perf regression fails loudly rather than silently bending
the curve.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.clustering import (
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core import (
    montecarlo_scores,
    montecarlo_scores_scalar,
    paper_scenario,
)
from repro.models import CampaignConfig, CampaignSimulator

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_montecarlo.json"
MIN_SPEEDUP = 10.0


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=ARTIFACT.parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _strategies(scenario):
    return [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(scenario.placement, 16),
        hierarchical_clustering(
            scenario.node_comm_graph(),
            scenario.placement,
            cost=scenario.partition_cost,
        ),
    ]


def time_montecarlo(scenario, strategies, n_samples: int, seed: int = 42):
    """Time scalar vs batched sampling; assert statistical equivalence."""
    per_strategy = []
    scalar_total = batched_total = 0.0
    for clustering in strategies:
        # Warm the lookup-table caches outside the timed region so both
        # paths are measured on identical footing.
        montecarlo_scores(scenario, clustering, n_samples=2, rng=0)

        t0 = time.perf_counter()
        scalar = montecarlo_scores_scalar(
            scenario, clustering, n_samples=n_samples, rng=seed
        )
        t1 = time.perf_counter()
        batched = montecarlo_scores(
            scenario, clustering, n_samples=n_samples, rng=seed
        )
        t2 = time.perf_counter()

        if (
            abs(batched.restart_fraction_mean - scalar.restart_fraction_mean)
            >= 0.01
            or abs(batched.catastrophic_rate - scalar.catastrophic_rate)
            >= 0.03
        ):
            raise RuntimeError(
                f"{clustering.name}: batched and scalar paths disagree — "
                f"restart {batched.restart_fraction_mean:.4f} vs "
                f"{scalar.restart_fraction_mean:.4f}, cat rate "
                f"{batched.catastrophic_rate:.4f} vs "
                f"{scalar.catastrophic_rate:.4f}"
            )

        scalar_s, batched_s = t1 - t0, t2 - t1
        scalar_total += scalar_s
        batched_total += batched_s
        per_strategy.append(
            {
                "clustering": clustering.name,
                "scalar_s": round(scalar_s, 6),
                "batched_s": round(batched_s, 6),
                "speedup": round(scalar_s / batched_s, 1),
                "restart_fraction_mean": round(
                    batched.restart_fraction_mean, 6
                ),
                "catastrophic_rate": round(batched.catastrophic_rate, 6),
            }
        )
    return {
        "n_samples": n_samples,
        "scalar_samples_per_s": round(
            n_samples * len(strategies) / scalar_total
        ),
        "batched_samples_per_s": round(
            n_samples * len(strategies) / batched_total
        ),
        "speedup": round(scalar_total / batched_total, 1),
        "per_strategy": per_strategy,
    }


def time_campaign(scenario, strategies, n_runs: int = 3):
    """Time the batched month-long campaign sweep of ``bench_campaign``."""
    simulator = CampaignSimulator(
        scenario.machine,
        CampaignConfig(
            horizon_s=30 * 24 * 3600.0,
            checkpoint_interval_s=1800.0,
            node_mtbf_s=0.25 * 365 * 24 * 3600.0,
        ),
    )
    t0 = time.perf_counter()
    n_failures = 0
    for i, clustering in enumerate(strategies):
        for k in range(n_runs):
            n_failures += simulator.run(clustering, rng=100 * i + k).n_failures
    elapsed = time.perf_counter() - t0
    return {
        "campaigns": len(strategies) * n_runs,
        "total_failures": n_failures,
        "total_s": round(elapsed, 4),
        "campaigns_per_s": round(len(strategies) * n_runs / elapsed, 1),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-samples", type=int, default=2000)
    parser.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="tsunami iterations for the scenario graph (perf-irrelevant)",
    )
    args = parser.parse_args()

    scenario = paper_scenario(iterations=args.iterations)
    strategies = _strategies(scenario)

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "scenario": scenario.name,
        "montecarlo": time_montecarlo(scenario, strategies, args.n_samples),
        "campaign": time_campaign(scenario, strategies),
    }

    # Gate before recording: a regressed run must fail loudly, not bend
    # the in-tree trajectory.
    mc = record["montecarlo"]
    if mc["speedup"] < MIN_SPEEDUP:
        raise RuntimeError(
            f"batched Monte-Carlo regressed to {mc['speedup']}x "
            f"(floor {MIN_SPEEDUP}x) — not recording"
        )

    trajectory = []
    if ARTIFACT.exists():
        trajectory = json.loads(ARTIFACT.read_text())
    trajectory.append(record)
    ARTIFACT.write_text(json.dumps(trajectory, indent=2) + "\n")

    print(
        f"montecarlo: scalar {mc['scalar_samples_per_s']}/s, "
        f"batched {mc['batched_samples_per_s']}/s "
        f"({mc['speedup']}x)"
    )
    print(
        f"campaign: {record['campaign']['campaigns']} campaigns in "
        f"{record['campaign']['total_s']}s"
    )
    print(f"recorded -> {ARTIFACT}")


if __name__ == "__main__":
    main()
