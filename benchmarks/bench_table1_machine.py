"""Table I — the TSUBAME2 platform parameters feeding every model.

Not a performance experiment in the paper, but the substitution contract
of this reproduction: the machine model must carry exactly the Table I
facts (SSD write speed, dual-rail QDR IB, measured Lustre throughput…)
that the encoding/logging/recovery models consume.
"""


from repro.core import experiment_table1
from repro.machine import TSUBAME2, tsubame2_fti_machine, tsubame2_machine


def bench_table1(benchmark):
    """Time machine construction + Table I rendering."""

    def build():
        machine = tsubame2_machine()
        return machine, experiment_table1()

    machine, text = benchmark(build)
    print("\n" + text)
    assert "1408" in text and "Lustre" in text


class TestTable1Facts:
    def test_node_and_core_counts(self):
        assert TSUBAME2.total_nodes == 1408
        assert TSUBAME2.cores_per_node == 12
        assert TSUBAME2.hyperthreads_per_node == 24

    def test_gpu_counts(self):
        assert TSUBAME2.gpus_per_node == 3
        assert TSUBAME2.gpu_total == 4224

    def test_storage_parameters(self):
        assert TSUBAME2.ssd_write_MBps == 360.0
        assert TSUBAME2.pfs_write_GBps == 10.0

    def test_network_parameters(self):
        assert TSUBAME2.ib_rails == 2
        assert TSUBAME2.ib_rail_GBps == 4.0

    def test_evaluation_partition_shapes(self):
        assert tsubame2_machine().nranks == 1024
        assert tsubame2_fti_machine().nranks == 1088  # 64 x 17 (§V)
