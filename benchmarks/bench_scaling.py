"""Scaling study — §V: "launching from 64 to 1024 processes".

The paper evaluates its clustering from 64 to 1024 processes and reports
the 1024-process case in detail. This bench repeats the four-dimensional
evaluation of the hierarchical clustering at each scale and asserts the
properties that make the approach viable at *growing* scale: the logging
fraction does not grow, the encoding time is scale-invariant (fixed L2
width), recovery cost shrinks with machine size, and the baseline verdict
holds everywhere.
"""

import pytest

from repro.apps import TsunamiConfig
from repro.clustering import PartitionCost, hierarchical_clustering
from repro.commgraph import synthetic_stencil_matrix
from repro.core import ClusteringEvaluator, Scenario
from repro.failures import PAPER_TAXONOMY
from repro.machine import Machine
from repro.util.tables import AsciiTable
from repro.util.units import format_probability

#: (nprocs, process-grid px, nodes); 16 procs/node throughout, like §V.
SCALES = [(64, 8, 4), (256, 16, 16), (1024, 32, 64)]


def scenario_at(nprocs: int, px: int, nodes: int) -> Scenario:
    py = nprocs // px
    cfg = TsunamiConfig(
        px=px, py=py, nx=32 * px, ny=768 * py, iterations=100,
        synthetic=True,
    )
    graph = synthetic_stencil_matrix(cfg.grid, iterations=100, nfields=3)
    return Scenario(
        name=f"tsunami-{nprocs}",
        machine=Machine(nodes, 16),
        graph=graph,
        taxonomy=PAPER_TAXONOMY,
        partition_cost=PartitionCost(1.0, 8.0),
    )


def bench_scaling_sweep(benchmark):
    """Time the hierarchical evaluation at 64/256/1024 processes."""

    def sweep():
        rows = []
        for nprocs, px, nodes in SCALES:
            scenario = scenario_at(nprocs, px, nodes)
            evaluator = ClusteringEvaluator(scenario)
            clustering = hierarchical_clustering(
                scenario.node_comm_graph(),
                scenario.placement,
                cost=scenario.partition_cost,
            )
            rows.append((nprocs, evaluator.evaluate(clustering)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(
        ["procs", "logged %", "recovery %", "encode s/GB", "P[cat]", "baseline"],
        title="Hierarchical clustering, 64 -> 1024 processes (16 procs/node)",
    )
    from repro.models import PAPER_BASELINE

    for nprocs, score in rows:
        table.add_row(
            [
                nprocs,
                f"{100 * score.logging_fraction:.1f}",
                f"{100 * score.recovery_fraction:.2f}",
                f"{score.encoding_s_per_gb:.1f}",
                format_probability(score.prob_catastrophic),
                "yes" if PAPER_BASELINE.satisfied(score) else "NO",
            ]
        )
    print("\n" + table.render())
    # The baseline is a *large-scale* requirement set: a >= 4-node L1
    # cluster is inevitably a big slice of a tiny machine, so the recovery
    # bound is only reachable at scale — the 1024-process point (the one
    # the paper analyzes) must pass, and compliance improves monotonically.
    assert PAPER_BASELINE.satisfied(rows[-1][1]), "baseline broken at 1024"
    # Encoding is scale-invariant (fixed 4-wide L2 stripes).
    encodes = [score.encoding_s_per_gb for _, score in rows]
    assert max(encodes) == pytest.approx(min(encodes))
    # Recovery cost shrinks as the machine grows around fixed-size clusters.
    recoveries = [score.recovery_fraction for _, score in rows]
    assert recoveries == sorted(recoveries, reverse=True)


class TestScalingShape:
    @pytest.fixture(scope="class")
    def scores(self):
        out = {}
        for nprocs, px, nodes in SCALES:
            scenario = scenario_at(nprocs, px, nodes)
            clustering = hierarchical_clustering(
                scenario.node_comm_graph(),
                scenario.placement,
                cost=scenario.partition_cost,
            )
            out[nprocs] = (
                scenario,
                clustering,
                ClusteringEvaluator(scenario).evaluate(clustering),
            )
        return out

    def test_l2_width_constant_across_scales(self, scores):
        for nprocs, (_, clustering, _) in scores.items():
            assert (clustering.l2_sizes() == 4).all(), nprocs

    def test_l1_stays_node_aligned(self, scores):
        from repro.clustering import validate_clustering

        for nprocs, (scenario, clustering, _) in scores.items():
            report = validate_clustering(
                clustering,
                scenario.placement,
                require_node_aligned_l1=True,
                require_l2_distinct_nodes=True,
                min_nodes_per_l1=4,
            )
            assert report.ok, (nprocs, report.violations)

    def test_logging_does_not_grow_with_scale(self, scores):
        fractions = [s.logging_fraction for _, _, s in scores.values()]
        assert max(fractions) <= fractions[0] + 0.02

    def test_reliability_stays_within_baseline_order(self, scores):
        for nprocs, (_, _, score) in scores.items():
            assert score.prob_catastrophic < 1e-3, nprocs

    def test_baseline_compliance_arrives_with_scale(self, scores):
        """Recovery cost crosses into the 20 % baseline as the machine
        grows around the fixed 4-node L1 clusters — the 'for large scale
        HPC systems' qualifier of §III, made quantitative."""
        from repro.models import PAPER_BASELINE

        verdicts = [
            PAPER_BASELINE.satisfied(score)
            for _, (_, _, score) in sorted(scores.items())
        ]
        assert verdicts[-1] is True  # 1024 procs: fully compliant
        # Once compliant, staying compliant (monotone in scale).
        first_pass = verdicts.index(True)
        assert all(verdicts[first_pass:])
