"""Sensitivity analysis — is Table II's reliability ordering calibration-proof?

The catastrophic-failure probabilities depend on the failure-taxonomy
parameters we calibrated (DESIGN.md §5). This bench perturbs every
parameter over an order of magnitude in each direction and checks that the
*qualitative* result — distributed ≪ hierarchical ≪ naive ≪ size-guided,
and only the hierarchical clustering inside the 1e-3 baseline among
non-distributed options — survives any calibration within the swept range.
"""

import itertools

import pytest

from repro.clustering import (
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.failures import CatastrophicModel, FailureTaxonomy
from repro.util.tables import AsciiTable
from repro.util.units import format_probability

P_MULTI = (2e-5, 2e-4, 2e-3)
ESCALATION = (0.01, 0.03, 0.1)


def _strategies(scenario):
    placement = scenario.placement
    return [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(placement, 16),
        hierarchical_clustering(
            scenario.node_comm_graph(), placement, cost=scenario.partition_cost
        ),
    ]


def bench_taxonomy_sensitivity(benchmark, scenario):
    """Time the 9-point taxonomy sweep over all four strategies."""
    strategies = _strategies(scenario)
    placement = scenario.placement

    def sweep():
        rows = []
        for p_multi, escalation in itertools.product(P_MULTI, ESCALATION):
            taxonomy = FailureTaxonomy(p_multi=p_multi, escalation=escalation)
            model = CatastrophicModel(placement, taxonomy=taxonomy)
            rows.append(
                (
                    p_multi,
                    escalation,
                    [model.probability(c) for c in strategies],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(
        ["p_multi", "escalation"] + [c.name for c in strategies],
        title="Taxonomy sensitivity — P[catastrophic] per calibration",
    )
    for p_multi, escalation, probs in rows:
        table.add_row(
            [f"{p_multi:g}", f"{escalation:g}"]
            + [format_probability(p) for p in probs]
        )
    print("\n" + table.render())
    for _, _, (p_naive, p_sg, p_dist, p_hier) in rows:
        # The ordering is invariant over the whole calibration range.
        assert p_dist < p_hier < p_naive < p_sg
        # The headline verdicts are too.
        assert p_hier <= 1e-3      # hierarchical always meets the baseline
        assert p_sg > 1e-3         # size-guided never does


class TestRobustness:
    def test_soft_error_share_only_scales_everything(self, scenario):
        """p_soft rescales all node-failure-driven probabilities equally;
        the size-guided entry is pinned at 1 - p_soft."""
        placement = scenario.placement
        sg = size_guided_clustering(1024, 8)
        for p_soft in (0.01, 0.05, 0.2):
            taxonomy = FailureTaxonomy(p_soft=p_soft)
            model = CatastrophicModel(placement, taxonomy=taxonomy)
            assert model.probability(sg) == pytest.approx(1 - p_soft, abs=1e-3)

    def test_extreme_correlation_still_orders_correctly(self, scenario):
        """Even with cascades 100x more likely, hierarchical stays orders
        of magnitude safer than naive."""
        placement = scenario.placement
        taxonomy = FailureTaxonomy(p_multi=2e-2, escalation=0.1)
        model = CatastrophicModel(placement, taxonomy=taxonomy)
        hier = hierarchical_clustering(
            scenario.node_comm_graph(), placement, cost=scenario.partition_cost
        )
        p_hier = model.probability(hier)
        p_naive = model.probability(naive_clustering(1024, 32))
        assert p_hier < p_naive / 5
