"""Fig. 3a — recovery cost vs. message-logging overhead vs. cluster size.

Paper series: consecutive-rank clusters over the 1024-process tsunami
trace; logging falls with cluster size while recovery cost rises, with a
sweet spot at 32 processes (< 4 % logged, ~3 % restarted).
"""

import pytest

from repro.core import experiment_fig3

SIZES = (2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def study(scenario):
    return experiment_fig3(scenario, sizes=SIZES)


def bench_fig3a(benchmark, scenario):
    """Time the full Fig. 3a sweep (8 clusterings over the 1024² matrix)."""
    result = benchmark(experiment_fig3, scenario, sizes=SIZES)
    print("\n" + result.render(which="3a"))
    # Shape claims (also verified under --benchmark-only):
    assert result.sweet_spot_3a() == 32
    i = result.sizes.index(32)
    assert result.logged_fraction[i] <= 0.04 + 1e-9
    assert result.restart_fraction[i] == pytest.approx(0.031, abs=0.002)


class TestShape:
    def test_logging_monotonically_decreases(self, study):
        assert study.logged_fraction == sorted(
            study.logged_fraction, reverse=True
        )

    def test_recovery_monotonically_increases(self, study):
        assert study.restart_fraction == sorted(study.restart_fraction)

    def test_sweet_spot_at_32(self, study):
        """'there is a sweet spot for clusters of 32 processes' (§III-A)."""
        assert study.sweet_spot_3a() == 32

    def test_paper_values_at_32(self, study):
        """'less than 4% of the messages are logged and only 3% of the
        processes needs to restart' at 32."""
        i = study.sizes.index(32)
        assert study.logged_fraction[i] <= 0.04 + 1e-9
        assert study.restart_fraction[i] == pytest.approx(0.031, abs=0.002)

    def test_small_clusters_log_too_much(self, study):
        """Fig. 3a's left side: clusters of 4 log ~25 %."""
        i = study.sizes.index(4)
        assert study.logged_fraction[i] == pytest.approx(0.25, abs=0.03)
