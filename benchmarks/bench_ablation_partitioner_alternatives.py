"""Ablation — L1 partitioner method: greedy [24]-style vs. spectral vs.
modularity (§IV-A's community detection).

The paper justifies its clustering with brain-network segregation; this
bench runs three independent partitioning methods on the §V node graph and
on random low-degree graphs, comparing the objective value, the logged
fraction and modularity Q. On the paper graph all three converge to the
identical 16 × 4-node partition — the structure is in the workload, not
the optimizer.
"""

import numpy as np
import pytest

from repro.clustering import (
    PartitionCost,
    modularity_partition,
    partition_node_graph,
    spectral_partition,
)
from repro.commgraph import modularity, random_sparse_matrix
from repro.util.tables import AsciiTable

METHODS = {
    "greedy-[24]": lambda ng: partition_node_graph(
        ng, min_cluster_nodes=4, max_cluster_nodes=4,
        cost=PartitionCost(1.0, 8.0),
    ),
    "spectral": lambda ng: spectral_partition(
        ng, min_cluster_nodes=4, max_cluster_nodes=4
    ),
    "modularity": lambda ng: modularity_partition(
        ng, min_cluster_nodes=4, max_cluster_nodes=4
    ),
}


def bench_partitioner_methods(benchmark, scenario):
    """Time all three methods on the §V node graph and compare quality."""
    ng = scenario.node_comm_graph()
    graph = scenario.graph

    def run_all():
        out = {}
        for name, method in METHODS.items():
            labels = method(ng)
            proc_labels = np.repeat(labels, scenario.machine.procs_per_node)
            out[name] = {
                "labels": labels,
                "clusters": int(labels.max()) + 1,
                "logged": graph.logged_fraction(proc_labels),
                "Q": modularity(ng, labels),
            }
        return out

    results = benchmark(run_all)
    table = AsciiTable(
        ["method", "clusters", "logged %", "modularity Q"],
        title="Partitioner-method ablation (§V node graph)",
    )
    for name, r in results.items():
        table.add_row(
            [name, r["clusters"], f"{100 * r['logged']:.2f}", f"{r['Q']:.3f}"]
        )
    print("\n" + table.render())
    # All three find the same paper partition.
    reference = results["greedy-[24]"]["labels"]
    for name, r in results.items():
        np.testing.assert_array_equal(r["labels"], reference)
        assert r["logged"] == pytest.approx(0.019, abs=0.003)
        assert r["Q"] > 0.3


class TestOnIrregularGraphs:
    """Where the methods *can* disagree, the greedy objective holds its own."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_greedy_cost_competitive_with_spectral(self, seed):
        g = random_sparse_matrix(32, degree=4, rng=seed)
        cost = PartitionCost(1.0, 8.0)
        greedy = partition_node_graph(
            g, min_cluster_nodes=4, max_cluster_nodes=8, cost=cost
        )
        spectral = spectral_partition(g, min_cluster_nodes=4, max_cluster_nodes=8)
        # The greedy method optimizes this objective directly; it must not
        # lose to the geometry-only method by more than a whisker.
        assert cost.evaluate(g, greedy) <= cost.evaluate(g, spectral) + 0.02

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_modularity_method_maximizes_q(self, seed):
        g = random_sparse_matrix(24, degree=4, rng=seed)
        q_mod = modularity(g, modularity_partition(g))
        q_greedy = modularity(
            g, partition_node_graph(g, min_cluster_nodes=1)
        )
        assert q_mod >= q_greedy - 0.05

    def test_all_methods_emit_valid_partitions(self):
        g = random_sparse_matrix(20, degree=3, rng=9)
        for name, method in {
            "spectral": lambda ng: spectral_partition(
                ng, min_cluster_nodes=2, max_cluster_nodes=5
            ),
            "modularity": lambda ng: modularity_partition(
                ng, min_cluster_nodes=2, max_cluster_nodes=5
            ),
        }.items():
            labels = method(g)
            sizes = np.bincount(labels)
            assert sizes.sum() == 20, name
            assert (sizes[sizes > 0] >= 2).all(), name
            assert sizes.max() <= 5, name
