"""Fig. 3b — encoding time vs. message-logging overhead vs. cluster size.

Paper series: encoding time per GB grows ~linearly with the encoding
cluster size (log-scale axis in the paper): ~one order of magnitude from
4 to 32 processes; 32-process clusters take > 3 min/GB while 4-process
clusters stay under 30 s/GB. The real Reed–Solomon encoder is benchmarked
too, to show the same linear-in-k growth on this host.
"""

import pytest

from repro.core import experiment_fig3
from repro.models import measure_throughput

SIZES = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def study(scenario):
    return experiment_fig3(scenario, sizes=SIZES)


def bench_fig3b_model(benchmark, scenario):
    """Time the Fig. 3b sweep (model-side)."""
    result = benchmark(experiment_fig3, scenario, sizes=SIZES)
    print("\n" + result.render(which="3b"))
    model = dict(zip(result.sizes, result.encoding_s_per_gb))
    assert model[32] > 180.0 and model[4] < 30.0  # 3 min vs half-minute
    assert model[32] / model[4] == pytest.approx(8.0)


@pytest.mark.parametrize("cluster_size", [4, 8, 16])
def bench_fig3b_real_rs_encoding(benchmark, cluster_size):
    """Measure real RS encoding throughput at each cluster size."""
    from repro.util.rng import resolve_rng
    import numpy as np

    from repro.erasure import ReedSolomonCode

    rng = resolve_rng(0)
    shard_bytes = 1 << 16
    code = ReedSolomonCode(k=cluster_size, m=cluster_size)
    data = rng.integers(0, 256, size=(cluster_size, shard_bytes), dtype=np.uint8)
    parity = benchmark(code.encode, data)
    assert parity.shape == (cluster_size, shard_bytes)


class TestShape:
    def test_linear_growth_matches_table2(self, study):
        """204 s at 32, 51 s at 8 — and 32 is ~8x slower than 4."""
        model = dict(zip(study.sizes, study.encoding_s_per_gb))
        assert model[32] == pytest.approx(204.0)
        assert model[8] == pytest.approx(51.0)
        assert model[32] / model[4] == pytest.approx(8.0)

    def test_order_of_magnitude_claim(self, study):
        """'from 4 to 32 processes, the encoding time increases by almost
        one order of magnitude' (§III-B)."""
        ratio = study.encoding_s_per_gb[-1] / study.encoding_s_per_gb[0]
        assert 6.0 <= ratio <= 10.0

    def test_three_minutes_vs_half_minute(self, study):
        """'encoding 1GB ... more than three minutes [at 32] while it could
        take less than half-minute with clusters of 4'."""
        model = dict(zip(study.sizes, study.encoding_s_per_gb))
        assert model[32] > 180.0
        assert model[4] < 30.0

    def test_size_8_meets_baseline(self, study):
        """'Clusters of size 8 ... encoding at a 1GB/50s rate' ≤ 60 s budget."""
        model = dict(zip(study.sizes, study.encoding_s_per_gb))
        assert model[8] <= 60.0
        assert model[16] > 60.0  # 'clusters of size 16 would take almost 2 min'

    def test_real_encoder_grows_linearly(self):
        """Measured RS throughput shows the same linear-in-k cost shape."""
        small = measure_throughput(4, shard_bytes=1 << 15, repeats=2, rng=0)
        large = measure_throughput(16, shard_bytes=1 << 15, repeats=2, rng=0)
        ratio = large["seconds_per_gb"] / small["seconds_per_gb"]
        assert 2.0 < ratio < 9.0  # ideal byte-ops ratio is 4x per GB
