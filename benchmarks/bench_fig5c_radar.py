"""Fig. 5c — overall clustering comparison against the §III baseline.

The paper normalizes each strategy's four scores to the baseline polygon
("any clustering going outside the area delimited by the baseline is not
suitable for FT in future large scale HPC systems") and shows that only
the hierarchical clustering stays inside on all four axes.
"""


from repro.core import experiment_table2, radar_table


def bench_fig5c(benchmark, scenario):
    """Time the full 4-strategy, 4-dimension evaluation + normalization."""

    def run():
        report = experiment_table2(scenario)
        return report, report.normalized()

    report, normalized = benchmark(run)
    print("\n" + radar_table(normalized))
    assert report.satisfying() == ["hierarchical-64-4"]


class TestShape:
    def test_only_hierarchical_inside(self, table2_report):
        assert table2_report.satisfying() == ["hierarchical-64-4"]

    def test_each_flat_strategy_breaks_its_axis(self, table2_report):
        norm = table2_report.normalized()
        assert norm["naive-32"]["encoding"] > 1.0  # too slow to encode
        assert norm["size-guided-8"]["reliability"] > 1.0  # unreliable
        assert norm["distributed-16"]["logging"] > 1.0  # logs everything
        assert norm["distributed-16"]["recovery"] > 1.0  # restarts too much

    def test_hierarchical_inside_on_every_axis(self, table2_report):
        norm = table2_report.normalized()["hierarchical-64-4"]
        for axis, value in norm.items():
            assert value <= 1.0, f"{axis} outside baseline"
