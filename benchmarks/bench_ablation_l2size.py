"""Ablation — the L2 stripe width (§IV-B's 'clusters of 4 or 8 processes
are already highly reliable if the processes are distributed').

Sweeps the hierarchical clustering's ``l2_group_nodes`` parameter and
evaluates the trade: wider stripes buy reliability (more simultaneous node
losses tolerated) at linear encoding cost. The paper picks 4 because it is
the narrowest width that keeps P[catastrophic] far below the baseline.
"""

import pytest

from repro.clustering import hierarchical_clustering, validate_clustering
from repro.models import PAPER_BASELINE
from repro.util.tables import AsciiTable
from repro.util.units import format_probability

WIDTHS = (2, 4, 8, 16)


def bench_l2_width_sweep(benchmark, scenario, evaluator):
    """Time the four-dimensional evaluation across L2 stripe widths."""

    def sweep():
        out = []
        for width in WIDTHS:
            clustering = hierarchical_clustering(
                scenario.node_comm_graph(),
                scenario.placement,
                cost=scenario.partition_cost,
                min_nodes_per_l1=max(4, width),
                max_nodes_per_l1=max(4, width),
                l2_group_nodes=width,
            )
            out.append((width, clustering, evaluator.evaluate(clustering)))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(
        ["L2 width", "logged %", "recovery %", "encode s/GB", "P[cat]", "baseline"],
        title="L2 stripe-width ablation (hierarchical clustering)",
    )
    for width, clustering, score in rows:
        table.add_row(
            [
                width,
                f"{100 * score.logging_fraction:.1f}",
                f"{100 * score.recovery_fraction:.2f}",
                f"{score.encoding_s_per_gb:.1f}",
                format_probability(score.prob_catastrophic),
                "yes" if PAPER_BASELINE.satisfied(score) else "NO",
            ]
        )
    print("\n" + table.render())
    # Encoding cost grows linearly with stripe width...
    encodes = [score.encoding_s_per_gb for _, _, score in rows]
    assert encodes == sorted(encodes)
    # ...while reliability improves (more losses tolerated).
    cats = [score.prob_catastrophic for _, _, score in rows]
    assert cats == sorted(cats, reverse=True)
    # The paper's width-4 point is compliant.
    assert PAPER_BASELINE.satisfied(dict((w, s) for w, _, s in rows)[4])


class TestL2WidthShape:
    @pytest.fixture(scope="class")
    def rows(self, scenario, evaluator):
        out = []
        for width in WIDTHS:
            clustering = hierarchical_clustering(
                scenario.node_comm_graph(),
                scenario.placement,
                cost=scenario.partition_cost,
                min_nodes_per_l1=max(4, width),
                max_nodes_per_l1=max(4, width),
                l2_group_nodes=width,
            )
            out.append((width, clustering, evaluator.evaluate(clustering)))
        return out

    def test_structures_stay_valid(self, rows, scenario):
        for width, clustering, _ in rows:
            report = validate_clustering(
                clustering,
                scenario.placement,
                require_node_aligned_l1=True,
                require_l2_distinct_nodes=True,
                homogeneous_l2=True,
            )
            assert report.ok, (width, report.violations)
            assert (clustering.l2_sizes() == width).all()

    def test_width_2_is_cheap_but_fragile(self, rows):
        by_width = {w: s for w, _, s in rows}
        assert by_width[2].encoding_s_per_gb < by_width[4].encoding_s_per_gb
        assert by_width[2].prob_catastrophic > by_width[4].prob_catastrophic

    def test_width_16_pays_too_much_encoding(self, rows):
        by_width = {w: s for w, _, s in rows}
        # Width 16 exceeds the 60 s/GB encoding budget (102 s/GB).
        assert not PAPER_BASELINE.check(by_width[16])["encoding"]

    def test_wider_l1_raises_logging_but_slowly(self, rows):
        """Wider stripes force wider L1 clusters, which can only *reduce*
        the logged fraction (bigger containment units)."""
        logged = [s.logging_fraction for _, _, s in rows]
        assert logged == sorted(logged, reverse=True)
