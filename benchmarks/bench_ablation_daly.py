"""Ablation — encoding speed translated into end-to-end efficiency.

§II-A motivates the whole paper with the extreme-scale squeeze: MTBF falls
with node count while checkpoint cost grows. This bench plugs each
clustering's encoding time (Table II) into the Young/Daly optimal-interval
waste model and sweeps the machine size, showing where slow encoding makes
periodic checkpointing stop paying.
"""


from repro.models import (
    EncodingTimeModel,
    WasteModel,
    daly_interval,
    young_interval,
)
from repro.util.tables import AsciiTable
from repro.util.units import GiB, format_duration

STRATEGY_L2 = [("naive-32", 32), ("distributed-16", 16),
               ("size-guided-8", 8), ("hierarchical", 4)]
NODE_COUNTS = (1_000, 10_000, 100_000)
NODE_MTBF_S = 5 * 365 * 24 * 3600.0  # five node-years


def _checkpoint_cost(l2_size: int) -> float:
    ssd_write_s = GiB / 360e6  # 1 GiB per node at Table I SSD speed
    return ssd_write_s + EncodingTimeModel().seconds_per_gb(l2_size)


def bench_daly_waste_sweep(benchmark):
    """Time the waste sweep over strategies x machine sizes."""

    def sweep():
        out = {}
        for name, l2 in STRATEGY_L2:
            cost = _checkpoint_cost(l2)
            out[name] = [
                WasteModel(cost, 2 * cost, NODE_MTBF_S / n).optimal_waste()
                for n in NODE_COUNTS
            ]
        return out

    waste = benchmark(sweep)
    table = AsciiTable(
        ["clustering", "ckpt cost"] + [f"waste @{n//1000}k" for n in NODE_COUNTS],
        title="Daly-waste ablation (1 GiB/node checkpoints, 5 node-years MTBF)",
    )
    for name, l2 in STRATEGY_L2:
        table.add_row(
            [name, format_duration(_checkpoint_cost(l2))]
            + [f"{100 * w:.1f}%" for w in waste[name]]
        )
    print("\n" + table.render())
    # Fast encoding always wastes less, at every scale.
    for i in range(len(NODE_COUNTS)):
        column = [waste[name][i] for name, _ in STRATEGY_L2]
        assert column == sorted(column, reverse=True)


class TestShape:
    def test_waste_grows_with_scale(self):
        cost = _checkpoint_cost(4)
        waste = [
            WasteModel(cost, 2 * cost, NODE_MTBF_S / n).optimal_waste()
            for n in NODE_COUNTS
        ]
        assert waste == sorted(waste)

    def test_hierarchical_buys_efficiency_at_100k_nodes(self):
        """At extreme scale the 8x encoding gap (Table II) becomes a
        multi-point whole-machine efficiency gap."""
        mtbf = NODE_MTBF_S / 100_000
        slow = WasteModel(_checkpoint_cost(32), 2 * _checkpoint_cost(32), mtbf)
        fast = WasteModel(_checkpoint_cost(4), 2 * _checkpoint_cost(4), mtbf)
        assert slow.optimal_waste() - fast.optimal_waste() > 0.05

    def test_daly_interval_bracket(self):
        """Daly's refinement stays within a few percent of Young's root
        in the small-cost regime the sweep lives in."""
        cost = _checkpoint_cost(8)
        mtbf = NODE_MTBF_S / 10_000
        y, d = young_interval(cost, mtbf), daly_interval(cost, mtbf)
        assert abs(d - y) / y < 0.2

    def test_waste_is_convex_around_optimum(self):
        wm = WasteModel(60.0, 120.0, 3600.0)
        opt = wm.optimal_interval()
        assert wm.waste(opt) <= wm.waste(opt / 3)
        assert wm.waste(opt) <= wm.waste(opt * 3)
