"""Ablation — the L1 partitioner's cost weights and refinement pass.

DESIGN.md calls out two design choices in the [24]-style partitioner:
the logging/restart weight ratio (which sets the equilibrium cluster size)
and the boundary-refinement pass. This bench sweeps both on the paper's
node graph and on random low-degree graphs.
"""

import numpy as np
import pytest

from repro.clustering import PartitionCost, partition_node_graph
from repro.commgraph import node_graph, paper_tsunami_matrix, random_sparse_matrix
from repro.machine import BlockPlacement


@pytest.fixture(scope="module")
def paper_node_graph():
    g = paper_tsunami_matrix(iterations=10)
    return g, node_graph(g, BlockPlacement(64, 16))


def bench_partitioner_weight_sweep(benchmark, scenario):
    """Time the weight sweep over the §V node graph."""
    ng = scenario.node_comm_graph()

    def sweep():
        out = {}
        for w_rb in (1.0, 2.0, 4.0, 8.0, 16.0):
            labels = partition_node_graph(
                ng, min_cluster_nodes=4, cost=PartitionCost(1.0, w_rb)
            )
            out[w_rb] = np.bincount(labels)
        return out

    sizes_by_weight = benchmark(sweep)
    print("\nAblation — L1 cluster sizes vs. restart weight:")
    for w_rb, sizes in sizes_by_weight.items():
        print(f"  w_restart={w_rb:>4}: {len(sizes)} clusters, "
              f"sizes {sorted(set(sizes.tolist()))}")
    # Heavier restart penalty -> never coarser partitions.
    counts = [len(s) for s in sizes_by_weight.values()]
    assert counts == sorted(counts)
    # The calibrated point reproduces the paper's 16 x 4-node structure.
    assert len(sizes_by_weight[8.0]) == 16
    assert (sizes_by_weight[8.0] == 4).all()


class TestWeightShape:
    def test_logging_only_merges_everything(self, paper_node_graph):
        _, ng = paper_node_graph
        labels = partition_node_graph(
            ng, min_cluster_nodes=1, cost=PartitionCost(1.0, 0.0)
        )
        assert len(np.unique(labels)) == 1

    def test_restart_only_stays_at_minimum_size(self, paper_node_graph):
        _, ng = paper_node_graph
        labels = partition_node_graph(
            ng, min_cluster_nodes=4, cost=PartitionCost(0.0, 1.0)
        )
        sizes = np.bincount(labels)
        assert (sizes == 4).all()

    def test_paper_point_is_stable_across_trace_lengths(self):
        """The (1, 8) calibration does not depend on trace length (the
        objective is scale-free in the traffic volume)."""
        placement = BlockPlacement(64, 16)
        for iterations in (1, 10, 100):
            g = paper_tsunami_matrix(iterations=iterations)
            ng = node_graph(g, placement)
            labels = partition_node_graph(
                ng, min_cluster_nodes=4, cost=PartitionCost(1.0, 8.0)
            )
            np.testing.assert_array_equal(labels, np.arange(64) // 4)


class TestRefinementAblation:
    @pytest.mark.parametrize("seed", [3, 7, 11, 19])
    def test_refinement_never_hurts(self, seed):
        g = random_sparse_matrix(40, degree=4, rng=seed)
        cost = PartitionCost()
        rough = partition_node_graph(g, min_cluster_nodes=3, refine=False)
        refined = partition_node_graph(g, min_cluster_nodes=3, refine=True)
        assert cost.evaluate(g, refined) <= cost.evaluate(g, rough) + 1e-12

    def test_refinement_helps_some_graph(self):
        """On at least one random graph the refinement strictly improves
        the objective (the pass is not dead code)."""
        cost = PartitionCost()
        improved = 0
        for seed in range(20):
            g = random_sparse_matrix(30, degree=4, rng=seed)
            rough = partition_node_graph(g, min_cluster_nodes=2, refine=False)
            refined = partition_node_graph(g, min_cluster_nodes=2, refine=True)
            if cost.evaluate(g, refined) < cost.evaluate(g, rough) - 1e-12:
                improved += 1
        assert improved > 0
