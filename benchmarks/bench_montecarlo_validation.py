"""Monte-Carlo cross-validation of Table II's model-derived columns.

The recovery-cost and reliability columns of Table II come from analytic
models; this bench re-derives both by sampling thousands of failure events
from the calibrated taxonomy and applying them to each clustering,
printing analytic-vs-sampled side by side and asserting agreement.
"""


from repro.clustering import (
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core import query_for, run_query, validate_against_analytic
from repro.failures import CatastrophicModel
from repro.models import expected_restart_fraction
from repro.util.tables import AsciiTable
from repro.util.units import format_probability

N_SAMPLES = 1500


def bench_montecarlo_table2(benchmark, scenario):
    """Time the sampled evaluation of the three flat strategies."""
    strategies = [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(scenario.placement, 16),
    ]

    queries = [
        query_for(scenario, c, n_samples=N_SAMPLES, seed=99 + i)
        for i, c in enumerate(strategies)
    ]

    def run():
        return [run_query(q) for q in queries]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    model = CatastrophicModel(scenario.placement, taxonomy=scenario.taxonomy)
    table = AsciiTable(
        [
            "clustering",
            "restart (analytic)",
            "restart (sampled)",
            "P[cat] (analytic)",
            "cat rate (sampled)",
        ],
        title=f"Monte-Carlo validation ({N_SAMPLES} failures per strategy)",
    )
    for clustering, mc in zip(strategies, results):
        analytic_restart = expected_restart_fraction(
            clustering, scenario.placement
        )
        analytic_cat = model.probability(clustering)
        cat_rate = mc.value("catastrophic_rate")
        table.add_row(
            [
                clustering.name,
                f"{100 * analytic_restart:.2f}%",
                f"{100 * mc.value('restart_fraction_mean'):.2f}%",
                format_probability(analytic_cat),
                format_probability(cat_rate),
            ]
        )
        assert abs(cat_rate - analytic_cat) < 0.05
    print("\n" + table.render())


class TestAgreement:
    def test_every_strategy_validates(self, scenario):
        for i, clustering in enumerate(
            [
                naive_clustering(1024, 32),
                size_guided_clustering(1024, 8),
                distributed_clustering(scenario.placement, 16),
            ]
        ):
            out = validate_against_analytic(
                scenario, clustering, n_samples=600, rng=11 + i
            )
            assert out["restart_deviation"] <= 0.02, clustering.name
