"""Fig. 4b — message-logging overhead, distributed vs. non-distributed.

Paper claim: combining distributed clustering with topology-aware
placement logs nearly everything — "the size of the clusters lose all
their influence in the performance trade-off" — while non-distributed
clusters keep logging low and size-sensitive.
"""

import pytest

from repro.core import experiment_fig4bc

SIZES = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def study(scenario):
    return experiment_fig4bc(scenario, sizes=SIZES)


def bench_fig4b(benchmark, scenario):
    """Time the distribution sweep (8 clusterings, logging + restart)."""
    result = benchmark(experiment_fig4bc, scenario, sizes=SIZES)
    print("\n" + result.render())
    assert min(result.logging_distributed) > 0.9
    assert max(result.logging_non_distributed) < 0.3


class TestShape:
    def test_distributed_logs_nearly_everything(self, study):
        for frac in study.logging_distributed:
            assert frac > 0.9  # paper plots ~100 %

    def test_size_loses_influence_under_distribution(self, study):
        """Distributed curve is flat; non-distributed falls with size."""
        spread_dist = max(study.logging_distributed) - min(
            study.logging_distributed
        )
        spread_non = max(study.logging_non_distributed) - min(
            study.logging_non_distributed
        )
        assert spread_dist < 0.05
        assert spread_non > 0.15

    def test_non_distributed_decreases_with_size(self, study):
        non = study.logging_non_distributed
        assert non == sorted(non, reverse=True)
