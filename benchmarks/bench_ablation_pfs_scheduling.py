"""Ablation — PFS checkpoint scheduling vs. the FTI local-SSD path (§II-C).

The paper's motivation for *combining* HydEE with FTI rather than running
the hybrid protocol against the PFS: with the PFS, cluster checkpoints
must be scheduled (staggered), which injects noise into tightly-coupled
applications and still saturates the shared bandwidth; with FTI, all
clusters checkpoint simultaneously on node-local SSDs. This bench renders
the quantitative comparison at TSUBAME2 bandwidths.
"""

import pytest

from repro.machine import TSUBAME2_PFS, TSUBAME2_SSD
from repro.models import PfsSchedulingModel
from repro.util import GiB, AsciiTable, format_duration


def bench_pfs_scheduling(benchmark):
    """Time the strategy comparison across machine scales."""

    def sweep():
        rows = []
        for n_clusters in (4, 16, 64, 256, 352):
            model = PfsSchedulingModel(
                n_clusters=n_clusters,
                bytes_per_cluster=4 * GiB,
                pfs=TSUBAME2_PFS,
                ssd=TSUBAME2_SSD,
                nodes_per_cluster=4,
            )
            rows.append(
                (
                    n_clusters,
                    model.simultaneous_pfs(),
                    model.staggered_pfs(),
                    model.local_ssd(l2_cluster_size=4),
                )
            )
        return rows

    rows = benchmark(sweep)
    table = AsciiTable(
        ["clusters", "simultaneous PFS", "staggered PFS (noise)", "local SSD + RS"],
        title="Checkpoint-scheduling ablation (4 GiB/cluster, Table I rates)",
    )
    for n, simultaneous, staggered, ssd in rows:
        table.add_row(
            [
                n,
                format_duration(simultaneous.makespan_s),
                f"{format_duration(staggered.makespan_s)} "
                f"({format_duration(staggered.noise_window_s)})",
                format_duration(ssd.makespan_s),
            ]
        )
    print("\n" + table.render())
    # The SSD path's makespan is scale-invariant; the PFS paths degrade
    # linearly with cluster count — the crossover is the paper's argument.
    n_large, simultaneous, staggered, ssd = rows[-1]
    assert ssd.makespan_s < simultaneous.makespan_s
    assert ssd.makespan_s < staggered.makespan_s
    ssd_spans = [r[3].makespan_s for r in rows]
    assert max(ssd_spans) == pytest.approx(min(ssd_spans))
    pfs_spans = [r[1].makespan_s for r in rows]
    assert pfs_spans == sorted(pfs_spans)


class TestShape:
    def test_fti_advantage_grows_with_scale(self):
        gaps = []
        for n in (4, 64, 256):
            m = PfsSchedulingModel(
                n_clusters=n, bytes_per_cluster=4 * GiB,
                pfs=TSUBAME2_PFS, ssd=TSUBAME2_SSD,
            )
            gaps.append(m.simultaneous_pfs().makespan_s / m.local_ssd().makespan_s)
        assert gaps == sorted(gaps)

    def test_staggering_is_not_a_fix(self):
        """§II-C: staggering trades contention for noise, gaining nothing
        in total checkpoint latency."""
        m = PfsSchedulingModel(
            n_clusters=16, bytes_per_cluster=4 * GiB,
            pfs=TSUBAME2_PFS, ssd=TSUBAME2_SSD,
        )
        assert m.staggered_pfs().makespan_s >= m.simultaneous_pfs().makespan_s * 0.99
        assert m.staggered_pfs().noise_window_s > 0
