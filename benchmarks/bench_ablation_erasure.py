"""Ablation — erasure-code choice: XOR vs. half-parity RS vs. FTI's m = k.

§II-B1: "Several encoding techniques, such as bit-wise XOR or
Reed-Solomon, exist and provide different encoding complexities and
different reliability levels." This bench quantifies that trade-off on the
hierarchical clustering: per-checkpoint byte operations (complexity) against
the resulting catastrophic-failure probability (reliability).
"""

import pytest

from repro.clustering import PartitionCost, hierarchical_clustering
from repro.commgraph import node_graph, paper_tsunami_matrix
from repro.erasure import ReedSolomonCode, XorCode
from repro.failures import CatastrophicModel, rs_half_tolerance, xor_tolerance
from repro.machine import BlockPlacement
from repro.util.tables import AsciiTable
from repro.util.units import format_probability

#: (name, byte-ops factory, node-loss tolerance for L2 clusters of size s).
CODES = [
    ("xor", lambda k: XorCode(k=k), xor_tolerance),
    (
        "rs-half (m=k/2)",
        lambda k: ReedSolomonCode(k=k, m=max(1, k // 2)),
        lambda s: s // 4,  # co-located data+parity: node loss costs 2 shards
    ),
    ("rs-fti (m=k)", lambda k: ReedSolomonCode(k=k, m=k), rs_half_tolerance),
]


@pytest.fixture(scope="module")
def setup():
    placement = BlockPlacement(64, 16)
    g = paper_tsunami_matrix(iterations=5)
    ng = node_graph(g, placement)
    clustering = hierarchical_clustering(
        ng, placement, cost=PartitionCost(1.0, 8.0)
    )
    return placement, clustering


def bench_erasure_tradeoff(benchmark, scenario):
    """Time the reliability evaluation under all three codes."""
    placement = scenario.placement
    clustering = hierarchical_clustering(
        scenario.node_comm_graph(), placement, cost=scenario.partition_cost
    )
    k = 4  # hierarchical L2 size
    shard = 1 << 20

    def evaluate():
        rows = []
        for name, code_factory, tolerance in CODES:
            code = code_factory(k)
            model = CatastrophicModel(placement, tolerance=tolerance)
            rows.append(
                (name, code.encoding_byte_ops(shard), model.probability(clustering))
            )
        return rows

    rows = benchmark(evaluate)
    table = AsciiTable(
        ["code", "byte ops / 1 MiB shard", "P[catastrophic]"],
        title="Erasure-code ablation (hierarchical clustering, L2 = 4)",
    )
    for name, ops, p in rows:
        table.add_row([name, f"{ops:,}", format_probability(p)])
    print("\n" + table.render())
    # Cost ordering: xor < rs-half < rs-fti.
    assert rows[0][1] < rows[1][1] < rows[2][1]
    # Reliability ordering is the exact inverse.
    assert rows[0][2] >= rows[1][2] >= rows[2][2]


class TestShape:
    def test_xor_cheapest_least_reliable(self, setup):
        placement, clustering = setup
        xor_p = CatastrophicModel(
            placement, tolerance=xor_tolerance
        ).probability(clustering)
        fti_p = CatastrophicModel(
            placement, tolerance=rs_half_tolerance
        ).probability(clustering)
        assert xor_p > fti_p
        assert XorCode(k=4).encoding_byte_ops(100) < ReedSolomonCode(
            k=4, m=4
        ).encoding_byte_ops(100)

    def test_all_codes_recover_single_node_loss(self, setup):
        """Even XOR keeps the hierarchical clustering safe against the
        dominant failure mode (one node)."""
        placement, clustering = setup
        for _, _, tolerance in CODES:
            model = CatastrophicModel(placement, tolerance=tolerance)
            assert model.breaking_run_fraction(clustering, 1) == 0.0

    def test_only_fti_rs_survives_double_node_loss(self, setup):
        placement, clustering = setup
        frac = {
            name: CatastrophicModel(placement, tolerance=tol)
            .breaking_run_fraction(clustering, 2)
            for name, _, tol in CODES
        }
        assert frac["xor"] > 0.0
        assert frac["rs-fti (m=k)"] == 0.0
