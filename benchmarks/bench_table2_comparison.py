"""Table II — the detailed comparison of all four clustering strategies.

Regenerates every row (logging, recovery, encoding, reliability) and
checks each against the paper's values — exact where the quantity is
structural (encoding times, recovery fractions), order-of-magnitude for
the model-derived reliability column, and the documented metric variance
for the size-guided recovery entry (see EXPERIMENTS.md).
"""

import pytest

from repro.core import experiment_table2


def bench_table2(benchmark, scenario):
    """Time the full Table II evaluation pipeline."""
    report = benchmark(experiment_table2, scenario)
    print("\n" + report.to_table())
    assert report.satisfying() == ["hierarchical-64-4"]


class TestTable2Rows:
    """Paper values: (logging, recovery, encode s/GB, P[cat]) per strategy."""

    def test_naive_32(self, table2_report):
        s = table2_report.score_named("naive-32")
        assert s.logging_fraction == pytest.approx(0.035, abs=0.01)  # 3.5 %
        assert s.recovery_fraction == pytest.approx(0.031, abs=0.001)  # 3.1 %
        assert s.encoding_s_per_gb == pytest.approx(204.0)  # 204 s
        assert 1e-5 < s.prob_catastrophic < 1e-3  # 1e-4

    def test_size_guided_8(self, table2_report):
        s = table2_report.score_named("size-guided-8")
        assert s.logging_fraction == pytest.approx(0.129, abs=0.01)  # 12.9 %
        # Paper: 0.7 % (single-process metric); our node-failure metric
        # gives 1.6 % — same order, same ranking (see EXPERIMENTS.md).
        assert s.recovery_fraction < 0.02
        assert s.encoding_s_per_gb == pytest.approx(51.0)  # 51 s
        assert s.prob_catastrophic == pytest.approx(0.95, abs=0.01)  # 0.95

    def test_distributed_16(self, table2_report):
        s = table2_report.score_named("distributed-16")
        assert s.logging_fraction > 0.9  # 100 %
        assert s.recovery_fraction == pytest.approx(0.25)  # 25 %
        assert s.encoding_s_per_gb == pytest.approx(102.0)  # 102 s
        assert s.prob_catastrophic < 1e-13  # 1e-15

    def test_hierarchical_64_4(self, table2_report):
        s = table2_report.score_named("hierarchical-64-4")
        assert s.logging_fraction == pytest.approx(0.019, abs=0.003)  # 1.9 %
        assert s.recovery_fraction == pytest.approx(0.0625)  # 6.25 %
        assert s.encoding_s_per_gb == pytest.approx(25.5)  # 25 s
        assert 1e-7 < s.prob_catastrophic < 1e-5  # 1e-6

    def test_rankings_preserved(self, table2_report):
        """Cross-strategy orderings on every dimension match the paper."""
        get = table2_report.score_named
        naive, sg = get("naive-32"), get("size-guided-8")
        dist, hier = get("distributed-16"), get("hierarchical-64-4")
        # Logging: hier < naive < sg < dist.
        assert (
            hier.logging_fraction
            < naive.logging_fraction
            < sg.logging_fraction
            < dist.logging_fraction
        )
        # Recovery: sg < naive < hier < dist.
        assert (
            sg.recovery_fraction
            < naive.recovery_fraction
            < hier.recovery_fraction
            < dist.recovery_fraction
        )
        # Encoding: hier < sg < dist < naive.
        assert (
            hier.encoding_s_per_gb
            < sg.encoding_s_per_gb
            < dist.encoding_s_per_gb
            < naive.encoding_s_per_gb
        )
        # Reliability: dist < hier < naive < sg.
        assert (
            dist.prob_catastrophic
            < hier.prob_catastrophic
            < naive.prob_catastrophic
            < sg.prob_catastrophic
        )
