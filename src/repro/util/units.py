"""Byte/size/time unit helpers used across the library.

The paper quotes quantities in GB, seconds and percentages; keeping the
conversions in one place avoids the classic off-by-2**10 mistakes between
modules (e.g. the encoding-time model is calibrated in seconds *per GiB*).
"""

from __future__ import annotations

import math

#: Number of bytes in one kibibyte.
KiB: int = 1024
#: Number of bytes in one mebibyte.
MiB: int = 1024 * KiB
#: Number of bytes in one gibibyte.
GiB: int = 1024 * MiB

_SUFFIXES = (
    ("TiB", 1024 * GiB),
    ("GiB", GiB),
    ("MiB", MiB),
    ("KiB", KiB),
    ("B", 1),
)

_PARSE_SUFFIXES = {
    "b": 1,
    "kb": 1000,
    "kib": KiB,
    "mb": 1000**2,
    "mib": MiB,
    "gb": 1000**3,
    "gib": GiB,
    "tb": 1000**4,
    "tib": 1024 * GiB,
}


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``1536 -> '1.50 KiB'``.

    Negative values are formatted with a leading minus sign; fractional byte
    counts (which appear in analytic models) are allowed.
    """
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(float(nbytes))
    for suffix, factor in _SUFFIXES:
        if nbytes >= factor or suffix == "B":
            value = nbytes / factor
            if suffix == "B":
                return f"{sign}{value:.0f} B"
            return f"{sign}{value:.2f} {suffix}"
    raise AssertionError("unreachable")


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size (``"4 GiB"``, ``"512MB"``) into bytes.

    Integers and floats pass through unchanged (rounded to int). Plain
    numeric strings are interpreted as bytes. Decimal (kB/MB/GB) and binary
    (KiB/MiB/GiB) suffixes are both accepted, case-insensitively.
    """
    if isinstance(text, (int, float)):
        return int(text)
    stripped = text.strip().lower().replace(" ", "")
    for suffix in sorted(_PARSE_SUFFIXES, key=len, reverse=True):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)]
            if number:
                return int(float(number) * _PARSE_SUFFIXES[suffix])
    try:
        return int(float(stripped))
    except ValueError as exc:
        raise ValueError(f"cannot parse size: {text!r}") from exc


def format_duration(seconds: float) -> str:
    """Render a duration: sub-second in ms, minutes past 120 s, hours past 2 h."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


def format_probability(p: float) -> str:
    """Render a probability the way the paper does (``1e-4``, ``0.95``).

    Probabilities above 1 % are printed as fixed-point; smaller ones in
    scientific notation with one significant digit, matching Table II.
    """
    if p <= 0.0:
        return "0"
    if p >= 0.01:
        return f"{p:.2f}".rstrip("0").rstrip(".")
    exponent = math.floor(math.log10(p))
    mantissa = p / 10**exponent
    if abs(mantissa - 1.0) < 0.05:
        return f"1e{exponent:d}"
    return f"{mantissa:.1f}e{exponent:d}"
