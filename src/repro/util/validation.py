"""Argument-validation helpers with consistent, greppable error messages."""

from __future__ import annotations

import math


def check_finite(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number (no NaN, no infinities).

    NaN compares false against everything, so range checks alone let it
    slip through and poison downstream aggregates; call this first for
    quantities that feed means or fractions.
    """
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (strict bounds if not inclusive)."""
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_power_of_two(name: str, value: int) -> int:
    """Validate that ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value
