"""Minimal ASCII table renderer for benchmark/experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
renderer keeps that output aligned and diff-friendly without pulling in a
formatting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class AsciiTable:
    """Accumulate rows and render them as a fixed-width ASCII table.

    >>> t = AsciiTable(["method", "logged"], title="demo")
    >>> t.add_row(["naive", "3.5%"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; values are stringified, count must match columns."""
        row = [str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table (title, header, separator, rows) as one string."""
        widths = self._widths()

        def fmt(row: Sequence[str]) -> str:
            return " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.columns))
        lines.append(sep)
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
