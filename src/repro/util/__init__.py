"""Shared utilities: unit handling, RNG plumbing, validation, table rendering.

These helpers are deliberately tiny and dependency-free so that every other
subpackage (``simmpi``, ``clustering``, ``erasure`` …) can rely on them
without import cycles.
"""

from repro.util.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration,
    format_probability,
    parse_size,
)
from repro.util.rng import resolve_rng, spawn_rngs
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)
from repro.util.tables import AsciiTable

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_duration",
    "format_probability",
    "parse_size",
    "resolve_rng",
    "spawn_rngs",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_power_of_two",
    "AsciiTable",
]
