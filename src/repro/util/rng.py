"""Random-number-generator plumbing.

Every stochastic component of the library (failure injection, Monte-Carlo
reliability, synthetic workloads) accepts ``rng: int | numpy.random.Generator
| None`` and resolves it through :func:`resolve_rng`, so experiments are
reproducible by passing a seed at the top and nothing else.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def resolve_rng(rng=None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed,
    a :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can share state deliberately).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn_rngs(rng, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses :meth:`numpy.random.Generator.spawn` so children are statistically
    independent regardless of how many draws the parent has made — the right
    tool for giving each simulated rank or Monte-Carlo worker its own stream.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = resolve_rng(rng)
    return list(parent.spawn(n))
