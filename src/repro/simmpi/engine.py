"""Deterministic discrete-event engine driving simulated MPI rank programs.

Rank programs are Python *generator coroutines*: every communication
primitive is a generator that ``yield``\\ s low-level operations to the
engine and receives the result back through ``gen.send()``. Application code
therefore reads almost exactly like mpi4py::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=7)
        return result

The engine is *deterministic*: runnable ranks are resumed in sorted
batches (see below), message matching follows MPI's non-overtaking rule
per (sender, communicator), and virtual time is tracked per rank with a
latency/bandwidth network model. Determinism is what makes the protocol
tests (checkpoint/replay bit-equivalence) meaningful.

Scheduling
----------
The scheduler is a batched run-until-blocked loop. All ranks start
runnable; the engine drains the current batch in ascending rank order,
resuming each rank's generator until it either finishes or blocks on an
incomplete request. Ranks unblocked while a batch drains (a send
completing a peer's pending receive, the last member arriving at a fast
collective) accumulate into the *next* batch, which is sorted and drained
the same way, until no rank is runnable. The schedule is a pure function
of the programs — no heap, no wall-clock, no iteration order over hash
containers — so runs are exactly reproducible.

Dispatch of the yielded ops is a ``__class__``-identity chain over the
four op types (send post, receive post, wait, collective), and message
matching is per-channel: unexpected messages and pending receives live in
deques keyed by ``(source, tag)`` under each ``(communicator, receiver)``,
stamped with a global posting sequence. Exact-match traffic pops its
deque in O(1); wildcard receives (``ANY_SOURCE`` / ``ANY_TAG``) pick the
matching channel head with the smallest stamp, which reproduces exactly
the posted-order semantics of a linear scan.

Virtual-time semantics
----------------------
* each rank carries a local clock, advanced by ``ctx.advance(seconds)`` for
  compute and by communication waits;
* sends are buffered: posting captures the payload and completes
  immediately (the sender pays no wait time);
* a receive completes at ``max(local clock, message arrival time)`` where
  arrival = sender clock at post + network transfer time.

This is the standard LogP-style approximation used by trace-driven MPI
simulators; it reproduces exactly what the paper consumes (byte-accurate
traces, event ordering) while remaining fast enough for 1088-rank runs.

Fast-path collectives
---------------------
World-communicator ``bcast`` / ``reduce`` / ``allreduce`` / ``allgather``
/ ``alltoall`` / ``barrier`` skip the point-to-point generator cascade:
each rank yields a single :class:`CollectiveOp`, the engine parks it until
every rank has arrived, then computes results, per-rank clocks and trace
records in one vectorized pass over the network model
(:mod:`repro.simmpi.collectives`, second half). The fast path is
byte-identical to the cascade — same trace matrices, same message counts,
same clocks, same results — and is therefore active even under tracing.
It deactivates (per run) whenever a per-message observer needs to see the
individual point-to-point messages: a ``message_log`` (sender-based
payload logging), ``track_recv_counts`` (receiver-position sidecars), a
non-empty ``failure_ranks`` set (failures strike mid-cascade), or
``use_fast_collectives=False`` (the equivalence tests' pin). Collectives
on split sub-communicators always run the cascade.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.errors import DeadlockError, MatchingError, RankFailedError
from repro.simmpi.network import NetworkModel, zero_latency_network
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveRequest,
    Message,
    RecvRequest,
    Request,
    SendRequest,
    nbytes_of,
)
from repro.simmpi.tracing import TraceRecorder

# --------------------------------------------------------------------------
# Low-level operations yielded by primitives to the engine
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PostSend:
    """Post a buffered send; engine replies with a :class:`SendRequest`."""

    dest: int  # world rank
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    kind: str


@dataclass(slots=True)
class PostRecv:
    """Post a receive; engine replies with a :class:`RecvRequest`."""

    source: int  # world rank or ANY_SOURCE
    tag: int
    comm_id: int


@dataclass(slots=True)
class Wait:
    """Block until ``request`` completes; engine replies with the request."""

    request: Request


@dataclass(slots=True)
class CollectiveOp:
    """One rank's entry into a fast-path world collective.

    The engine replies with the rank's collective *result* (not a request)
    once every world rank has yielded the matching op. ``tag`` is the
    collective tag the slow path would have used — it keys concurrent
    collectives apart when ranks run ahead of each other.
    """

    kind: str  # "bcast" | "reduce" | "allreduce" | "allgather" | "alltoall" | "barrier"
    comm_id: int
    tag: int
    value: Any
    root: int
    op: Callable | None
    trace_kind: str


Op = PostSend | PostRecv | Wait | CollectiveOp


class RankContext:
    """Per-rank execution context handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this program instance.
    nranks:
        World size.
    clock:
        Local virtual time in seconds (mutated by the engine and by
        :meth:`advance`).
    comm:
        The world communicator (set by the engine before the program runs).
    """

    __slots__ = ("rank", "nranks", "clock", "comm", "engine", "user")

    def __init__(self, rank: int, nranks: int, engine: "Engine"):
        self.rank = rank
        self.nranks = nranks
        self.clock = 0.0
        self.comm = None  # filled in by Engine.run with the world communicator
        self.engine = engine
        self.user: dict[str, Any] = {}

    @property
    def now(self) -> float:
        """Current local virtual time in seconds."""
        return self.clock

    def advance(self, seconds: float) -> None:
        """Advance local time by ``seconds`` of modeled computation."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.clock += seconds


class _RankState:
    """Book-keeping for one live rank inside the engine."""

    __slots__ = ("rank", "gen", "ctx", "blocked_on", "finished", "result", "failed")

    def __init__(self, rank: int, gen: Generator, ctx: RankContext):
        self.rank = rank
        self.gen = gen
        self.ctx = ctx
        self.blocked_on: Request | None = None
        self.finished = False
        self.result: Any = None
        self.failed = False


class _PendingCollective:
    """Gathering state of one fast-path collective instance."""

    __slots__ = ("kind", "root", "trace_kind", "values", "op_fns", "requests", "count")

    def __init__(self, nranks: int, kind: str, root: int, trace_kind: str):
        self.kind = kind
        self.root = root
        self.trace_kind = trace_kind
        self.values: list[Any] = [None] * nranks
        self.op_fns: list[Callable | None] = [None] * nranks
        self.requests: list[CollectiveRequest | None] = [None] * nranks
        self.count = 0


RankProgram = Callable[[RankContext], Generator]


class Engine:
    """Deterministic discrete-event executor for simulated MPI programs.

    Parameters
    ----------
    nranks:
        World size.
    network:
        Timing model; defaults to a zero-latency network, which preserves
        ordering semantics and traces while making unit tests trivial.
    tracer:
        Optional :class:`TraceRecorder`; when provided, every message is
        recorded at send-post time (fast-path collectives record the same
        messages in bulk).
    use_fast_collectives:
        Allow world-communicator collectives to take the vectorized fast
        path. Set to ``False`` to pin every collective to the
        point-to-point generator cascade (the equivalence suite's
        reference).
    failure_ranks:
        Ranks that should fail by raising :class:`RankFailedError` inside
        their program the next time they interact with the engine. Used by
        the failure-injection layers; normal runs leave it empty.
    """

    def __init__(
        self,
        nranks: int,
        *,
        network: NetworkModel | None = None,
        tracer: TraceRecorder | None = None,
        use_fast_collectives: bool = True,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.network = network or zero_latency_network()
        self.tracer = tracer
        self.use_fast_collectives = use_fast_collectives
        self.failure_ranks: set[int] = set()

        # Protocol hooks (used by repro.hydee): an optional message log that
        # captures payloads of selected messages at send time, and
        # per-channel counts of *completed* receives — the two ingredients of
        # sender-based logging with receiver-side checkpointed positions.
        # Receive counting is opt-in (``track_recv_counts``): the protocol
        # layer enables it, plain trace/timing runs skip the per-receive
        # bookkeeping entirely. Either hook forces collectives onto the
        # per-message slow path so the observers see every message.
        self.message_log = None  # object with .wants(src, dst) and .record(...)
        self.track_recv_counts = False
        self.recv_counts: dict[tuple[int, int], int] = {}

        # Matching state, keyed by (comm_id, receiver world rank) and then
        # by (source, tag) channel; see _handle_send/_handle_recv_post.
        self._pending_recvs: dict[tuple[int, int], dict] = {}
        self._unexpected: dict[tuple[int, int], dict] = {}
        self._seq = 0  # global posting-order stamp

        # Communicator-id allocation (world == 0); see Communicator.split.
        self._next_comm_id = 1
        self._split_registry: dict[tuple, int] = {}

        self._states: list[_RankState] = []
        self._next_runnable: list[int] = []
        self._in_next: set[int] = set()

        # Fast-collective state: gathering slots and per-run eligibility.
        self._pending_colls: dict[tuple[int, int], _PendingCollective] = {}
        self._fast_coll_active = False
        self.fast_collectives_run = 0

    # -- communicator-id service -------------------------------------------

    def allocate_comm_id(self, key: tuple) -> int:
        """Return a stable comm id for ``key`` (same key → same id).

        All members of a split call with the same (parent, sequence, color)
        key and must agree on the resulting id regardless of the order in
        which the engine resumes them.
        """
        cid = self._split_registry.get(key)
        if cid is None:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._split_registry[key] = cid
        return cid

    # -- scheduling ----------------------------------------------------------

    def _make_runnable(self, rank: int) -> None:
        if rank not in self._in_next:
            self._in_next.add(rank)
            self._next_runnable.append(rank)

    def run(
        self,
        program: RankProgram | Sequence[RankProgram],
        *,
        comm_factory: Callable[[RankContext], Any] | None = None,
    ) -> list[Any]:
        """Execute one program per rank to completion; return their results.

        ``program`` is either a single callable used for every rank or a
        sequence of ``nranks`` callables. Each callable receives the rank's
        :class:`RankContext` and must return a generator.

        Raises :class:`DeadlockError` if no rank can make progress while
        some are unfinished.
        """
        from repro.simmpi.comm import Communicator  # local import, no cycle at module load

        if callable(program):
            programs: list[RankProgram] = [program] * self.nranks
        else:
            programs = list(program)
            if len(programs) != self.nranks:
                raise ValueError(
                    f"got {len(programs)} programs for {self.nranks} ranks"
                )

        self._states = []
        for rank in range(self.nranks):
            ctx = RankContext(rank, self.nranks, self)
            if comm_factory is not None:
                ctx.comm = comm_factory(ctx)
            else:
                ctx.comm = Communicator.world(ctx)
            gen = programs[rank](ctx)
            if not isinstance(gen, Generator):
                raise TypeError(
                    f"rank program for rank {rank} must return a generator; "
                    f"did you forget `yield` in the program body?"
                )
            self._states.append(_RankState(rank, gen, ctx))

        self._pending_colls = {}
        # Eligibility is fixed per run: every rank must take the same path
        # through a given collective, and all three per-message observers
        # (payload log, receive counting, failure injection) need the
        # cascade's individual messages.
        self._fast_coll_active = (
            self.use_fast_collectives
            and self.message_log is None
            and not self.track_recv_counts
            and not self.failure_ranks
        )

        states = self._states
        step = self._step
        batch = list(range(self.nranks))
        self._next_runnable = []
        self._in_next = set()
        while batch:
            for rank in batch:
                step(states[rank])
            batch = self._next_runnable
            batch.sort()
            self._next_runnable = []
            self._in_next = set()

        unfinished = [s for s in self._states if not s.finished]
        if unfinished:
            blocked = {
                s.rank: (s.blocked_on.describe() if s.blocked_on else "not scheduled")
                for s in unfinished
            }
            raise DeadlockError(blocked)
        return [s.result for s in self._states]

    def _step(self, state: _RankState) -> None:
        """Resume one rank and run it until it finishes or blocks."""
        send_value: Any = None
        throw_exc: BaseException | None = None
        if state.blocked_on is not None:
            # Waking from a Wait: answer the pending yield with the request
            # (or, for a fast collective, with this rank's result).
            request = state.blocked_on
            state.blocked_on = None
            if not request.done:
                raise MatchingError("rank resumed on an incomplete request")
            if request.__class__ is CollectiveRequest:
                send_value = request.result
            else:
                send_value = self._complete_wait(state, request)

        gen_send = state.gen.send
        failure_ranks = self.failure_ranks
        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    op = state.gen.throw(exc)
                else:
                    op = gen_send(send_value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                return
            except RankFailedError:
                state.finished = True
                state.failed = True
                state.result = None
                return

            if failure_ranks and state.rank in failure_ranks and not state.failed:
                # Inject the failure at the rank's next communication
                # point (generators cannot catch exceptions thrown before
                # their first yield). The pending op is dropped — the
                # message is never posted, exactly like a crash mid-call.
                state.failed = True
                throw_exc = RankFailedError(state.rank)
                continue

            cls = op.__class__
            if cls is PostSend:
                send_value = self._handle_send(state, op)
            elif cls is PostRecv:
                send_value = self._handle_recv_post(state, op)
            elif cls is Wait:
                request = op.request
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            elif cls is CollectiveOp:
                request = self._handle_collective(state, op)
                if request.done:
                    send_value = request.result
                else:
                    state.blocked_on = request
                    return
            else:
                raise MatchingError(f"rank {state.rank} yielded unknown op {op!r}")

    # -- op handlers ---------------------------------------------------------

    def _handle_send(self, state: _RankState, op: PostSend) -> SendRequest:
        src = state.rank
        dst = op.dest
        clock = state.ctx.clock
        arrival = clock + self.network.transfer_time(src, dst, op.nbytes)
        message = Message(
            src=src,
            dst=dst,
            tag=op.tag,
            comm_id=op.comm_id,
            payload=op.payload,
            nbytes=op.nbytes,
            send_time=clock,
            arrival_time=arrival,
        )
        message.kind = op.kind
        if self.tracer is not None:
            self.tracer.record(src, dst, op.nbytes, kind=op.kind)
        if self.message_log is not None and self.message_log.wants(src, dst):
            self.message_log.record(
                src, dst, op.tag, op.payload, op.nbytes, op.kind
            )

        key = (op.comm_id, dst)
        channels = self._pending_recvs.get(key)
        if channels:
            req = self._match_pending_recv(channels, src, op.tag)
            if req is not None:
                req.complete(message)
                self._unblock_if_waiting(dst, req)
                return SendRequest(src, message)
        bucket = self._unexpected.get(key)
        if bucket is None:
            bucket = self._unexpected[key] = {}
        chan = bucket.get((src, op.tag))
        if chan is None:
            chan = bucket[(src, op.tag)] = deque()
        chan.append((self._seq, message))
        self._seq += 1
        return SendRequest(src, message)

    @staticmethod
    def _match_pending_recv(channels: dict, src: int, tag: int):
        """Earliest-posted pending receive whose pattern accepts (src, tag).

        A receive pattern is one of four channels — exact, source-wildcard,
        tag-wildcard, both-wildcard — so candidate lookup is four dict
        probes; the posting-sequence stamps arbitrate between them exactly
        like a linear scan over posting order.
        """
        best_seq = None
        best_pattern = None
        for pattern in (
            (src, tag),
            (src, ANY_TAG),
            (ANY_SOURCE, tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            chan = channels.get(pattern)
            if chan:
                seq = chan[0][0]
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best_pattern = pattern
        if best_pattern is None:
            return None
        chan = channels[best_pattern]
        _, req = chan.popleft()
        if not chan:
            # Drop drained channels: slow-path collectives mint a fresh tag
            # per call, so stale empty deques would otherwise accumulate
            # for the lifetime of a long protocol run.
            del channels[best_pattern]
        return req

    def _handle_recv_post(self, state: _RankState, op: PostRecv) -> RecvRequest:
        req = RecvRequest(state.rank, op.source, op.tag, op.comm_id)
        key = (op.comm_id, state.rank)
        bucket = self._unexpected.get(key)
        if bucket:
            message = self._match_unexpected(bucket, op.source, op.tag)
            if message is not None:
                req.complete(message)
                return req
        channels = self._pending_recvs.get(key)
        if channels is None:
            channels = self._pending_recvs[key] = {}
        chan = channels.get((op.source, op.tag))
        if chan is None:
            chan = channels[(op.source, op.tag)] = deque()
        chan.append((self._seq, req))
        self._seq += 1
        return req

    @staticmethod
    def _match_unexpected(bucket: dict, source: int, tag: int):
        """Earliest-arrived unexpected message matching a receive pattern.

        Exact patterns probe one channel deque; wildcard patterns scan the
        receiver's active channels and take the head with the smallest
        arrival stamp — identical to scanning one arrival-ordered list.
        """
        if source != ANY_SOURCE and tag != ANY_TAG:
            chan = bucket.get((source, tag))
            if not chan:
                return None
            _, message = chan.popleft()
            if not chan:
                del bucket[(source, tag)]
            return message
        best_seq = None
        best_key = None
        for (src, mtag), chan in bucket.items():
            if source != ANY_SOURCE and src != source:
                continue
            if tag != ANY_TAG and mtag != tag:
                continue
            seq = chan[0][0]
            if best_seq is None or seq < best_seq:
                best_seq = seq
                best_key = (src, mtag)
        if best_key is None:
            return None
        chan = bucket[best_key]
        _, message = chan.popleft()
        if not chan:
            del bucket[best_key]
        return message

    def _handle_collective(
        self, state: _RankState, op: CollectiveOp
    ) -> CollectiveRequest:
        key = (op.comm_id, op.tag)
        entry = self._pending_colls.get(key)
        if entry is None:
            entry = self._pending_colls[key] = _PendingCollective(
                self.nranks, op.kind, op.root, op.trace_kind
            )
        elif entry.kind != op.kind or entry.root != op.root:
            raise MatchingError(
                f"rank {state.rank} joined collective {op.kind!r} (root "
                f"{op.root}) but tag {op.tag} gathers {entry.kind!r} (root "
                f"{entry.root})"
            )
        rank = state.rank
        if entry.requests[rank] is not None:
            raise MatchingError(
                f"rank {rank} entered collective tag {op.tag} twice"
            )
        req = CollectiveRequest(rank, op.kind, op.comm_id, op.tag)
        entry.values[rank] = op.value
        entry.op_fns[rank] = op.op
        entry.requests[rank] = req
        entry.count += 1
        if entry.count == self.nranks:
            del self._pending_colls[key]
            self._complete_collective(entry)
        return req

    def _complete_collective(self, entry: _PendingCollective) -> None:
        """Compute a fully-gathered collective and wake its members."""
        states = self._states
        clocks = np.fromiter(
            (s.ctx.clock for s in states), dtype=np.float64, count=self.nranks
        )
        results, new_clocks = _coll.execute_fast_collective(
            entry.kind,
            values=entry.values,
            op_fns=entry.op_fns,
            root=entry.root,
            trace_kind=entry.trace_kind,
            clocks=clocks,
            network=self.network,
            tracer=self.tracer,
        )
        self.fast_collectives_run += 1
        for rank, req in enumerate(entry.requests):
            states[rank].ctx.clock = float(new_clocks[rank])
            req.result = results[rank]
            req.done = True
            if states[rank].blocked_on is req:
                self._make_runnable(rank)

    def _unblock_if_waiting(self, rank: int, request: Request) -> None:
        state = self._states[rank]
        if state.blocked_on is request:
            # Leave blocked_on set: _step consumes it on resume so the
            # pending Wait yield receives the completed request.
            self._make_runnable(rank)

    def _complete_wait(self, state: _RankState, request: Request) -> Request:
        """Account virtual time for a completed wait and return the request."""
        if isinstance(request, RecvRequest):
            message = request.message
            if message is None:
                raise MatchingError("completed receive without a message")
            if message.arrival_time > state.ctx.clock:
                state.ctx.clock = message.arrival_time
            if self.track_recv_counts:
                channel = (message.src, state.rank)
                self.recv_counts[channel] = self.recv_counts.get(channel, 0) + 1
        return request

    # -- introspection ---------------------------------------------------------

    @property
    def max_time(self) -> float:
        """Largest rank clock seen so far (the run's virtual makespan)."""
        if not self._states:
            return 0.0
        return max(s.ctx.clock for s in self._states)

    def rank_times(self) -> list[float]:
        """Per-rank final virtual clocks (after :meth:`run`)."""
        return [s.ctx.clock for s in self._states]


def run_program(
    program: RankProgram | Sequence[RankProgram],
    nranks: int,
    *,
    network: NetworkModel | None = None,
    tracer: TraceRecorder | None = None,
    use_fast_collectives: bool = True,
) -> list[Any]:
    """One-shot convenience wrapper: build an engine, run, return results."""
    engine = Engine(
        nranks,
        network=network,
        tracer=tracer,
        use_fast_collectives=use_fast_collectives,
    )
    return engine.run(program)


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveOp",
    "Engine",
    "PostRecv",
    "PostSend",
    "RankContext",
    "Wait",
    "run_program",
    "nbytes_of",
]
