"""Deterministic discrete-event engine driving simulated MPI rank programs.

Rank programs are Python *generator coroutines*: every communication
primitive is a generator that ``yield``\\ s low-level operations to the
engine and receives the result back through ``gen.send()``. Application code
therefore reads almost exactly like mpi4py::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=7)
        return result

The engine is *deterministic*: runnable ranks are resumed in sorted
batches (see below), message matching follows MPI's non-overtaking rule
per (sender, communicator), and virtual time is tracked per rank with a
latency/bandwidth network model. Determinism is what makes the protocol
tests (checkpoint/replay bit-equivalence) meaningful.

Scheduling
----------
The scheduler is a batched run-until-blocked loop. All ranks start
runnable; the engine drains the current batch in ascending rank order,
resuming each rank's generator until it either finishes or blocks on an
incomplete request. Ranks unblocked while a batch drains (a send
completing a peer's pending receive, the last member arriving at a fast
collective) accumulate into the *next* batch, which is sorted and drained
the same way, until no rank is runnable. The schedule is a pure function
of the programs — no heap, no wall-clock, no iteration order over hash
containers — so runs are exactly reproducible.

``Engine(schedule_seed=...)`` turns on *interleaving exploration*: each
batch is additionally permuted by a dedicated seeded Generator after its
canonical sort. Ranks within a batch are causally unordered, so every
permuted drain is a legal MPI schedule — per-rank program order and
per-channel non-overtaking are untouched; only the global
posting-sequence interleaving (and therefore wildcard arbitration and
deadlock potential) varies. Applied permutations are recorded as a
:class:`~repro.simmpi.schedule.ScheduleTrace` so any explored schedule
replays exactly, from the seed or from the trace
(``Engine(schedule_trace=...)``). The default path is byte-for-byte the
canonical drain, and steady-state kernels deopt
(``non-canonical-schedule``) while exploring.

Dispatch of the yielded ops is a ``__class__``-identity chain over the
six op types (send post, receive post, wait, wait-all, persistent start,
collective), and message matching is per-channel: unexpected messages and
pending receives live in deques keyed by ``(source, tag)`` under each
``(communicator, receiver)``, stamped with a global posting sequence.
Exact-match traffic pops its deque in O(1); wildcard receives
(``ANY_SOURCE`` / ``ANY_TAG``) pick the matching channel head with the
smallest stamp, which reproduces exactly the posted-order semantics of a
linear scan.

The message pool
----------------
In-flight messages are not Python objects. The engine owns one
:class:`~repro.simmpi.request.MessagePool` — parallel NumPy columns for
source / destination / tag / communicator / byte count / posting sequence /
send time / arrival time, plus payload and kind lists and a LIFO free
list — and every posted send allocates a *slot index* in it. Matching
moves slot ``int``\\ s through the channel deques, wildcard arbitration
compares ``pool.seq`` entries, and the wait that consumes a receive copies
the slot out into an immutable
:class:`~repro.simmpi.request.MessageView` before recycling it. Observers
(``Status``, payload delivery, the protocol's receive counting) only ever
see views — a recycled slot can never corrupt a completed receive. Send
handles carry no message state at all: every send post returns the shared
:data:`~repro.simmpi.request.COMPLETED_SEND` instance.

Batched p2p pricing
-------------------
Posting a send does not price it. The slot is allocated with the
:data:`~repro.simmpi.request.UNPRICED` arrival sentinel and queued on the
current *wave*; when the scheduler finishes draining a batch, the whole
accumulated send wave is priced in one vectorized
:meth:`NetworkModel.transfer_times <repro.simmpi.network.NetworkModel.transfer_times>`
call and written back with a single fancy-indexed assignment
(``pool.arrival[wave] = pool.send_time[wave] + times``). A receive
completed *within* the posting batch prices its one slot scalar on demand —
the flush then simply overwrites it with the bit-identical value. Trace
recording is batched on the same cadence: each wave accumulates per-kind
``(src, dst, nbytes)`` triples and flushes them through
:meth:`TraceRecorder.record_many <repro.simmpi.tracing.TraceRecorder.record_many>`,
which produces byte-identical matrices to per-message recording (integer
byte counts — accumulation order cannot perturb the float sums). Arrival
times are bit-identical to the scalar path (``use_batched_p2p=False`` pins
the per-message reference, which also keeps per-message trace recording;
the equivalence suite compares both).

Persistent-request waves
------------------------
``send_init`` / ``recv_init`` build reusable request recipes and
``start_all`` posts a whole wave of them through one yielded
:class:`StartAll` op; ``waitall`` blocks on one :class:`WaitAll` op instead
of one ``Wait`` per message. This is MPI's persistent-communication shape
(``MPI_Send_init`` / ``MPI_Startall``) and it is what stencil codes use in
practice: the per-iteration halo exchange costs two scheduler interactions
per rank instead of roughly three per message, while posting order, message
matching, pricing and tracing stay exactly those of the equivalent
``isend`` / ``irecv`` / ``wait`` sequence (the equivalence suite pins
traces, clocks and results against the per-message program). All traced
workloads speak this shape by default (``use_waves`` on the app
configs); re-arming is restart-safe — a start refuses a receive still in
flight or matched-but-never-drained — and failure injection sees waves
and per-message sequences identically (a dropped start posts nothing,
exactly like a crash before the first ``isend`` of the equivalent
sequence).

Virtual-time semantics
----------------------
* each rank carries a local clock, advanced by ``ctx.advance(seconds)`` for
  compute and by communication waits;
* sends are buffered: posting captures the payload and completes
  immediately (the sender pays no wait time);
* a receive completes at ``max(local clock, message arrival time)`` where
  arrival = sender clock at post + network transfer time.

This is the standard LogP-style approximation used by trace-driven MPI
simulators; it reproduces exactly what the paper consumes (byte-accurate
traces, event ordering) while remaining fast enough for 1088-rank runs.

Fast-path collectives
---------------------
``bcast`` / ``reduce`` / ``allreduce`` / ``allgather`` / ``alltoall`` /
``barrier`` on the world communicator *or any split sub-communicator* skip
the point-to-point generator cascade: each member yields a single
:class:`CollectiveOp`, the engine parks it until every member of the
communicator's registered group has arrived, then computes results,
per-member clocks and trace records in one vectorized pass over the
group's slice of the network model (:mod:`repro.simmpi.collectives`,
second half). Membership bookkeeping lives in the engine: comm id 0 is
the world group, and ``Communicator.split`` registers each new group
(stable comm ids via :meth:`Engine.allocate_comm_id`, rank→group-rank
maps via :meth:`Engine.register_group`). Split *plans* are engine-cached
too: every member of a split derives the identical color→(id, members)
map from the identical allgather, so the first member computes it once
and the rest look their color up — O(ranks) total instead of O(ranks²). A deadlock involving a
partially-gathered collective is attributed to the stuck group: the error
names the member's group rank and the world ranks that never arrived.

The fast path is byte-identical to the cascade — same trace matrices,
same message counts, same clocks, same results — and is therefore active
even under tracing. It deactivates (per run) whenever a per-message
observer needs to see the individual point-to-point messages: a
``message_log`` (sender-based payload logging), ``track_recv_counts``
(receiver-position sidecars), a non-empty ``failure_ranks`` set (failures
strike mid-cascade), or ``use_fast_collectives=False`` (the equivalence
tests' pin). Communicators whose membership the engine does not know
(e.g. the HydEE replay communicator) always run the cascade.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.config import EngineConfig
from repro.simmpi.errors import DeadlockError, MatchingError, RankFailedError
from repro.simmpi.network import NetworkModel, zero_latency_network
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    COMPLETED_SEND,
    UNPRICED,
    CollectiveRequest,
    MessagePool,
    MessageView,
    PLAN_RECV,
    PLAN_SEND_CAPTURE,
    PLAN_SEND_STATIC,
    PersistentRecvRequest,
    PersistentSendRequest,
    RecvRequest,
    Request,
    WaitAllRequest,
    capture_payload,
    nbytes_of,
    static_wave_columns,
)
from repro.simmpi.schedule import ScheduleTrace
from repro.simmpi.tracing import TraceRecorder

# --------------------------------------------------------------------------
# Low-level operations yielded by primitives to the engine
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PostSend:
    """Post a buffered send; engine replies with a :class:`SendRequest`."""

    dest: int  # world rank
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    kind: str


@dataclass(slots=True)
class PostRecv:
    """Post a receive; engine replies with a :class:`RecvRequest`."""

    source: int  # world rank or ANY_SOURCE
    tag: int
    comm_id: int


@dataclass(slots=True)
class Wait:
    """Block until ``request`` completes; engine replies with the request."""

    request: Request


@dataclass(slots=True)
class WaitAll:
    """Block until every request completes; engine replies with per-request
    results in order (the received payload for receives, ``None`` for
    sends) — one scheduler interaction for a whole wave of waits."""

    requests: Sequence[Request]


@dataclass(slots=True)
class StartAll:
    """Activate a wave of persistent requests in list order; engine replies
    ``None``. Sends post one fresh pool message from their recipe; receives
    re-enter matching. ``plan`` caches the engine's compiled posting plan —
    ops are reusable, so a steady-state wave compiles exactly once."""

    requests: Sequence[Request]
    plan: list | None = None


@dataclass(slots=True)
class CollectiveOp:
    """One rank's entry into a fast-path world collective.

    The engine replies with the rank's collective *result* (not a request)
    once every world rank has yielded the matching op. ``tag`` is the
    collective tag the slow path would have used — it keys concurrent
    collectives apart when ranks run ahead of each other.
    """

    kind: str  # "bcast" | "reduce" | "allreduce" | "allgather" | "alltoall" | "barrier"
    comm_id: int
    tag: int
    value: Any
    root: int
    op: Callable | None
    trace_kind: str


@dataclass(slots=True)
class KernelLoop:
    """A declared steady-state loop: ``iterations`` repetitions of (post
    ``start``, drain ``drain``), then an optional back-to-back collective
    window, in one engine interaction.

    The op is *defined* as exactly this program fragment::

        for _ in range(iterations):
            yield start
            results = yield drain
        window = [(yield c) for c in colls]
        # engine replies with `results` (the LAST drain's payload list),
        # or `(results, window)` when the collective window is non-empty

    and the engine's interpreted handler executes precisely that expansion
    through the ordinary ``StartAll`` / ``WaitAll`` / ``CollectiveOp``
    machinery — identical posting order, matching, pricing, tracing,
    clocks and failure injection — without resuming the rank's generator
    between iterations. Intermediate drain payloads are discarded; only a
    program that does not consume them (synthetic traced steady loops) may
    yield this op.

    When every unfinished rank reaches such a loop and the cycle is
    provably static (see ``Engine._compile_kernel``), the engine compiles
    the whole-world iteration into a :class:`_SteadyStateKernel` and
    executes all iterations with closed-form clock recurrences —
    byte-identical traces, bit-identical clocks. Anything dynamic deopts
    back to the expansion above.
    """

    start: StartAll
    drain: WaitAll
    iterations: int
    colls: tuple = ()  # CollectiveOps run back-to-back after the last drain


Op = PostSend | PostRecv | Wait | WaitAll | StartAll | CollectiveOp | KernelLoop


class RankContext:
    """Per-rank execution context handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this program instance.
    nranks:
        World size.
    clock:
        Local virtual time in seconds (mutated by the engine and by
        :meth:`advance`).
    comm:
        The world communicator (set by the engine before the program runs).
    """

    __slots__ = ("rank", "nranks", "clock", "comm", "engine", "user")

    def __init__(self, rank: int, nranks: int, engine: "Engine"):
        self.rank = rank
        self.nranks = nranks
        self.clock = 0.0
        self.comm = None  # filled in by Engine.run with the world communicator
        self.engine = engine
        self.user: dict[str, Any] = {}

    @property
    def now(self) -> float:
        """Current local virtual time in seconds."""
        return self.clock

    def advance(self, seconds: float) -> None:
        """Advance local time by ``seconds`` of modeled computation."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.clock += seconds


class _RankState:
    """Book-keeping for one live rank inside the engine."""

    __slots__ = (
        "rank",
        "gen",
        "ctx",
        "blocked_on",
        "finished",
        "result",
        "failed",
        "kernel",
    )

    def __init__(self, rank: int, gen: Generator, ctx: RankContext):
        self.rank = rank
        self.gen = gen
        self.ctx = ctx
        self.blocked_on: Request | None = None
        self.finished = False
        self.result: Any = None
        self.failed = False
        self.kernel: _KernelState | None = None


class _KernelState:
    """Progress of one rank through a :class:`KernelLoop`.

    ``remaining`` counts iterations whose drain has not been consumed yet
    (so a rank parked on its drain still counts that iteration);
    ``window_at`` indexes the next collective of the trailing window;
    ``results`` holds the final drain's ordered payload list once the last
    iteration is consumed; ``window_results`` collects the trailing
    collective window's per-position results.
    """

    __slots__ = ("op", "remaining", "window_at", "results", "window_results")

    def __init__(self, op: KernelLoop):
        self.op = op
        self.remaining = op.iterations
        self.window_at = 0
        self.results: list | None = None
        self.window_results: list = []


#: Sentinels returned by the kernel-loop driver to _step.
_KERNEL_PARKED = object()
_KERNEL_FAILED = object()


class _SteadyStateKernel:
    """A compiled whole-world iteration: the static (send wave → drain)
    cycle of one participant set, ready for closed-form execution.

    Built by ``Engine._compile_kernel`` once the participants' persistent
    wave plans are proven static and closed (every send matched by exactly
    one receive of another participant per iteration). Holds the edge
    arrays (world/participant-indexed sources and destinations, byte
    counts, per-edge transfer times), the destination-sorted view used by
    the ``np.maximum.reduceat`` clock recurrence, per-kind tracer index
    groups, the per-iteration posting-sequence consumption, and for each
    participant the drain-position → edge mapping that materializes the
    final iteration's results.
    """

    __slots__ = (
        "participants",
        "ops",
        "comm_ids",
        "esrc_w",
        "edst_w",
        "enb",
        "transfer",
        "src_idx",
        "order",
        "dst_starts",
        "dst_uniq",
        "kind_groups",
        "seq_per_iter",
        "edge_payloads",
        "edge_tags",
        "drain_edges",
    )


class _PendingCollective:
    """Gathering state of one fast-path collective instance.

    ``group`` is the owning communicator's membership (group rank → world
    rank); ``values``/``op_fns``/``requests`` are indexed by group rank.
    """

    __slots__ = (
        "kind",
        "root",
        "trace_kind",
        "group",
        "values",
        "op_fns",
        "requests",
        "count",
    )

    def __init__(self, group: tuple[int, ...], kind: str, root: int, trace_kind: str):
        size = len(group)
        self.kind = kind
        self.root = root
        self.trace_kind = trace_kind
        self.group = group
        self.values: list[Any] = [None] * size
        self.op_fns: list[Callable | None] = [None] * size
        self.requests: list[CollectiveRequest | None] = [None] * size
        self.count = 0

    def missing_members(self) -> list[int]:
        """World ranks of members that have not reached the collective."""
        return [
            self.group[g]
            for g, req in enumerate(self.requests)
            if req is None
        ]


class _Mailbox:
    """Matching state of one (communicator, receiver) endpoint.

    ``pending`` maps (source, tag) patterns to deques of parked
    :class:`RecvRequest`\\ s; ``unexpected`` maps (source, tag) channels to
    deques of pool slot ints; ``wild`` counts parked wildcard receives —
    while zero, a send needs exactly one dict probe to find its match.
    """

    __slots__ = ("pending", "unexpected", "wild")

    def __init__(self):
        self.pending: dict[tuple[int, int], deque] = {}
        self.unexpected: dict[tuple[int, int], deque] = {}
        self.wild = 0


RankProgram = Callable[[RankContext], Generator]


class Engine:
    """Deterministic discrete-event executor for simulated MPI programs.

    Parameters
    ----------
    nranks:
        World size.
    network:
        Timing model; defaults to a zero-latency network, which preserves
        ordering semantics and traces while making unit tests trivial.
    tracer:
        Optional :class:`TraceRecorder`; when provided, every message is
        recorded (fast-path collectives and batched p2p waves record the
        same messages in bulk; the scalar p2p reference records at post
        time).
    use_fast_collectives:
        Allow collectives (world or split sub-communicator) to take the
        vectorized fast path. Set to ``False`` to pin every collective to
        the point-to-point generator cascade (the equivalence suite's
        reference).
    use_batched_p2p:
        Price point-to-point sends in vectorized waves (one
        :meth:`NetworkModel.transfer_times` call and one fancy-indexed
        pool assignment per drained batch) instead of one scalar
        :meth:`NetworkModel.transfer_time` call per message. Arrival times
        are bit-identical either way; set to ``False`` to pin the scalar
        reference path.
    use_kernels:
        Allow :class:`KernelLoop` steady-state loops to compile into
        whole-world :class:`_SteadyStateKernel` executions once every
        unfinished rank cycles through a static wave. Set to ``False`` to
        pin the loop's interpreted expansion (still zero generator wakeups
        between matching points, but every message posted individually —
        the kernel equivalence suite's reference). The vectorized path
        additionally self-gates exactly like the other fast paths: any
        per-message observer (``message_log``, ``track_recv_counts``,
        failure injection) or ``use_batched_p2p=False`` keeps the
        interpreted expansion.
    pool_capacity:
        Initial slot count of the engine's :class:`MessagePool`; the pool
        doubles on demand, so this only sizes the steady state (tests use
        tiny capacities to exercise growth).
    schedule_seed:
        Seeded interleaving exploration. When set, every scheduler batch
        is permuted by a dedicated ``numpy`` Generator after its canonical
        ascending sort — the ranks of a batch are causally unordered, so
        every permuted drain is a legal MPI schedule; per-rank program
        order and per-(sender, communicator) non-overtaking are
        untouched. What changes is the *global* posting-sequence
        interleaving, which is exactly what wildcard arbitration and
        deadlock hunting need to see varied. The default ``None`` keeps
        the canonical deterministic drain byte-for-byte (the permutation
        machinery is bypassed entirely). Applied permutations are
        recorded on :attr:`schedule_trace` after every run, so any
        explored schedule replays exactly from the seed or from the
        recorded trace. Steady-state kernels deopt under a non-canonical
        schedule (``kernel_deopts["non-canonical-schedule"]``): their
        closed-form execution assumes the canonical posting sequence.
    schedule_trace:
        Replay a recorded :class:`~repro.simmpi.schedule.ScheduleTrace`
        instead of drawing permutations from a seed (repro files and the
        schedule shrinker use this). Entries whose permutation length no
        longer matches the batch are skipped — the batch drains
        canonically — so partially-reverted traces stay legal. Takes
        precedence over ``schedule_seed`` when both are given.
    failure_ranks:
        Ranks that should fail by raising :class:`RankFailedError` inside
        their program the next time they interact with the engine. Used by
        the failure-injection layers; normal runs leave it empty.

    The primary constructor is ``Engine(nranks, config=EngineConfig(...))``:
    one frozen, picklable object carries every knob above (plus the
    failure/observer gates), which is what the sharded engine's workers and
    the fuzz executor replicate across process boundaries. The loose
    keyword arguments keep working as a shim that builds the equivalent
    config; passing ``config=`` *and* a legacy keyword raises — merging
    them silently would make the winning flag ambiguous.
    """

    _UNSET = object()  # legacy-kwarg sentinel for the config shim

    def __init__(
        self,
        nranks: int,
        *,
        config: EngineConfig | None = None,
        network: NetworkModel | None = None,
        tracer: TraceRecorder | None = None,
        use_fast_collectives: bool | object = _UNSET,
        use_batched_p2p: bool | object = _UNSET,
        use_kernels: bool | object = _UNSET,
        pool_capacity: int | object = _UNSET,
        schedule_seed: "int | None | object" = _UNSET,
        schedule_trace: "ScheduleTrace | None | object" = _UNSET,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        unset = Engine._UNSET
        legacy = {
            name: value
            for name, value in (
                ("use_fast_collectives", use_fast_collectives),
                ("use_batched_p2p", use_batched_p2p),
                ("use_kernels", use_kernels),
                ("pool_capacity", pool_capacity),
                ("schedule_seed", schedule_seed),
                ("schedule_trace", schedule_trace),
            )
            if value is not unset
        }
        if config is None:
            config = EngineConfig(**legacy)
        elif legacy:
            raise TypeError(
                "Engine() got both config= and legacy keyword(s) "
                f"{sorted(legacy)} — put every flag on the EngineConfig"
            )
        self.config = config
        self.nranks = nranks
        self.network = network or zero_latency_network()
        self.tracer = tracer
        self.use_fast_collectives = config.use_fast_collectives
        self.use_batched_p2p = config.use_batched_p2p
        self.use_kernels = config.use_kernels
        # Mutable working copy: the failure layers arm ranks mid-run.
        self.failure_ranks: set[int] = set(config.failure_ranks)

        # Interleaving exploration (see the schedule_seed parameter).
        # ``schedule_trace`` publishes the permutations the last run
        # applied (None after canonical runs); ``_replay_trace`` is the
        # recorded trace a replay run applies instead of drawing.
        self.schedule_seed = config.schedule_seed
        self._replay_trace = config.schedule_trace
        self.schedule_trace: ScheduleTrace | None = None
        self._sched_exploring = False

        # Protocol hooks (used by repro.hydee): an optional message log that
        # captures payloads of selected messages at send time, and
        # per-channel counts of *consumed* receives — the two ingredients of
        # sender-based logging with receiver-side checkpointed positions.
        # Receive counting is opt-in (``track_recv_counts``): the protocol
        # layer enables it, plain trace/timing runs skip the per-receive
        # bookkeeping entirely. Either hook forces collectives onto the
        # per-message slow path so the observers see every message. Both
        # observers consume scalars / MessageViews — never pool slots.
        self.message_log = None  # object with .wants(src, dst) and .record(...)
        self.track_recv_counts = config.track_recv_counts
        self.recv_counts: dict[tuple[int, int], int] = {}

        # The struct-of-arrays message store; see repro.simmpi.request.
        self.pool = MessagePool(config.pool_capacity)

        # Matching state: one _Mailbox per (comm_id, receiver world rank),
        # each holding per-(source, tag) channels. Pending-receive channels
        # hold the RecvRequest objects (each stamped with .seq);
        # unexpected-message channels hold bare pool slot ints (their stamp
        # is pool.seq[slot]). ``wild`` counts queued wildcard receives so
        # the overwhelmingly common no-wildcard case matches with a single
        # dict probe.
        self._mailboxes: dict[tuple[int, int], _Mailbox] = {}
        # World-communicator mailboxes get a flat rank-indexed array (comm
        # id 0 carries nearly all p2p traffic; skipping the tuple-key dict
        # saves a hash per message).
        self._world_mail: list[_Mailbox | None] = [None] * nranks
        self._seq = 0  # global posting-order stamp

        # Batched p2p pricing: sends posted with the UNPRICED sentinel
        # accumulate their slots (and kinds) on the current wave; the wave
        # is priced, traced and recycled once per drained scheduler batch.
        # Slots consumed mid-batch park on the deferred-free list so wave
        # entries always describe the wave's own messages at flush time.
        self._wave_slots: list[int] = []
        self._wave_kinds: list[str] = []
        self._deferred_free: list[int] = []

        # Communicator-id allocation (world == 0); see Communicator.split.
        # Per-group membership bookkeeping: comm id → (group rank → world
        # rank) tuple and comm id → {world rank → group rank} map. Fast-path
        # collectives are only available on registered groups.
        self._next_comm_id = 1
        self._split_registry: dict[tuple, int] = {}
        # Shared split plans: (parent comm id, split seq) → {color → (new
        # comm id, membership tuple)}. Every member of a split derives the
        # identical plan from the identical allgather, so the first member
        # computes it and the rest look their color up (see
        # Communicator.split).
        self._split_plans: dict[tuple[int, int], dict] = {}
        world = tuple(range(nranks))
        self._groups: dict[int, tuple[int, ...]] = {0: world}
        self._group_rank: dict[int, dict[int, int]] = {
            0: {r: r for r in world}
        }

        self._states: list[_RankState | None] = []
        self._next_runnable: list[int] = []
        self._in_next: set[int] = set()

        # Fast-collective state: gathering slots and per-run eligibility.
        self._pending_colls: dict[tuple[int, int], _PendingCollective] = {}
        self._fast_coll_active = False
        self.fast_collectives_run = 0

        # Steady-state kernel bookkeeping: compiled kernels (or cached
        # rejections) keyed by the participants' (rank, start-op, drain-op)
        # identity signature, per-run vectorization eligibility, the ranks
        # currently held at a KernelLoop yield, a live count of unfinished
        # ranks (the whole-world trigger condition), and cumulative
        # counters mirroring ``fast_collectives_run``. ``kernel_deopts``
        # counts, per reason, cycles that stayed on the interpreted
        # expansion — the deopt tests read it.
        self._kernel_cache: dict[tuple, tuple] = {}
        self._kernel_held: list[int] = []
        self._kernel_fast_ok = False
        self._unfinished = 0
        self.kernel_runs = 0
        self.kernel_iterations = 0
        self.kernel_deopts: dict[str, int] = {}

    # -- communicator-id service -------------------------------------------

    def allocate_comm_id(self, key: tuple, group: Sequence[int] | None = None) -> int:
        """Return a stable comm id for ``key`` (same key → same id).

        All members of a split call with the same (parent, sequence, color)
        key and must agree on the resulting id regardless of the order in
        which the engine resumes them. When ``group`` (the new
        communicator's members as world ranks, in group-rank order) is
        supplied, the membership is registered so collectives on the new
        communicator can take the fast path; every member derives the same
        group from the same split allgather, so registration is idempotent.
        """
        cid = self._split_registry.get(key)
        if cid is None:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._split_registry[key] = cid
        if group is not None:
            # Register on hits too: the id and group must stay consistent
            # (register_group raises on a membership mismatch).
            self.register_group(cid, group)
        return cid

    def register_group(self, comm_id: int, group: Sequence[int]) -> None:
        """Record ``comm_id``'s membership (group rank → world rank).

        Only registered communicators are eligible for fast-path
        collectives; unknown comm ids simply stay on the generator cascade.
        """
        members = tuple(group)
        known = self._groups.get(comm_id)
        if known is not None:
            if known != members:
                raise MatchingError(
                    f"comm {comm_id} re-registered with different membership: "
                    f"{known} vs {members}"
                )
            return
        self._groups[comm_id] = members
        self._group_rank[comm_id] = {w: g for g, w in enumerate(members)}

    def group_of(self, comm_id: int) -> tuple[int, ...] | None:
        """Registered membership of ``comm_id`` (``None`` if unknown)."""
        return self._groups.get(comm_id)

    # -- scheduling ----------------------------------------------------------

    def _make_runnable(self, rank: int) -> None:
        if rank not in self._in_next:
            self._in_next.add(rank)
            self._next_runnable.append(rank)

    def _permute_batch(
        self,
        batch: list[int],
        ordinal: int,
        rng,
        recorder: list[tuple[int, tuple[int, ...]]],
    ) -> list[int]:
        """Permute one sorted batch under interleaving exploration.

        Seed mode (``rng`` set) draws a permutation per multi-rank batch
        and records the non-identity ones; replay mode applies the
        recorded permutation for this ordinal, skipping entries whose
        length no longer matches the batch (a shrunk trace shifted what
        runs when — canonical order keeps the schedule legal). Ranks in
        one batch are causally unordered, so any order is MPI-legal.
        """
        n = len(batch)
        if n < 2:
            return batch
        if rng is not None:
            perm = rng.permutation(n)
            permuted = [batch[i] for i in perm]
            if permuted != batch:
                recorder.append((ordinal, tuple(int(i) for i in perm)))
                return permuted
            return batch
        perm = self._replay_trace.permutation_for(ordinal)
        if perm is None or len(perm) != n:
            return batch
        recorder.append((ordinal, perm))
        return [batch[i] for i in perm]

    def run(
        self,
        program: RankProgram | Sequence[RankProgram],
        *,
        comm_factory: Callable[[RankContext], Any] | None = None,
    ) -> list[Any]:
        """Execute one program per rank to completion; return their results.

        ``program`` is either a single callable used for every rank or a
        sequence of ``nranks`` callables. Each callable receives the rank's
        :class:`RankContext` and must return a generator.

        Raises :class:`DeadlockError` if no rank can make progress while
        some are unfinished.

        The run is three seams — :meth:`_setup_run` (fresh matching/split
        state and rank instantiation), :meth:`_drain` (the batched
        run-until-blocked scheduler loop) and :meth:`_finalize_run`
        (deadlock attribution and result collection) — composed here
        byte-identically to the historical monolithic loop. The sharded
        engine re-enters :meth:`_drain` once per conservative window
        between boundary-message exchanges.
        """
        self._setup_run(program, comm_factory=comm_factory)
        batch = self._initial_batch()
        # Pause generational GC while the scheduler drains: the engine's
        # steady state barely allocates (messages live in pool slots, send
        # handles are shared), but the collector would still rescan the
        # long-lived generator/deque graph every few hundred allocations.
        # Restored (and never force-enabled) on every exit path.
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            self._drain(batch)
        finally:
            if resume_gc:
                gc.enable()
            # A program exception must not swallow the wave that was
            # draining: flushing keeps partial-run traces exact.
            if self._wave_slots or self._deferred_free:
                self._price_pending_sends()
            if self._sched_exploring:
                # Publish the applied permutations on every exit path —
                # a deadlocked or crashed exploration must still yield a
                # replay-exact trace for its repro file.
                self.schedule_trace = ScheduleTrace(tuple(self._sched_recorder))
        return self._finalize_run()

    def _ranks_to_run(self) -> Sequence[int]:
        """The ranks this engine instantiates and schedules.

        The plain engine runs the whole world; a shard overrides this with
        its owned subset (external ranks' programs run in other shards and
        their ``_states`` entries stay ``None``).
        """
        return range(self.nranks)

    def _setup_run(
        self,
        program: RankProgram | Sequence[RankProgram],
        *,
        comm_factory: Callable[[RankContext], Any] | None = None,
    ) -> None:
        """Reset per-run state and instantiate the rank programs."""
        from repro.simmpi.comm import Communicator  # local import, no cycle at module load

        # Reset the split bookkeeping before anything (including a
        # comm_factory) runs: a reused engine may execute a program with a
        # different split topology, and stale key → id → group mappings
        # would silently push its collectives onto the cascade (or
        # mis-gather them).
        self._next_comm_id = 1
        self._split_registry = {}
        self._split_plans = {}
        self._groups = {0: self._groups[0]}
        self._group_rank = {0: self._group_rank[0]}

        # Fresh matching state and a fully-free pool: messages a previous
        # run never consumed (fire-and-forget sends, failed ranks' traffic)
        # must not leak slots or match this run's receives.
        self._mailboxes = {}
        self._world_mail = [None] * self.nranks
        self._seq = 0
        self.pool.reset()
        self._wave_slots = []
        self._wave_kinds = []
        self._deferred_free = []

        if callable(program):
            programs: list[RankProgram] = [program] * self.nranks
        else:
            programs = list(program)
            if len(programs) != self.nranks:
                raise ValueError(
                    f"got {len(programs)} programs for {self.nranks} ranks"
                )

        self._states = [None] * self.nranks
        local = 0
        for rank in self._ranks_to_run():
            ctx = RankContext(rank, self.nranks, self)
            if comm_factory is not None:
                ctx.comm = comm_factory(ctx)
            else:
                ctx.comm = Communicator.world(ctx)
            gen = programs[rank](ctx)
            if not isinstance(gen, Generator):
                raise TypeError(
                    f"rank program for rank {rank} must return a generator; "
                    f"did you forget `yield` in the program body?"
                )
            self._states[rank] = _RankState(rank, gen, ctx)
            local += 1

        self._pending_colls = {}
        # Eligibility is fixed per run: every rank must take the same path
        # through a given collective, and all three per-message observers
        # (payload log, receive counting, failure injection) need the
        # cascade's individual messages.
        self._fast_coll_active = (
            self.use_fast_collectives
            and self.message_log is None
            and not self.track_recv_counts
            and not self.failure_ranks
        )
        # Steady-state kernels share the observers gate (vectorized
        # execution posts no individual messages) and additionally need the
        # batched p2p invariants. Failure injection is re-checked at every
        # trigger: tests arm it mid-run. Compiled kernels cannot outlive
        # the ops they were compiled from, so the cache resets per run.
        # Interleaving exploration: a dedicated Generator (or a recorded
        # trace) permutes each batch after its canonical sort. With
        # ``schedule_seed=None`` and no replay trace, ``exploring`` is
        # False and the scheduler below is byte-for-byte the canonical
        # deterministic drain.
        sched_rng = None
        replay = self._replay_trace
        if self.schedule_seed is not None and replay is None:
            sched_rng = np.random.Generator(
                np.random.PCG64(int(self.schedule_seed))
            )
        exploring = sched_rng is not None or replay is not None
        self._sched_exploring = exploring
        self._sched_rng = sched_rng
        self._sched_recorder: list[tuple[int, tuple[int, ...]]] = []
        self._sched_ordinal = 0
        self.schedule_trace = None

        self._kernel_cache = {}
        self._kernel_held = []
        self._kernel_fast_ok = (
            self.use_kernels
            and self.use_batched_p2p
            and self.message_log is None
            and not self.track_recv_counts
            and not exploring
        )
        self._unfinished = local
        self._next_runnable = []
        self._in_next = set()

    def _initial_batch(self) -> list[int]:
        """The first scheduler batch: every instantiated rank, permuted
        when interleaving exploration is on."""
        batch = list(self._ranks_to_run())
        if self._sched_exploring:
            batch = self._permute_batch(
                batch, 0, self._sched_rng, self._sched_recorder
            )
        return batch

    def _drain(self, batch: list[int]) -> None:
        """Drain the scheduler until no rank is runnable.

        Starting from ``batch``, resume each rank until it blocks or
        finishes, price/trace the accumulated send wave once per batch,
        and roll unblocked ranks into the next sorted batch. Quiescence
        with ranks held at :class:`KernelLoop` yields triggers the
        steady-state kernel machinery. This is the engine's inner loop —
        one call per run for the plain engine, one call per conservative
        window for a shard.
        """
        states = self._states
        step = self._step
        exploring = self._sched_exploring
        while batch:
            for rank in batch:
                step(states[rank])
            if self._wave_slots or self._deferred_free:
                # Price and trace the batch's whole send wave in one
                # vectorized pass (waits in later batches then find
                # arrival times ready) and recycle consumed slots.
                self._price_pending_sends()
            batch = self._next_runnable
            batch.sort()
            self._next_runnable = []
            self._in_next = set()
            if not batch and self._kernel_held:
                # Scheduler quiescent with ranks held at KernelLoop
                # yields: execute the steady state in closed form if the
                # whole unfinished world is held and compiles, else
                # release the held ranks through the interpreted
                # expansion. Either way they form the next batch.
                batch = self._release_held_kernels()
            if exploring and batch:
                self._sched_ordinal += 1
                batch = self._permute_batch(
                    batch, self._sched_ordinal, self._sched_rng, self._sched_recorder
                )

    def _finalize_run(self) -> list[Any]:
        """Deadlock attribution and result collection after a drain."""
        unfinished = [
            s for s in self._states if s is not None and not s.finished
        ]
        if unfinished:
            blocked = {s.rank: self._describe_blocked(s) for s in unfinished}
            raise DeadlockError(blocked)
        return [s.result for s in self._states if s is not None]

    def _describe_blocked(self, state: _RankState) -> str:
        """Deadlock attribution for one blocked rank.

        For a rank parked on a partially-gathered collective, names the
        communicator's group, this member's group rank, and the members
        that never arrived — so a sub-communicator hang reads as "group X
        is stuck waiting for member Y" instead of an opaque request.
        """
        request = state.blocked_on
        if request is None:
            return "not scheduled"
        desc = request.describe()
        if request.__class__ is CollectiveRequest:
            entry = self._pending_colls.get((request.comm_id, request.tag))
            if entry is not None:
                group = entry.group
                grank = self._group_rank[request.comm_id][state.rank]
                missing = entry.missing_members()
                shown = ", ".join(map(str, missing[:8]))
                if len(missing) > 8:
                    shown += f", … {len(missing) - 8} more"
                desc += (
                    f" — group rank {grank}/{len(group)}, gathered "
                    f"{entry.count}/{len(group)}, missing world rank(s) "
                    f"[{shown}]"
                )
        return desc

    def _step(self, state: _RankState) -> None:
        """Resume one rank and run it until it finishes or blocks."""
        send_value: Any = None
        throw_exc: BaseException | None = None
        if state.blocked_on is not None:
            # Waking from a Wait: answer the pending yield with the request
            # (or, for a fast collective, with this rank's result).
            request = state.blocked_on
            state.blocked_on = None
            if not request.done:
                raise MatchingError("rank resumed on an incomplete request")
            if state.kernel is not None:
                # Mid-KernelLoop wake: keep driving the loop inside the
                # engine; the generator only resumes once the loop is done.
                outcome = self._kernel_resume(state, request)
                if outcome is _KERNEL_PARKED:
                    return
                if outcome is _KERNEL_FAILED:
                    state.failed = True
                    throw_exc = RankFailedError(state.rank)
                else:
                    send_value = outcome
            elif request.__class__ is CollectiveRequest:
                send_value = request.result
            else:
                send_value = self._complete_wait(state, request)

        gen_send = state.gen.send
        failure_ranks = self.failure_ranks
        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    op = state.gen.throw(exc)
                else:
                    op = gen_send(send_value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                self._unfinished -= 1
                return
            except RankFailedError:
                state.finished = True
                state.failed = True
                state.result = None
                self._unfinished -= 1
                return

            if failure_ranks and state.rank in failure_ranks and not state.failed:
                # Inject the failure at the rank's next communication
                # point (generators cannot catch exceptions thrown before
                # their first yield). The pending op is dropped — the
                # message is never posted, exactly like a crash mid-call.
                state.failed = True
                throw_exc = RankFailedError(state.rank)
                continue

            cls = op.__class__
            if cls is PostSend:
                self._post_send(
                    state,
                    op.dest,
                    op.tag,
                    op.comm_id,
                    op.payload,
                    op.nbytes,
                    op.kind,
                )
                send_value = COMPLETED_SEND
            elif cls is PostRecv:
                send_value = self._handle_recv_post(state, op)
            elif cls is Wait:
                request = op.request
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            elif cls is WaitAll:
                request = WaitAllRequest(state.rank, list(op.requests))
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            elif cls is StartAll:
                self._handle_start_all(state, op)
                send_value = None
            elif cls is CollectiveOp:
                request = self._handle_collective(state, op)
                if request.done:
                    send_value = request.result
                else:
                    state.blocked_on = request
                    return
            elif cls is KernelLoop:
                outcome = self._handle_kernel_loop(state, op)
                if outcome is _KERNEL_PARKED:
                    return
                if outcome is _KERNEL_FAILED:
                    state.failed = True
                    throw_exc = RankFailedError(state.rank)
                    continue
                send_value = outcome
            else:
                raise MatchingError(f"rank {state.rank} yielded unknown op {op!r}")

    # -- op handlers ---------------------------------------------------------

    def _post_send(
        self,
        state: _RankState,
        dst: int,
        tag: int,
        comm_id: int,
        payload: Any,
        nbytes: int,
        kind: str,
    ) -> None:
        """Post one buffered send: pool slot, trace/log, eager matching.

        Shared by ``PostSend`` and the persistent ``StartAll`` path; the
        posting order (and hence the ``seq`` stamps) is identical in both,
        so persistent waves match and price exactly like the equivalent
        ``isend`` sequence.
        """
        src = state.rank
        pool = self.pool
        free = pool.free
        if not free:
            pool._grow()
            free = pool.free
        slot = free.pop()
        seq = self._seq
        self._seq = seq + 1
        clock = state.ctx.clock
        if self.use_batched_p2p:
            # Defer pricing: the slot carries the UNPRICED sentinel until
            # some receiver needs it, at which point the whole accumulated
            # wave is priced in one vectorized transfer_times call (the
            # halo exchange posts 4 sends per rank per iteration before
            # anyone waits, so whole waves of sends price together). Trace
            # recording rides the same wave: the flush gathers (src, dst,
            # nbytes) straight from the pool columns it is pricing.
            arrival = UNPRICED
            self._wave_slots.append(slot)
            self._wave_kinds.append(kind)
        else:
            arrival = clock + self.network.transfer_time(src, dst, nbytes)
            if self.tracer is not None:
                self.tracer.record(src, dst, nbytes, kind=kind)
        pool.src[slot] = src
        pool.dst[slot] = dst
        pool.tag[slot] = tag
        pool.comm_id[slot] = comm_id
        pool.nbytes[slot] = nbytes
        pool.send_time[slot] = clock
        pool.arrival[slot] = arrival
        pool.seq[slot] = seq
        pool.payload[slot] = payload
        pool.kind[slot] = kind
        if self.message_log is not None and self.message_log.wants(src, dst):
            self.message_log.record(src, dst, tag, payload, nbytes, kind)
        self._deliver_slot(src, dst, tag, comm_id, slot)

    def _deliver_slot(
        self, src: int, dst: int, tag: int, comm_id: int, slot: int
    ) -> None:
        """Enter a posted message slot into matching at its receiver.

        The match-or-park tail shared by every way a message reaches a
        receiver: a local send post, a persistent-wave start, and a
        boundary message injected by the sharded engine — identical
        matching, wildcard arbitration and wake-up semantics for all
        three.
        """
        if comm_id == 0:
            mailbox = self._world_mail[dst]
            if mailbox is None:
                mailbox = self._world_mail[dst] = _Mailbox()
        else:
            mailbox = self._mailboxes.get((comm_id, dst))
            if mailbox is None:
                mailbox = self._mailboxes[(comm_id, dst)] = _Mailbox()
        pending = mailbox.pending
        if pending:
            req = self._match_pending_recv(mailbox, src, tag)
            if req is not None:
                # Capture the waitall parent before complete() detaches it:
                # the receiver wakes either because it blocked on this very
                # request, or because this completion was the one that
                # finished the WaitAllRequest it blocked on. Anything else
                # (e.g. a pre-posted receive for a later iteration
                # completing while the rank awaits its resume) must NOT
                # wake it — a second wake would double-schedule the rank.
                parent = req.parent
                req.complete(slot)
                if parent is not None and not parent.done:
                    parent = None
                self._unblock_if_waiting(dst, req, parent)
                return
        bucket = mailbox.unexpected
        chan = bucket.get((src, tag))
        if chan is None:
            chan = bucket[(src, tag)] = deque()
        chan.append(slot)

    @staticmethod
    def _match_pending_recv(mailbox: _Mailbox, src: int, tag: int):
        """Earliest-posted pending receive whose pattern accepts (src, tag).

        With no wildcard receives parked (``mailbox.wild == 0``, the
        overwhelmingly common case) the exact channel is the only
        candidate: one dict probe. Otherwise a receive pattern is one of
        four channels — exact, source-wildcard, tag-wildcard,
        both-wildcard — and the requests' posting-sequence stamps arbitrate
        between the probes exactly like a linear scan over posting order.
        """
        channels = mailbox.pending
        if not mailbox.wild:
            chan = channels.get((src, tag))
            if not chan:
                return None
            req = chan.popleft()
            if not chan:
                del channels[(src, tag)]
            return req
        best_seq = None
        best_pattern = None
        for pattern in (
            (src, tag),
            (src, ANY_TAG),
            (ANY_SOURCE, tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            chan = channels.get(pattern)
            if chan:
                seq = chan[0].seq
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best_pattern = pattern
        if best_pattern is None:
            return None
        chan = channels[best_pattern]
        req = chan.popleft()
        if best_pattern[0] == ANY_SOURCE or best_pattern[1] == ANY_TAG:
            mailbox.wild -= 1
        if not chan:
            # Drop drained channels: slow-path collectives mint a fresh tag
            # per call, so stale empty deques would otherwise accumulate
            # for the lifetime of a long protocol run.
            del channels[best_pattern]
        return req

    def _handle_recv_post(self, state: _RankState, op: PostRecv) -> RecvRequest:
        req = RecvRequest(state.rank, op.source, op.tag, op.comm_id)
        self._post_recv(state, req)
        return req

    def _post_recv(self, state: _RankState, req: RecvRequest) -> None:
        """Enter a receive into matching: serve it from the unexpected
        queue or park it (stamped) on its pending channel."""
        source = req.source
        tag = req.tag
        comm_id = req.comm_id
        if comm_id == 0:
            mailbox = self._world_mail[state.rank]
            if mailbox is None:
                mailbox = self._world_mail[state.rank] = _Mailbox()
        else:
            mailbox = self._mailboxes.get((comm_id, state.rank))
            if mailbox is None:
                mailbox = self._mailboxes[(comm_id, state.rank)] = _Mailbox()
        bucket = mailbox.unexpected
        if bucket:
            slot = self._match_unexpected(bucket, source, tag)
            if slot is not None:
                req.complete(slot)
                return
        pattern = (source, tag)
        channels = mailbox.pending
        chan = channels.get(pattern)
        if chan is None:
            chan = channels[pattern] = deque()
        if source == ANY_SOURCE or tag == ANY_TAG:
            mailbox.wild += 1
        req.seq = self._seq
        self._seq += 1
        chan.append(req)

    def _match_unexpected(self, bucket: dict, source: int, tag: int):
        """Earliest-arrived unexpected message slot matching a pattern.

        Exact patterns probe one channel deque; wildcard patterns scan the
        receiver's active channels and take the head slot with the smallest
        pool stamp — identical to scanning one arrival-ordered list.
        """
        if source != ANY_SOURCE and tag != ANY_TAG:
            chan = bucket.get((source, tag))
            if not chan:
                return None
            slot = chan.popleft()
            if not chan:
                del bucket[(source, tag)]
            return slot
        pool_seq = self.pool.seq
        best_seq = None
        best_key = None
        for (src, mtag), chan in bucket.items():
            if source != ANY_SOURCE and src != source:
                continue
            if tag != ANY_TAG and mtag != tag:
                continue
            seq = pool_seq[chan[0]]
            if best_seq is None or seq < best_seq:
                best_seq = seq
                best_key = (src, mtag)
        if best_key is None:
            return None
        chan = bucket[best_key]
        slot = chan.popleft()
        if not chan:
            del bucket[best_key]
        return slot

    # Plan entry codes: static send (immutable payload, args precomputed),
    # capturing send (payload snapshotted per start), receive re-arm.
    # Canonical values live in request.py next to the plan data layout.
    _PLAN_SEND_STATIC = PLAN_SEND_STATIC
    _PLAN_SEND_CAPTURE = PLAN_SEND_CAPTURE
    _PLAN_RECV = PLAN_RECV

    @classmethod
    def _compile_start_plan(cls, requests: Sequence[Request]) -> list:
        """Compile a persistent wave into posting-plan entries.

        Validation and attribute traversal happen here, once per op;
        steady-state starts then run a branch per entry with the send
        arguments already packed.
        """
        plan: list = []
        for req in requests:
            rcls = req.__class__
            if rcls is PersistentSendRequest:
                if req.capture:
                    plan.append((cls._PLAN_SEND_CAPTURE, req))
                else:
                    plan.append(
                        (
                            cls._PLAN_SEND_STATIC,
                            (
                                req.dest,
                                req.tag,
                                req.comm_id,
                                req.payload,
                                req.nbytes,
                                req.kind,
                            ),
                        )
                    )
            elif rcls is PersistentRecvRequest:
                plan.append((cls._PLAN_RECV, req))
            else:
                raise MatchingError(
                    f"start_all on non-persistent request {req!r}"
                )
        return plan

    def _handle_start_all(self, state: _RankState, op: StartAll) -> None:
        """Activate a persistent wave: post its sends and receives in list
        order (identical stamps to the equivalent per-message sequence)."""
        plan = op.plan
        if plan is None:
            plan = op.plan = self._compile_start_plan(op.requests)
        post_send = self._post_send
        post_recv = self._post_recv
        for code, data in plan:
            if code == 0:  # _PLAN_SEND_STATIC
                post_send(state, *data)
            elif code == 2:  # _PLAN_RECV
                if not data.done:
                    raise MatchingError(
                        f"rank {state.rank} restarted a persistent receive "
                        f"that is still in flight ({data.describe()})"
                    )
                if data.slot >= 0:
                    # Matched but never waited on: restarting would silently
                    # drop the delivered message and leak its pool slot.
                    raise MatchingError(
                        f"rank {state.rank} restarted a persistent receive "
                        f"whose completion was never waited on "
                        f"({data.describe()})"
                    )
                data.done = False
                data.slot = -1
                data.view = None
                post_recv(state, data)
            else:  # _PLAN_SEND_CAPTURE
                post_send(
                    state,
                    data.dest,
                    data.tag,
                    data.comm_id,
                    capture_payload(data.payload),
                    data.nbytes,
                    data.kind,
                )

    def _handle_collective(
        self, state: _RankState, op: CollectiveOp
    ) -> CollectiveRequest:
        key = (op.comm_id, op.tag)
        entry = self._pending_colls.get(key)
        if entry is None:
            group = self._groups.get(op.comm_id)
            if group is None:
                raise MatchingError(
                    f"rank {state.rank} entered fast collective {op.kind!r} "
                    f"on unregistered comm {op.comm_id}"
                )
            entry = self._pending_colls[key] = _PendingCollective(
                group, op.kind, op.root, op.trace_kind
            )
        elif entry.kind != op.kind or entry.root != op.root:
            raise MatchingError(
                f"rank {state.rank} joined collective {op.kind!r} (root "
                f"{op.root}) but tag {op.tag} gathers {entry.kind!r} (root "
                f"{entry.root})"
            )
        grank = self._group_rank[op.comm_id].get(state.rank)
        if grank is None:
            raise MatchingError(
                f"world rank {state.rank} is not a member of comm "
                f"{op.comm_id} (group {entry.group})"
            )
        if entry.requests[grank] is not None:
            raise MatchingError(
                f"rank {state.rank} entered collective tag {op.tag} twice"
            )
        req = CollectiveRequest(state.rank, op.kind, op.comm_id, op.tag)
        entry.values[grank] = op.value
        entry.op_fns[grank] = op.op
        entry.requests[grank] = req
        entry.count += 1
        if entry.count == len(entry.group):
            del self._pending_colls[key]
            self._complete_collective(entry)
        return req

    def _complete_collective(self, entry: _PendingCollective) -> None:
        """Compute a fully-gathered collective and wake its members.

        ``entry`` is indexed by group rank; clocks are gathered from (and
        written back to) the member ranks only, and the group's rank→world
        vector translates partners for the network model and tracer.
        """
        states = self._states
        group = entry.group
        size = len(group)
        clocks = np.fromiter(
            (states[w].ctx.clock for w in group), dtype=np.float64, count=size
        )
        results, new_clocks = _coll.execute_fast_collective(
            entry.kind,
            values=entry.values,
            op_fns=entry.op_fns,
            root=entry.root,
            trace_kind=entry.trace_kind,
            clocks=clocks,
            group=np.asarray(group, dtype=np.int64),
            network=self.network,
            tracer=self.tracer,
        )
        self.fast_collectives_run += 1
        new_times = new_clocks.tolist()
        for grank, req in enumerate(entry.requests):
            world = group[grank]
            states[world].ctx.clock = new_times[grank]
            req.result = results[grank]
            req.done = True
            if states[world].blocked_on is req:
                self._make_runnable(world)

    # -- steady-state kernels --------------------------------------------------

    def _kernel_deopt(self, reason: str) -> None:
        """Record one deopt (cycle kept on the interpreted expansion)."""
        self.kernel_deopts[reason] = self.kernel_deopts.get(reason, 0) + 1
        return None

    def _handle_kernel_loop(self, state: _RankState, op: KernelLoop):
        """Enter a declared steady-state loop (see :class:`KernelLoop`)."""
        if op.iterations < 1:
            raise MatchingError(
                f"rank {state.rank} yielded KernelLoop with "
                f"{op.iterations} iterations (need >= 1)"
            )
        if op.start.__class__ is not StartAll or op.drain.__class__ is not WaitAll:
            raise MatchingError(
                f"rank {state.rank} yielded KernelLoop whose start/drain are "
                f"not StartAll/WaitAll ops"
            )
        state.kernel = _KernelState(op)
        if self._kernel_fast_ok and not self.failure_ranks:
            # Hold the rank at the yield instead of posting: once the
            # scheduler goes quiescent with the whole unfinished world
            # held, the run loop compiles and executes the steady state in
            # closed form (or releases everyone through the interpreted
            # expansion below, in the same ascending-rank order the
            # ordinary batch step would have used — the global posting
            # sequence is identical either way).
            self._kernel_held.append(state.rank)
            state.blocked_on = Request(state.rank)
            return _KERNEL_PARKED
        if not self._kernel_fast_ok:
            # Interleaving exploration gets its own reason: the compiled
            # kernel replays the *canonical* posting sequence, which is
            # exactly what a non-canonical schedule must not assume.
            if self._sched_exploring:
                self._kernel_deopt("non-canonical-schedule")
            else:
                self._kernel_deopt("engine-gated")
        else:
            # Fast path is on but failure injection is active: the loop
            # must expand to micro-steps so the injection strikes at the
            # exact communication points the interpreted run would offer.
            self._kernel_deopt("failure-injection")
        return self._kernel_advance(state)

    def _kernel_resume(self, state: _RankState, request: Request):
        """Wake a rank parked inside a :class:`KernelLoop` — on a drain,
        a window collective, or a (released) hold — and keep driving."""
        if request.__class__ is WaitAllRequest:
            self._kernel_consume(state, request)
        elif request.__class__ is CollectiveRequest:
            state.kernel.window_results.append(request.result)
        return self._kernel_advance(state)

    def _kernel_consume(self, state: _RankState, request: WaitAllRequest) -> None:
        """Consume one completed drain exactly like ``_complete_wait``;
        only the final iteration materializes the ordered result list."""
        kstate = state.kernel
        consume = self._consume_recv
        if kstate.remaining == 1:
            kstate.results = [
                consume(state, child) if isinstance(child, RecvRequest) else None
                for child in request.children
            ]
        else:
            for child in request.children:
                if isinstance(child, RecvRequest):
                    consume(state, child)
        kstate.remaining -= 1

    def _kernel_advance(self, state: _RankState):
        """Drive a rank's :class:`KernelLoop` from inside the engine.

        Executes the op's defining expansion — post start, drain, repeat,
        then the collective window — through the ordinary op handlers, but
        without resuming the rank's generator between iterations. Returns
        ``_KERNEL_PARKED`` after blocking the rank, ``_KERNEL_FAILED`` when
        failure injection strikes (at exactly the yield points the
        expansion would have offered), or the final drain's result list.
        """
        kstate = state.kernel
        op = kstate.op
        rank = state.rank
        failure_ranks = self.failure_ranks
        while kstate.remaining:
            if failure_ranks and rank in failure_ranks and not state.failed:
                state.kernel = None
                return _KERNEL_FAILED
            self._handle_start_all(state, op.start)
            if failure_ranks and rank in failure_ranks and not state.failed:
                state.kernel = None
                return _KERNEL_FAILED
            request = WaitAllRequest(rank, list(op.drain.requests))
            if not request.done:
                state.blocked_on = request
                return _KERNEL_PARKED
            self._kernel_consume(state, request)
        colls = op.colls
        while kstate.window_at < len(colls):
            if failure_ranks and rank in failure_ranks and not state.failed:
                state.kernel = None
                return _KERNEL_FAILED
            request = self._handle_collective(state, colls[kstate.window_at])
            kstate.window_at += 1
            if not request.done:
                state.blocked_on = request
                return _KERNEL_PARKED
            kstate.window_results.append(request.result)
        if colls:
            results = (kstate.results, kstate.window_results)
        else:
            results = kstate.results
        state.kernel = None
        return results

    def _release_held_kernels(self) -> list[int]:
        """Quiescence trigger: vectorize or release the held ranks.

        If every unfinished rank is held at a KernelLoop yield with the
        same iteration count and the participants' cycle compiles, execute
        the whole loop in closed form (nothing is ever posted); otherwise
        deopt. Either way every held rank's hold request completes and the
        held set — in ascending rank order, matching the batch order the
        ordinary scheduler would have used — becomes the next batch: the
        resume path then either collects the precomputed results
        (``remaining == 0``) or drives the interpreted expansion.
        """
        held = self._kernel_held
        self._kernel_held = []
        held.sort()
        states = self._states
        if self._kernel_fast_ok and not self.failure_ranks:
            if len(held) < self._unfinished:
                self._kernel_deopt("partial-world")
            else:
                first = states[held[0]].kernel.op.iterations
                if any(
                    states[r].kernel.op.iterations != first for r in held
                ):
                    self._kernel_deopt("iteration-mismatch")
                else:
                    kern = self._compile_kernel(held)
                    if kern is not None:
                        if not self._kernel_quiescent(kern):
                            self._kernel_deopt("mailbox-busy")
                        else:
                            window = self._kernel_window(kern)
                            if window is not None:
                                self._execute_kernel(kern, first, window)
        for rank in held:
            states[rank].blocked_on.done = True
        return held

    def _compile_kernel(self, batch: list[int]) -> "_SteadyStateKernel | None":
        """Cached compile of the batch's cycle (a cached rejection keeps
        deopting). Cache values pin the compiled-from ops so the identity
        keys cannot be recycled by the allocator mid-run."""
        states = self._states
        ops = [states[r].kernel.op for r in batch]
        key = tuple(
            (r, id(op.start), id(op.drain)) for r, op in zip(batch, ops)
        )
        cached = self._kernel_cache.get(key)
        if cached is not None:
            return cached[0]
        kern = self._try_compile_kernel(batch)
        self._kernel_cache[key] = (kern, ops)
        return kern

    def _try_compile_kernel(self, batch: list[int]) -> "_SteadyStateKernel | None":
        """Prove the participants' cycle static and closed; build the kernel.

        Replays one steady-state scheduler batch *statically* — ranks in
        ascending order, each rank's start plan in list order, FIFO
        per-channel queues — which yields three things at once: the proof
        that every send is consumed by exactly one participant receive per
        iteration (anything else rejects), the per-iteration
        posting-sequence consumption (sends always stamp; a receive stamps
        only when it parks before its message arrives), and the receive →
        sending-edge pairing used to materialize the final iteration's
        results. Rejections deopt to the interpreted expansion.
        """
        states = self._states
        idx_of = {r: i for i, r in enumerate(batch)}
        esrc_w: list[int] = []
        edst_w: list[int] = []
        enb: list[int] = []
        ekind: list[str] = []
        edge_payloads: list[Any] = []
        edge_tags: list[int] = []
        unexpected: dict[tuple, deque] = {}
        parked: dict[tuple, deque] = {}
        recv_edge: dict[int, int] = {}
        seq_per_iter = 0
        ops: list[KernelLoop] = []
        comm_ids: set[int] = set()
        plan_recvs: dict[int, list] = {}
        for rank in batch:
            op = states[rank].kernel.op
            ops.append(op)
            plan = op.start.plan
            if plan is None:
                plan = op.start.plan = self._compile_start_plan(op.start.requests)
            cols = static_wave_columns(plan)
            if cols is None:
                return self._kernel_deopt("capture-send")
            dests, tags, send_comms, payloads, sizes, kinds = cols
            if any(d not in idx_of for d in dests):
                return self._kernel_deopt("external-destination")
            edge = len(esrc_w)
            esrc_w.extend([rank] * len(dests))
            edst_w.extend(dests)
            enb.extend(sizes)
            ekind.extend(kinds)
            edge_payloads.extend(payloads)
            edge_tags.extend(tags)
            comm_ids.update(send_comms)
            seq_per_iter += len(dests)
            recvs = []
            for code, data in plan:
                if code == PLAN_SEND_STATIC:
                    chan = (data[2], data[0], rank, data[1])
                    queue = parked.get(chan)
                    if queue:
                        recv_edge[id(queue.popleft())] = edge
                    else:
                        unexpected.setdefault(chan, deque()).append(edge)
                    edge += 1
                else:  # PLAN_RECV (capture sends were rejected above)
                    req = data
                    if req.source < 0 or req.tag < 0:
                        return self._kernel_deopt("wildcard-recv")
                    recvs.append(req)
                    comm_ids.add(req.comm_id)
                    chan = (req.comm_id, rank, req.source, req.tag)
                    queue = unexpected.get(chan)
                    if queue:
                        recv_edge[id(req)] = queue.popleft()
                    else:
                        parked.setdefault(chan, deque()).append(req)
                        seq_per_iter += 1
            plan_recvs[rank] = recvs
        if any(unexpected.values()) or any(parked.values()):
            return self._kernel_deopt("unmatched-traffic")
        if not esrc_w:
            return self._kernel_deopt("no-traffic")

        drain_edges: list[list[int]] = []
        for i, rank in enumerate(batch):
            need = {id(r) for r in plan_recvs[rank]}
            have = set()
            edges = []
            for child in ops[i].drain.requests:
                if isinstance(child, RecvRequest):
                    have.add(id(child))
                    edges.append(recv_edge.get(id(child), -1))
                elif isinstance(child, PersistentSendRequest):
                    edges.append(-1)
                else:
                    return self._kernel_deopt("dynamic-drain")
            if need != have:
                return self._kernel_deopt("drain-mismatch")
            drain_edges.append(edges)

        kern = _SteadyStateKernel()
        kern.participants = tuple(batch)
        kern.ops = ops
        kern.comm_ids = tuple(comm_ids)
        kern.esrc_w = np.array(esrc_w, dtype=np.int64)
        kern.edst_w = np.array(edst_w, dtype=np.int64)
        kern.enb = np.array(enb, dtype=np.int64)
        kern.src_idx = np.fromiter(
            (idx_of[s] for s in esrc_w), dtype=np.int64, count=len(esrc_w)
        )
        dst_idx = np.fromiter(
            (idx_of[d] for d in edst_w), dtype=np.int64, count=len(edst_w)
        )
        # Per-edge transfer times are iteration-invariant; transfer_times
        # is elementwise and bit-identical to the scalar path, so reusing
        # them every iteration reproduces the interpreted arrivals exactly.
        kern.transfer = self.network.transfer_times(
            kern.esrc_w, kern.edst_w, kern.enb
        )
        kern.order = np.argsort(dst_idx, kind="stable")
        dst_sorted = dst_idx[kern.order]
        kern.dst_uniq, kern.dst_starts = np.unique(dst_sorted, return_index=True)
        groups: dict[str, list[int]] = {}
        for edge, kind in enumerate(ekind):
            groups.setdefault(kind, []).append(edge)
        kern.kind_groups = {
            kind: np.array(idx, dtype=np.int64) for kind, idx in groups.items()
        }
        kern.seq_per_iter = seq_per_iter
        kern.edge_payloads = edge_payloads
        kern.edge_tags = edge_tags
        kern.drain_edges = drain_edges
        return kern

    def _kernel_quiescent(self, kern: "_SteadyStateKernel") -> bool:
        """No leftover matching state on any participant mailbox of the
        kernel's communicators (a parked wildcard or stale unexpected
        message could steal a kernel send from its static receive)."""
        for comm_id in kern.comm_ids:
            for rank in kern.participants:
                if comm_id == 0:
                    mailbox = self._world_mail[rank]
                else:
                    mailbox = self._mailboxes.get((comm_id, rank))
                if mailbox is not None and (
                    mailbox.pending or mailbox.unexpected or mailbox.wild
                ):
                    return False
        return True

    def _kernel_window(self, kern: "_SteadyStateKernel"):
        """Validate (and fuse) the participants' trailing collective windows.

        Returns a list of ``(comm_id, specs)`` runs for
        :func:`~repro.simmpi.collectives.execute_fused_window` — back-to-back
        same-communicator positions fuse into one run — or ``None`` on any
        mismatch (deopt). Every collective must gather its registered group
        exactly, entirely from kernel participants, with matching
        kind/tag/root across members.

        Reads the *current* KernelLoop ops off the rank states, not the
        cached compile's: a chunked steady loop reuses its start/drain ops
        (same compiled kernel) while minting fresh collective windows —
        with fresh tags — per chunk.
        """
        states = self._states
        ops = [states[r].kernel.op for r in kern.participants]
        length = len(ops[0].colls)
        if any(len(op.colls) != length for op in ops):
            return self._kernel_deopt("window-mismatch")
        if length == 0:
            return []
        runs: list[list] = []  # [comm_id, specs, window positions]
        for j in range(length):
            by_comm: dict[int, list] = {}
            for i, op in enumerate(ops):
                c = op.colls[j]
                if c.__class__ is not CollectiveOp:
                    return self._kernel_deopt("window-mismatch")
                by_comm.setdefault(c.comm_id, []).append(
                    (kern.participants[i], c)
                )
            for comm_id, members in by_comm.items():
                group = self._groups.get(comm_id)
                if (
                    group is None
                    or len(members) != len(group)
                    or {r for r, _ in members} != set(group)
                ):
                    return self._kernel_deopt("window-mismatch")
                first = members[0][1]
                if first.kind not in _coll.FAST_COLLECTIVES:
                    return self._kernel_deopt("window-mismatch")
                if any(
                    m.kind != first.kind
                    or m.tag != first.tag
                    or m.root != first.root
                    for _, m in members
                ):
                    return self._kernel_deopt("window-mismatch")
                grank = self._group_rank[comm_id]
                values: list[Any] = [None] * len(group)
                op_fns: list[Callable | None] = [None] * len(group)
                for r, m in members:
                    values[grank[r]] = m.value
                    op_fns[grank[r]] = m.op
                spec = (first.kind, values, op_fns, first.root, first.trace_kind)
                if runs and runs[-1][0] == comm_id and len(by_comm) == 1:
                    runs[-1][1].append(spec)
                    runs[-1][2].append(j)
                else:
                    runs.append([comm_id, [spec], [j]])
        return runs

    def _execute_kernel(
        self, kern: "_SteadyStateKernel", n_iter: int, window: list
    ) -> None:
        """Run all ``n_iter`` iterations of the compiled cycle in closed
        form — no message is ever posted, no generator resumed.

        The clock recurrence per iteration is exactly the interpreted
        schedule's: every participant posts its sends at its current clock
        (posting never advances the poster), and each receiver's next
        clock is ``max(own clock, max over in-edges (sender clock +
        transfer))`` — the same IEEE adds the wave flush performs and the
        same (exact) float maxima the sequential waitall consumes would
        take. Traces book all iterations through one
        ``record_many(..., repeats=...)`` per kind; the posting-sequence
        counter advances by the statically derived per-iteration
        consumption; the collective window prices off the folded clocks.
        Each participant's result list (final iteration's payloads in
        drain order) lands on its kernel state with ``remaining = 0`` so
        the ordinary resume hands it straight to the generator.
        """
        states = self._states
        parts = kern.participants
        nparts = len(parts)
        c = np.fromiter(
            (states[r].ctx.clock for r in parts), dtype=np.float64, count=nparts
        )
        src_idx = kern.src_idx
        transfer = kern.transfer
        order = kern.order
        dst_starts = kern.dst_starts
        dst_uniq = kern.dst_uniq
        for _ in range(n_iter):
            arr = c[src_idx] + transfer
            c[dst_uniq] = np.maximum(
                c[dst_uniq], np.maximum.reduceat(arr[order], dst_starts)
            )
        tracer = self.tracer
        if tracer is not None:
            for kind, idx in kern.kind_groups.items():
                tracer.record_many(
                    kern.esrc_w[idx],
                    kern.edst_w[idx],
                    kern.enb[idx],
                    kind=kind,
                    repeats=n_iter,
                )
        self._seq += n_iter * kern.seq_per_iter

        wres: list[list] | None = None
        if window:
            pos = {r: i for i, r in enumerate(parts)}
            n_colls = len(states[parts[0]].kernel.op.colls)
            wres = [[None] * n_colls for _ in parts]
            for comm_id, specs, positions in window:
                group = self._groups[comm_id]
                gidx = np.fromiter(
                    (pos[r] for r in group), dtype=np.int64, count=len(group)
                )
                results_per_spec, new_clocks = _coll.execute_fused_window(
                    specs,
                    clocks=c[gidx],
                    group=np.asarray(group, dtype=np.int64),
                    network=self.network,
                    tracer=tracer,
                )
                c[gidx] = new_clocks
                for j, res in zip(positions, results_per_spec):
                    for g, world in enumerate(group):
                        wres[pos[world]][j] = res[g]
                self.fast_collectives_run += len(specs)

        payloads = kern.edge_payloads
        for i, rank in enumerate(parts):
            state = states[rank]
            kstate = state.kernel
            kstate.results = [
                payloads[edge] if edge >= 0 else None
                for edge in kern.drain_edges[i]
            ]
            if wres is not None:
                kstate.window_results = wres[i]
            kstate.remaining = 0
            kstate.window_at = len(kstate.op.colls)
            state.ctx.clock = float(c[i])
        self.kernel_runs += 1
        self.kernel_iterations += n_iter

    def _unblock_if_waiting(
        self, rank: int, request: Request, parent: Request | None = None
    ) -> None:
        state = self._states[rank]
        blocked = state.blocked_on
        # Leave blocked_on set: _step consumes it on resume so the pending
        # yield receives the completed request (or waitall results).
        # ``parent`` is the WaitAllRequest this completion just finished
        # (if any) — both conditions can fire at most once per request, so
        # a rank is never scheduled twice for one wait.
        if blocked is request or (parent is not None and blocked is parent):
            self._make_runnable(rank)

    def _price_pending_sends(self) -> None:
        """Price, trace and recycle the drained batch's send wave.

        Arrival times are ``pool.send_time[wave] + transfer_times(...)``,
        written back with a single fancy-indexed assignment — bit-identical
        to the scalar ``transfer_time`` path (same IEEE arithmetic; see
        :meth:`NetworkModel.transfer_times`). Slots consumed within their
        posting batch were priced scalar on demand; the flush simply
        overwrites them with the same value (their columns are untouched —
        consumed slots recycle *after* the flush, via the deferred-free
        list, precisely so wave entries always describe the wave's own
        messages). The tracer accumulates the wave from the same gathered
        columns in one ``record_many`` pass per message kind. Tiny waves
        skip the array machinery.
        """
        slots = self._wave_slots
        kinds = self._wave_kinds
        self._wave_slots = []
        self._wave_kinds = []
        pool = self.pool
        tracer = self.tracer
        if len(slots) <= 4:
            transfer_time = self.network.transfer_time
            arrival = pool.arrival
            for s in slots:
                if arrival[s] < 0.0:
                    arrival[s] = pool.send_time[s] + transfer_time(
                        int(pool.src[s]), int(pool.dst[s]), int(pool.nbytes[s])
                    )
            if tracer is not None:
                for s, kind in zip(slots, kinds):
                    tracer.record(
                        int(pool.src[s]),
                        int(pool.dst[s]),
                        int(pool.nbytes[s]),
                        kind=kind,
                    )
        elif slots:
            wave = np.array(slots, dtype=np.int64)
            srcs = pool.src[wave]
            dsts = pool.dst[wave]
            nbytes = pool.nbytes[wave]
            times = self.network.transfer_times(srcs, dsts, nbytes)
            pool.arrival[wave] = pool.send_time[wave] + times
            if tracer is not None:
                first = kinds[0]
                if all(k is first or k == first for k in kinds):
                    tracer.record_many(srcs, dsts, nbytes, kind=first)
                else:
                    by_kind: dict[str, list[int]] = {}
                    for i, k in enumerate(kinds):
                        by_kind.setdefault(k, []).append(i)
                    for kind, idx in by_kind.items():
                        tracer.record_many(
                            srcs[idx], dsts[idx], nbytes[idx], kind=kind
                        )
        deferred = self._deferred_free
        if deferred:
            self._deferred_free = []
            pool.free.extend(deferred)

    def _consume_recv(self, state: _RankState, request: RecvRequest) -> Any:
        """First wait on a completed receive: price, account time, build the
        view, recycle the slot. Idempotent — later waits reuse the view."""
        view = request.view
        if view is None:
            slot = request.slot
            if slot < 0:
                if request.__class__ is PersistentRecvRequest:
                    # Waiting on an inactive (never-started) persistent
                    # request is MPI's defined no-op: empty completion.
                    return None
                raise MatchingError("completed receive without a message")
            pool = self.pool
            src = int(pool.src[slot])
            nbytes = int(pool.nbytes[slot])
            arrival = float(pool.arrival[slot])
            if arrival < 0.0:
                # Consumed within its own posting batch: price this one
                # slot scalar; the wave flush overwrites it bit-identically.
                arrival = float(pool.send_time[slot]) + self.network.transfer_time(
                    src, int(pool.dst[slot]), nbytes
                )
                pool.arrival[slot] = arrival
            payload = pool.payload[slot]
            view = request.view = MessageView(
                src, int(pool.tag[slot]), nbytes, arrival, payload
            )
            request.slot = -1
            pool.payload[slot] = None
            pool.kind[slot] = None
            if self.use_batched_p2p:
                # The slot may still sit on the current pricing/tracing
                # wave: recycle it only after the wave flushes.
                self._deferred_free.append(slot)
            else:
                pool.free.append(slot)
            ctx = state.ctx
            if arrival > ctx.clock:
                ctx.clock = arrival
            if self.track_recv_counts:
                channel = (src, state.rank)
                self.recv_counts[channel] = self.recv_counts.get(channel, 0) + 1
            return payload
        return view.payload

    def _complete_wait(self, state: _RankState, request: Request) -> Any:
        """Account virtual time for a completed wait.

        Returns the request itself for single waits (``comm.wait`` reads
        the view off it) and the ordered per-child results for a
        :class:`WaitAllRequest` (payloads for receives, ``None`` for
        sends).
        """
        if request.__class__ is WaitAllRequest:
            consume = self._consume_recv
            return [
                consume(state, child) if isinstance(child, RecvRequest) else None
                for child in request.children
            ]
        if isinstance(request, RecvRequest):
            self._consume_recv(state, request)
        return request

    # -- introspection ---------------------------------------------------------

    @property
    def max_time(self) -> float:
        """Largest rank clock seen so far (the run's virtual makespan)."""
        clocks = [s.ctx.clock for s in self._states if s is not None]
        if not clocks:
            return 0.0
        return max(clocks)

    def rank_times(self) -> list[float]:
        """Per-rank final virtual clocks (after :meth:`run`)."""
        return [s.ctx.clock for s in self._states if s is not None]


def run_program(
    program: RankProgram | Sequence[RankProgram],
    nranks: int,
    *,
    config: EngineConfig | None = None,
    network: NetworkModel | None = None,
    tracer: TraceRecorder | None = None,
    use_fast_collectives: bool = True,
    use_batched_p2p: bool = True,
    schedule_seed: int | None = None,
    schedule_trace: "ScheduleTrace | None" = None,
) -> list[Any]:
    """One-shot convenience wrapper: build an engine, run, return results."""
    if config is None:
        config = EngineConfig(
            use_fast_collectives=use_fast_collectives,
            use_batched_p2p=use_batched_p2p,
            schedule_seed=schedule_seed,
            schedule_trace=schedule_trace,
        )
    engine = Engine(nranks, config=config, network=network, tracer=tracer)
    return engine.run(program)


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveOp",
    "Engine",
    "EngineConfig",
    "KernelLoop",
    "PostRecv",
    "PostSend",
    "StartAll",
    "RankContext",
    "ScheduleTrace",
    "Wait",
    "WaitAll",
    "run_program",
    "nbytes_of",
]
