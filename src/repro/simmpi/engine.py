"""Deterministic discrete-event engine driving simulated MPI rank programs.

Rank programs are Python *generator coroutines*: every communication
primitive is a generator that ``yield``\\ s low-level operations to the
engine and receives the result back through ``gen.send()``. Application code
therefore reads almost exactly like mpi4py::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=7)
        return result

The engine is *deterministic*: runnable ranks are always resumed in
increasing rank order, message matching follows MPI's non-overtaking rule
per (sender, communicator), and virtual time is tracked per rank with a
latency/bandwidth network model. Determinism is what makes the protocol
tests (checkpoint/replay bit-equivalence) meaningful.

Virtual-time semantics
----------------------
* each rank carries a local clock, advanced by ``ctx.advance(seconds)`` for
  compute and by communication waits;
* sends are buffered: posting captures the payload and completes
  immediately (the sender pays no wait time);
* a receive completes at ``max(local clock, message arrival time)`` where
  arrival = sender clock at post + network transfer time.

This is the standard LogP-style approximation used by trace-driven MPI
simulators; it reproduces exactly what the paper consumes (byte-accurate
traces, event ordering) while remaining fast enough for 1088-rank runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from repro.simmpi.errors import DeadlockError, MatchingError, RankFailedError
from repro.simmpi.network import NetworkModel, zero_latency_network
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    RecvRequest,
    Request,
    SendRequest,
    nbytes_of,
)
from repro.simmpi.tracing import TraceRecorder

# --------------------------------------------------------------------------
# Low-level operations yielded by primitives to the engine
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PostSend:
    """Post a buffered send; engine replies with a :class:`SendRequest`."""

    dest: int  # world rank
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    kind: str


@dataclass(slots=True)
class PostRecv:
    """Post a receive; engine replies with a :class:`RecvRequest`."""

    source: int  # world rank or ANY_SOURCE
    tag: int
    comm_id: int


@dataclass(slots=True)
class Wait:
    """Block until ``request`` completes; engine replies with the request."""

    request: Request


Op = PostSend | PostRecv | Wait


class RankContext:
    """Per-rank execution context handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this program instance.
    nranks:
        World size.
    clock:
        Local virtual time in seconds (mutated by the engine and by
        :meth:`advance`).
    comm:
        The world communicator (set by the engine before the program runs).
    """

    __slots__ = ("rank", "nranks", "clock", "comm", "engine", "user")

    def __init__(self, rank: int, nranks: int, engine: "Engine"):
        self.rank = rank
        self.nranks = nranks
        self.clock = 0.0
        self.comm = None  # filled in by Engine.run with the world communicator
        self.engine = engine
        self.user: dict[str, Any] = {}

    @property
    def now(self) -> float:
        """Current local virtual time in seconds."""
        return self.clock

    def advance(self, seconds: float) -> None:
        """Advance local time by ``seconds`` of modeled computation."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.clock += seconds


class _RankState:
    """Book-keeping for one live rank inside the engine."""

    __slots__ = ("rank", "gen", "ctx", "blocked_on", "finished", "result", "failed")

    def __init__(self, rank: int, gen: Generator, ctx: RankContext):
        self.rank = rank
        self.gen = gen
        self.ctx = ctx
        self.blocked_on: Request | None = None
        self.finished = False
        self.result: Any = None
        self.failed = False


RankProgram = Callable[[RankContext], Generator]


class Engine:
    """Deterministic discrete-event executor for simulated MPI programs.

    Parameters
    ----------
    nranks:
        World size.
    network:
        Timing model; defaults to a zero-latency network, which preserves
        ordering semantics and traces while making unit tests trivial.
    tracer:
        Optional :class:`TraceRecorder`; when provided, every message is
        recorded at send-post time.
    failure_ranks:
        Ranks that should fail by raising :class:`RankFailedError` inside
        their program the next time they interact with the engine. Used by
        the failure-injection layers; normal runs leave it empty.
    """

    def __init__(
        self,
        nranks: int,
        *,
        network: NetworkModel | None = None,
        tracer: TraceRecorder | None = None,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.network = network or zero_latency_network()
        self.tracer = tracer
        self.failure_ranks: set[int] = set()

        # Protocol hooks (used by repro.hydee): an optional message log that
        # captures payloads of selected messages at send time, and
        # per-channel counts of *completed* receives — the two ingredients of
        # sender-based logging with receiver-side checkpointed positions.
        self.message_log = None  # object with .wants(src, dst) and .record(...)
        self.recv_counts: dict[tuple[int, int], int] = {}

        # Matching state: keyed by (comm_id, receiver world rank).
        self._pending_recvs: dict[tuple[int, int], list[RecvRequest]] = {}
        self._unexpected: dict[tuple[int, int], list[Message]] = {}

        # Communicator-id allocation (world == 0); see Communicator.split.
        self._next_comm_id = 1
        self._split_registry: dict[tuple, int] = {}

        self._states: list[_RankState] = []
        self._runnable: list[int] = []  # heap of rank ids
        self._in_runnable: set[int] = set()

    # -- communicator-id service -------------------------------------------

    def allocate_comm_id(self, key: tuple) -> int:
        """Return a stable comm id for ``key`` (same key → same id).

        All members of a split call with the same (parent, sequence, color)
        key and must agree on the resulting id regardless of the order in
        which the engine resumes them.
        """
        cid = self._split_registry.get(key)
        if cid is None:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._split_registry[key] = cid
        return cid

    # -- scheduling ----------------------------------------------------------

    def _make_runnable(self, rank: int) -> None:
        if rank not in self._in_runnable:
            heapq.heappush(self._runnable, rank)
            self._in_runnable.add(rank)

    def run(
        self,
        program: RankProgram | Sequence[RankProgram],
        *,
        comm_factory: Callable[[RankContext], Any] | None = None,
    ) -> list[Any]:
        """Execute one program per rank to completion; return their results.

        ``program`` is either a single callable used for every rank or a
        sequence of ``nranks`` callables. Each callable receives the rank's
        :class:`RankContext` and must return a generator.

        Raises :class:`DeadlockError` if no rank can make progress while
        some are unfinished.
        """
        from repro.simmpi.comm import Communicator  # local import, no cycle at module load

        if callable(program):
            programs: list[RankProgram] = [program] * self.nranks
        else:
            programs = list(program)
            if len(programs) != self.nranks:
                raise ValueError(
                    f"got {len(programs)} programs for {self.nranks} ranks"
                )

        self._states = []
        for rank in range(self.nranks):
            ctx = RankContext(rank, self.nranks, self)
            if comm_factory is not None:
                ctx.comm = comm_factory(ctx)
            else:
                ctx.comm = Communicator.world(ctx)
            gen = programs[rank](ctx)
            if not isinstance(gen, Generator):
                raise TypeError(
                    f"rank program for rank {rank} must return a generator; "
                    f"did you forget `yield` in the program body?"
                )
            self._states.append(_RankState(rank, gen, ctx))

        self._runnable = list(range(self.nranks))
        heapq.heapify(self._runnable)
        self._in_runnable = set(range(self.nranks))

        while self._runnable:
            rank = heapq.heappop(self._runnable)
            self._in_runnable.discard(rank)
            self._step(self._states[rank])

        unfinished = [s for s in self._states if not s.finished]
        if unfinished:
            blocked = {
                s.rank: (s.blocked_on.describe() if s.blocked_on else "not scheduled")
                for s in unfinished
            }
            raise DeadlockError(blocked)
        return [s.result for s in self._states]

    def _step(self, state: _RankState) -> None:
        """Resume one rank and run it until it finishes or blocks."""
        send_value: Any = None
        throw_exc: BaseException | None = None
        if state.blocked_on is not None:
            # Waking from a Wait: answer the pending yield with the request.
            request = state.blocked_on
            state.blocked_on = None
            if not request.done:
                raise MatchingError("rank resumed on an incomplete request")
            send_value = self._complete_wait(state, request)

        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    op = state.gen.throw(exc)
                else:
                    op = state.gen.send(send_value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                return
            except RankFailedError:
                state.finished = True
                state.failed = True
                state.result = None
                return

            if state.rank in self.failure_ranks and not state.failed:
                # Inject the failure at the rank's next communication
                # point (generators cannot catch exceptions thrown before
                # their first yield). The pending op is dropped — the
                # message is never posted, exactly like a crash mid-call.
                state.failed = True
                throw_exc = RankFailedError(state.rank)
                continue

            if isinstance(op, PostSend):
                send_value = self._handle_send(state, op)
            elif isinstance(op, PostRecv):
                send_value = self._handle_recv_post(state, op)
            elif isinstance(op, Wait):
                request = op.request
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            else:
                raise MatchingError(f"rank {state.rank} yielded unknown op {op!r}")

    # -- op handlers ---------------------------------------------------------

    def _handle_send(self, state: _RankState, op: PostSend) -> SendRequest:
        src = state.rank
        arrival = state.ctx.clock + self.network.transfer_time(src, op.dest, op.nbytes)
        message = Message(
            src=src,
            dst=op.dest,
            tag=op.tag,
            comm_id=op.comm_id,
            payload=op.payload,
            nbytes=op.nbytes,
            send_time=state.ctx.clock,
            arrival_time=arrival,
        )
        message.kind = op.kind
        if self.tracer is not None:
            self.tracer.record(src, op.dest, op.nbytes, kind=op.kind)
        if self.message_log is not None and self.message_log.wants(src, op.dest):
            self.message_log.record(
                src, op.dest, op.tag, op.payload, op.nbytes, op.kind
            )

        key = (op.comm_id, op.dest)
        pending = self._pending_recvs.get(key)
        if pending:
            for i, req in enumerate(pending):
                if message.matches(req.source, req.tag):
                    pending.pop(i)
                    req.complete(message)
                    self._unblock_if_waiting(op.dest, req)
                    return SendRequest(src, message)
        self._unexpected.setdefault(key, []).append(message)
        return SendRequest(src, message)

    def _handle_recv_post(self, state: _RankState, op: PostRecv) -> RecvRequest:
        req = RecvRequest(state.rank, op.source, op.tag, op.comm_id)
        key = (op.comm_id, state.rank)
        queue = self._unexpected.get(key)
        if queue:
            for i, message in enumerate(queue):
                if message.matches(op.source, op.tag):
                    queue.pop(i)
                    req.complete(message)
                    return req
        self._pending_recvs.setdefault(key, []).append(req)
        return req

    def _unblock_if_waiting(self, rank: int, request: Request) -> None:
        state = self._states[rank]
        if state.blocked_on is request:
            # Leave blocked_on set: _step consumes it on resume so the
            # pending Wait yield receives the completed request.
            self._make_runnable(rank)

    def _complete_wait(self, state: _RankState, request: Request) -> Request:
        """Account virtual time for a completed wait and return the request."""
        if isinstance(request, RecvRequest):
            message = request.message
            if message is None:
                raise MatchingError("completed receive without a message")
            if message.arrival_time > state.ctx.clock:
                state.ctx.clock = message.arrival_time
            channel = (message.src, state.rank)
            self.recv_counts[channel] = self.recv_counts.get(channel, 0) + 1
        return request

    # -- introspection ---------------------------------------------------------

    @property
    def max_time(self) -> float:
        """Largest rank clock seen so far (the run's virtual makespan)."""
        if not self._states:
            return 0.0
        return max(s.ctx.clock for s in self._states)

    def rank_times(self) -> list[float]:
        """Per-rank final virtual clocks (after :meth:`run`)."""
        return [s.ctx.clock for s in self._states]


def run_program(
    program: RankProgram | Sequence[RankProgram],
    nranks: int,
    *,
    network: NetworkModel | None = None,
    tracer: TraceRecorder | None = None,
) -> list[Any]:
    """One-shot convenience wrapper: build an engine, run, return results."""
    engine = Engine(nranks, network=network, tracer=tracer)
    return engine.run(program)


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Engine",
    "PostRecv",
    "PostSend",
    "RankContext",
    "Wait",
    "run_program",
    "nbytes_of",
]
