"""Deterministic discrete-event engine driving simulated MPI rank programs.

Rank programs are Python *generator coroutines*: every communication
primitive is a generator that ``yield``\\ s low-level operations to the
engine and receives the result back through ``gen.send()``. Application code
therefore reads almost exactly like mpi4py::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=7)
        return result

The engine is *deterministic*: runnable ranks are resumed in sorted
batches (see below), message matching follows MPI's non-overtaking rule
per (sender, communicator), and virtual time is tracked per rank with a
latency/bandwidth network model. Determinism is what makes the protocol
tests (checkpoint/replay bit-equivalence) meaningful.

Scheduling
----------
The scheduler is a batched run-until-blocked loop. All ranks start
runnable; the engine drains the current batch in ascending rank order,
resuming each rank's generator until it either finishes or blocks on an
incomplete request. Ranks unblocked while a batch drains (a send
completing a peer's pending receive, the last member arriving at a fast
collective) accumulate into the *next* batch, which is sorted and drained
the same way, until no rank is runnable. The schedule is a pure function
of the programs — no heap, no wall-clock, no iteration order over hash
containers — so runs are exactly reproducible.

Dispatch of the yielded ops is a ``__class__``-identity chain over the
four op types (send post, receive post, wait, collective), and message
matching is per-channel: unexpected messages and pending receives live in
deques keyed by ``(source, tag)`` under each ``(communicator, receiver)``,
stamped with a global posting sequence. Exact-match traffic pops its
deque in O(1); wildcard receives (``ANY_SOURCE`` / ``ANY_TAG``) pick the
matching channel head with the smallest stamp, which reproduces exactly
the posted-order semantics of a linear scan.

Virtual-time semantics
----------------------
* each rank carries a local clock, advanced by ``ctx.advance(seconds)`` for
  compute and by communication waits;
* sends are buffered: posting captures the payload and completes
  immediately (the sender pays no wait time);
* a receive completes at ``max(local clock, message arrival time)`` where
  arrival = sender clock at post + network transfer time.

This is the standard LogP-style approximation used by trace-driven MPI
simulators; it reproduces exactly what the paper consumes (byte-accurate
traces, event ordering) while remaining fast enough for 1088-rank runs.

Batched p2p pricing
-------------------
Posting a send does not price it. The message is created with
``arrival_time=None`` and queued; when the scheduler finishes draining a
batch, the whole accumulated send wave is priced in one vectorized
:meth:`NetworkModel.transfer_times <repro.simmpi.network.NetworkModel.transfer_times>`
call (a receive completed *within* the posting batch prices its one message
scalar on demand — the flush skips it). Because a batch drains every
runnable rank, waves scale with the world size — the stencil's 4 halo sends
per rank per iteration price as one NumPy pass over ~4·nranks messages —
and the dominant per-message Python cost (two ``node_of`` lookups plus
float arithmetic per send) collapses. Arrival times are bit-identical to
the scalar path (``use_batched_p2p=False`` pins the per-message reference;
the equivalence suite compares both), and trace records are unaffected —
tracing happens at post time either way.

Fast-path collectives
---------------------
``bcast`` / ``reduce`` / ``allreduce`` / ``allgather`` / ``alltoall`` /
``barrier`` on the world communicator *or any split sub-communicator* skip
the point-to-point generator cascade: each member yields a single
:class:`CollectiveOp`, the engine parks it until every member of the
communicator's registered group has arrived, then computes results,
per-member clocks and trace records in one vectorized pass over the
group's slice of the network model (:mod:`repro.simmpi.collectives`,
second half). Membership bookkeeping lives in the engine: comm id 0 is
the world group, and ``Communicator.split`` registers each new group
(stable comm ids via :meth:`Engine.allocate_comm_id`, rank→group-rank
maps via :meth:`Engine.register_group`). A deadlock involving a
partially-gathered collective is attributed to the stuck group: the error
names the member's group rank and the world ranks that never arrived.

The fast path is byte-identical to the cascade — same trace matrices,
same message counts, same clocks, same results — and is therefore active
even under tracing. It deactivates (per run) whenever a per-message
observer needs to see the individual point-to-point messages: a
``message_log`` (sender-based payload logging), ``track_recv_counts``
(receiver-position sidecars), a non-empty ``failure_ranks`` set (failures
strike mid-cascade), or ``use_fast_collectives=False`` (the equivalence
tests' pin). Communicators whose membership the engine does not know
(e.g. the HydEE replay communicator) always run the cascade.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.errors import DeadlockError, MatchingError, RankFailedError
from repro.simmpi.network import NetworkModel, zero_latency_network
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveRequest,
    Message,
    RecvRequest,
    Request,
    SendRequest,
    nbytes_of,
)
from repro.simmpi.tracing import TraceRecorder

# --------------------------------------------------------------------------
# Low-level operations yielded by primitives to the engine
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PostSend:
    """Post a buffered send; engine replies with a :class:`SendRequest`."""

    dest: int  # world rank
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    kind: str


@dataclass(slots=True)
class PostRecv:
    """Post a receive; engine replies with a :class:`RecvRequest`."""

    source: int  # world rank or ANY_SOURCE
    tag: int
    comm_id: int


@dataclass(slots=True)
class Wait:
    """Block until ``request`` completes; engine replies with the request."""

    request: Request


@dataclass(slots=True)
class CollectiveOp:
    """One rank's entry into a fast-path world collective.

    The engine replies with the rank's collective *result* (not a request)
    once every world rank has yielded the matching op. ``tag`` is the
    collective tag the slow path would have used — it keys concurrent
    collectives apart when ranks run ahead of each other.
    """

    kind: str  # "bcast" | "reduce" | "allreduce" | "allgather" | "alltoall" | "barrier"
    comm_id: int
    tag: int
    value: Any
    root: int
    op: Callable | None
    trace_kind: str


Op = PostSend | PostRecv | Wait | CollectiveOp


class RankContext:
    """Per-rank execution context handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this program instance.
    nranks:
        World size.
    clock:
        Local virtual time in seconds (mutated by the engine and by
        :meth:`advance`).
    comm:
        The world communicator (set by the engine before the program runs).
    """

    __slots__ = ("rank", "nranks", "clock", "comm", "engine", "user")

    def __init__(self, rank: int, nranks: int, engine: "Engine"):
        self.rank = rank
        self.nranks = nranks
        self.clock = 0.0
        self.comm = None  # filled in by Engine.run with the world communicator
        self.engine = engine
        self.user: dict[str, Any] = {}

    @property
    def now(self) -> float:
        """Current local virtual time in seconds."""
        return self.clock

    def advance(self, seconds: float) -> None:
        """Advance local time by ``seconds`` of modeled computation."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.clock += seconds


class _RankState:
    """Book-keeping for one live rank inside the engine."""

    __slots__ = ("rank", "gen", "ctx", "blocked_on", "finished", "result", "failed")

    def __init__(self, rank: int, gen: Generator, ctx: RankContext):
        self.rank = rank
        self.gen = gen
        self.ctx = ctx
        self.blocked_on: Request | None = None
        self.finished = False
        self.result: Any = None
        self.failed = False


class _PendingCollective:
    """Gathering state of one fast-path collective instance.

    ``group`` is the owning communicator's membership (group rank → world
    rank); ``values``/``op_fns``/``requests`` are indexed by group rank.
    """

    __slots__ = (
        "kind",
        "root",
        "trace_kind",
        "group",
        "values",
        "op_fns",
        "requests",
        "count",
    )

    def __init__(self, group: tuple[int, ...], kind: str, root: int, trace_kind: str):
        size = len(group)
        self.kind = kind
        self.root = root
        self.trace_kind = trace_kind
        self.group = group
        self.values: list[Any] = [None] * size
        self.op_fns: list[Callable | None] = [None] * size
        self.requests: list[CollectiveRequest | None] = [None] * size
        self.count = 0

    def missing_members(self) -> list[int]:
        """World ranks of members that have not reached the collective."""
        return [
            self.group[g]
            for g, req in enumerate(self.requests)
            if req is None
        ]


RankProgram = Callable[[RankContext], Generator]


class Engine:
    """Deterministic discrete-event executor for simulated MPI programs.

    Parameters
    ----------
    nranks:
        World size.
    network:
        Timing model; defaults to a zero-latency network, which preserves
        ordering semantics and traces while making unit tests trivial.
    tracer:
        Optional :class:`TraceRecorder`; when provided, every message is
        recorded at send-post time (fast-path collectives record the same
        messages in bulk).
    use_fast_collectives:
        Allow collectives (world or split sub-communicator) to take the
        vectorized fast path. Set to ``False`` to pin every collective to
        the point-to-point generator cascade (the equivalence suite's
        reference).
    use_batched_p2p:
        Price point-to-point sends in vectorized batches (one
        :meth:`NetworkModel.transfer_times` call per drained wave) instead
        of one scalar :meth:`NetworkModel.transfer_time` call per message.
        Arrival times are bit-identical either way; set to ``False`` to pin
        the scalar reference path.
    failure_ranks:
        Ranks that should fail by raising :class:`RankFailedError` inside
        their program the next time they interact with the engine. Used by
        the failure-injection layers; normal runs leave it empty.
    """

    def __init__(
        self,
        nranks: int,
        *,
        network: NetworkModel | None = None,
        tracer: TraceRecorder | None = None,
        use_fast_collectives: bool = True,
        use_batched_p2p: bool = True,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.network = network or zero_latency_network()
        self.tracer = tracer
        self.use_fast_collectives = use_fast_collectives
        self.use_batched_p2p = use_batched_p2p
        self.failure_ranks: set[int] = set()

        # Protocol hooks (used by repro.hydee): an optional message log that
        # captures payloads of selected messages at send time, and
        # per-channel counts of *completed* receives — the two ingredients of
        # sender-based logging with receiver-side checkpointed positions.
        # Receive counting is opt-in (``track_recv_counts``): the protocol
        # layer enables it, plain trace/timing runs skip the per-receive
        # bookkeeping entirely. Either hook forces collectives onto the
        # per-message slow path so the observers see every message.
        self.message_log = None  # object with .wants(src, dst) and .record(...)
        self.track_recv_counts = False
        self.recv_counts: dict[tuple[int, int], int] = {}

        # Matching state, keyed by (comm_id, receiver world rank) and then
        # by (source, tag) channel; see _handle_send/_handle_recv_post.
        self._pending_recvs: dict[tuple[int, int], dict] = {}
        self._unexpected: dict[tuple[int, int], dict] = {}
        self._seq = 0  # global posting-order stamp

        # Batched p2p pricing: messages posted with arrival_time=None,
        # priced in one vectorized transfer_times call per drained
        # scheduler batch (see _price_pending_sends); the few consumed
        # within their own posting batch are priced scalar on demand.
        # The three parallel lists shadow (src, dst, nbytes) so the flush
        # converts straight from Python lists instead of re-walking
        # message attributes.
        self._unpriced: list[Message] = []
        self._unpriced_src: list[int] = []
        self._unpriced_dst: list[int] = []
        self._unpriced_nbytes: list[int] = []

        # Communicator-id allocation (world == 0); see Communicator.split.
        # Per-group membership bookkeeping: comm id → (group rank → world
        # rank) tuple and comm id → {world rank → group rank} map. Fast-path
        # collectives are only available on registered groups.
        self._next_comm_id = 1
        self._split_registry: dict[tuple, int] = {}
        world = tuple(range(nranks))
        self._groups: dict[int, tuple[int, ...]] = {0: world}
        self._group_rank: dict[int, dict[int, int]] = {
            0: {r: r for r in world}
        }

        self._states: list[_RankState] = []
        self._next_runnable: list[int] = []
        self._in_next: set[int] = set()

        # Fast-collective state: gathering slots and per-run eligibility.
        self._pending_colls: dict[tuple[int, int], _PendingCollective] = {}
        self._fast_coll_active = False
        self.fast_collectives_run = 0

    # -- communicator-id service -------------------------------------------

    def allocate_comm_id(self, key: tuple, group: Sequence[int] | None = None) -> int:
        """Return a stable comm id for ``key`` (same key → same id).

        All members of a split call with the same (parent, sequence, color)
        key and must agree on the resulting id regardless of the order in
        which the engine resumes them. When ``group`` (the new
        communicator's members as world ranks, in group-rank order) is
        supplied, the membership is registered so collectives on the new
        communicator can take the fast path; every member derives the same
        group from the same split allgather, so registration is idempotent.
        """
        cid = self._split_registry.get(key)
        if cid is None:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._split_registry[key] = cid
        if group is not None:
            # Register on hits too: the id and group must stay consistent
            # (register_group raises on a membership mismatch).
            self.register_group(cid, group)
        return cid

    def register_group(self, comm_id: int, group: Sequence[int]) -> None:
        """Record ``comm_id``'s membership (group rank → world rank).

        Only registered communicators are eligible for fast-path
        collectives; unknown comm ids simply stay on the generator cascade.
        """
        members = tuple(group)
        known = self._groups.get(comm_id)
        if known is not None:
            if known != members:
                raise MatchingError(
                    f"comm {comm_id} re-registered with different membership: "
                    f"{known} vs {members}"
                )
            return
        self._groups[comm_id] = members
        self._group_rank[comm_id] = {w: g for g, w in enumerate(members)}

    def group_of(self, comm_id: int) -> tuple[int, ...] | None:
        """Registered membership of ``comm_id`` (``None`` if unknown)."""
        return self._groups.get(comm_id)

    # -- scheduling ----------------------------------------------------------

    def _make_runnable(self, rank: int) -> None:
        if rank not in self._in_next:
            self._in_next.add(rank)
            self._next_runnable.append(rank)

    def run(
        self,
        program: RankProgram | Sequence[RankProgram],
        *,
        comm_factory: Callable[[RankContext], Any] | None = None,
    ) -> list[Any]:
        """Execute one program per rank to completion; return their results.

        ``program`` is either a single callable used for every rank or a
        sequence of ``nranks`` callables. Each callable receives the rank's
        :class:`RankContext` and must return a generator.

        Raises :class:`DeadlockError` if no rank can make progress while
        some are unfinished.
        """
        from repro.simmpi.comm import Communicator  # local import, no cycle at module load

        # Reset the split bookkeeping before anything (including a
        # comm_factory) runs: a reused engine may execute a program with a
        # different split topology, and stale key → id → group mappings
        # would silently push its collectives onto the cascade (or
        # mis-gather them).
        self._next_comm_id = 1
        self._split_registry = {}
        self._groups = {0: self._groups[0]}
        self._group_rank = {0: self._group_rank[0]}

        if callable(program):
            programs: list[RankProgram] = [program] * self.nranks
        else:
            programs = list(program)
            if len(programs) != self.nranks:
                raise ValueError(
                    f"got {len(programs)} programs for {self.nranks} ranks"
                )

        self._states = []
        for rank in range(self.nranks):
            ctx = RankContext(rank, self.nranks, self)
            if comm_factory is not None:
                ctx.comm = comm_factory(ctx)
            else:
                ctx.comm = Communicator.world(ctx)
            gen = programs[rank](ctx)
            if not isinstance(gen, Generator):
                raise TypeError(
                    f"rank program for rank {rank} must return a generator; "
                    f"did you forget `yield` in the program body?"
                )
            self._states.append(_RankState(rank, gen, ctx))

        self._pending_colls = {}
        self._unpriced = []
        self._unpriced_src = []
        self._unpriced_dst = []
        self._unpriced_nbytes = []
        # Eligibility is fixed per run: every rank must take the same path
        # through a given collective, and all three per-message observers
        # (payload log, receive counting, failure injection) need the
        # cascade's individual messages.
        self._fast_coll_active = (
            self.use_fast_collectives
            and self.message_log is None
            and not self.track_recv_counts
            and not self.failure_ranks
        )

        states = self._states
        step = self._step
        batch = list(range(self.nranks))
        self._next_runnable = []
        self._in_next = set()
        while batch:
            for rank in batch:
                step(states[rank])
            if self._unpriced:
                # Price the batch's whole send wave in one vectorized pass
                # (waits in later batches then find arrival times ready).
                self._price_pending_sends()
            batch = self._next_runnable
            batch.sort()
            self._next_runnable = []
            self._in_next = set()

        unfinished = [s for s in self._states if not s.finished]
        if unfinished:
            blocked = {s.rank: self._describe_blocked(s) for s in unfinished}
            raise DeadlockError(blocked)
        return [s.result for s in self._states]

    def _describe_blocked(self, state: _RankState) -> str:
        """Deadlock attribution for one blocked rank.

        For a rank parked on a partially-gathered collective, names the
        communicator's group, this member's group rank, and the members
        that never arrived — so a sub-communicator hang reads as "group X
        is stuck waiting for member Y" instead of an opaque request.
        """
        request = state.blocked_on
        if request is None:
            return "not scheduled"
        desc = request.describe()
        if request.__class__ is CollectiveRequest:
            entry = self._pending_colls.get((request.comm_id, request.tag))
            if entry is not None:
                group = entry.group
                grank = self._group_rank[request.comm_id][state.rank]
                missing = entry.missing_members()
                shown = ", ".join(map(str, missing[:8]))
                if len(missing) > 8:
                    shown += f", … {len(missing) - 8} more"
                desc += (
                    f" — group rank {grank}/{len(group)}, gathered "
                    f"{entry.count}/{len(group)}, missing world rank(s) "
                    f"[{shown}]"
                )
        return desc

    def _step(self, state: _RankState) -> None:
        """Resume one rank and run it until it finishes or blocks."""
        send_value: Any = None
        throw_exc: BaseException | None = None
        if state.blocked_on is not None:
            # Waking from a Wait: answer the pending yield with the request
            # (or, for a fast collective, with this rank's result).
            request = state.blocked_on
            state.blocked_on = None
            if not request.done:
                raise MatchingError("rank resumed on an incomplete request")
            if request.__class__ is CollectiveRequest:
                send_value = request.result
            else:
                send_value = self._complete_wait(state, request)

        gen_send = state.gen.send
        failure_ranks = self.failure_ranks
        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    op = state.gen.throw(exc)
                else:
                    op = gen_send(send_value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                return
            except RankFailedError:
                state.finished = True
                state.failed = True
                state.result = None
                return

            if failure_ranks and state.rank in failure_ranks and not state.failed:
                # Inject the failure at the rank's next communication
                # point (generators cannot catch exceptions thrown before
                # their first yield). The pending op is dropped — the
                # message is never posted, exactly like a crash mid-call.
                state.failed = True
                throw_exc = RankFailedError(state.rank)
                continue

            cls = op.__class__
            if cls is PostSend:
                send_value = self._handle_send(state, op)
            elif cls is PostRecv:
                send_value = self._handle_recv_post(state, op)
            elif cls is Wait:
                request = op.request
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            elif cls is CollectiveOp:
                request = self._handle_collective(state, op)
                if request.done:
                    send_value = request.result
                else:
                    state.blocked_on = request
                    return
            else:
                raise MatchingError(f"rank {state.rank} yielded unknown op {op!r}")

    # -- op handlers ---------------------------------------------------------

    def _handle_send(self, state: _RankState, op: PostSend) -> SendRequest:
        src = state.rank
        dst = op.dest
        clock = state.ctx.clock
        if self.use_batched_p2p:
            # Defer pricing: arrival_time stays None until some receiver
            # needs it, at which point the whole accumulated wave is priced
            # in one vectorized transfer_times call (the halo exchange posts
            # 4 sends per rank per iteration before anyone waits, so whole
            # waves of sends price together).
            arrival = None
        else:
            arrival = clock + self.network.transfer_time(src, dst, op.nbytes)
        message = Message(
            src=src,
            dst=dst,
            tag=op.tag,
            comm_id=op.comm_id,
            payload=op.payload,
            nbytes=op.nbytes,
            send_time=clock,
            arrival_time=arrival,
        )
        if arrival is None:
            self._unpriced.append(message)
            self._unpriced_src.append(src)
            self._unpriced_dst.append(dst)
            self._unpriced_nbytes.append(op.nbytes)
        message.kind = op.kind
        if self.tracer is not None:
            self.tracer.record(src, dst, op.nbytes, kind=op.kind)
        if self.message_log is not None and self.message_log.wants(src, dst):
            self.message_log.record(
                src, dst, op.tag, op.payload, op.nbytes, op.kind
            )

        key = (op.comm_id, dst)
        channels = self._pending_recvs.get(key)
        if channels:
            req = self._match_pending_recv(channels, src, op.tag)
            if req is not None:
                req.complete(message)
                self._unblock_if_waiting(dst, req)
                return SendRequest(src, message)
        bucket = self._unexpected.get(key)
        if bucket is None:
            bucket = self._unexpected[key] = {}
        chan = bucket.get((src, op.tag))
        if chan is None:
            chan = bucket[(src, op.tag)] = deque()
        chan.append((self._seq, message))
        self._seq += 1
        return SendRequest(src, message)

    @staticmethod
    def _match_pending_recv(channels: dict, src: int, tag: int):
        """Earliest-posted pending receive whose pattern accepts (src, tag).

        A receive pattern is one of four channels — exact, source-wildcard,
        tag-wildcard, both-wildcard — so candidate lookup is four dict
        probes; the posting-sequence stamps arbitrate between them exactly
        like a linear scan over posting order.
        """
        best_seq = None
        best_pattern = None
        for pattern in (
            (src, tag),
            (src, ANY_TAG),
            (ANY_SOURCE, tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            chan = channels.get(pattern)
            if chan:
                seq = chan[0][0]
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best_pattern = pattern
        if best_pattern is None:
            return None
        chan = channels[best_pattern]
        _, req = chan.popleft()
        if not chan:
            # Drop drained channels: slow-path collectives mint a fresh tag
            # per call, so stale empty deques would otherwise accumulate
            # for the lifetime of a long protocol run.
            del channels[best_pattern]
        return req

    def _handle_recv_post(self, state: _RankState, op: PostRecv) -> RecvRequest:
        req = RecvRequest(state.rank, op.source, op.tag, op.comm_id)
        key = (op.comm_id, state.rank)
        bucket = self._unexpected.get(key)
        if bucket:
            message = self._match_unexpected(bucket, op.source, op.tag)
            if message is not None:
                req.complete(message)
                return req
        channels = self._pending_recvs.get(key)
        if channels is None:
            channels = self._pending_recvs[key] = {}
        chan = channels.get((op.source, op.tag))
        if chan is None:
            chan = channels[(op.source, op.tag)] = deque()
        chan.append((self._seq, req))
        self._seq += 1
        return req

    @staticmethod
    def _match_unexpected(bucket: dict, source: int, tag: int):
        """Earliest-arrived unexpected message matching a receive pattern.

        Exact patterns probe one channel deque; wildcard patterns scan the
        receiver's active channels and take the head with the smallest
        arrival stamp — identical to scanning one arrival-ordered list.
        """
        if source != ANY_SOURCE and tag != ANY_TAG:
            chan = bucket.get((source, tag))
            if not chan:
                return None
            _, message = chan.popleft()
            if not chan:
                del bucket[(source, tag)]
            return message
        best_seq = None
        best_key = None
        for (src, mtag), chan in bucket.items():
            if source != ANY_SOURCE and src != source:
                continue
            if tag != ANY_TAG and mtag != tag:
                continue
            seq = chan[0][0]
            if best_seq is None or seq < best_seq:
                best_seq = seq
                best_key = (src, mtag)
        if best_key is None:
            return None
        chan = bucket[best_key]
        _, message = chan.popleft()
        if not chan:
            del bucket[best_key]
        return message

    def _handle_collective(
        self, state: _RankState, op: CollectiveOp
    ) -> CollectiveRequest:
        key = (op.comm_id, op.tag)
        entry = self._pending_colls.get(key)
        if entry is None:
            group = self._groups.get(op.comm_id)
            if group is None:
                raise MatchingError(
                    f"rank {state.rank} entered fast collective {op.kind!r} "
                    f"on unregistered comm {op.comm_id}"
                )
            entry = self._pending_colls[key] = _PendingCollective(
                group, op.kind, op.root, op.trace_kind
            )
        elif entry.kind != op.kind or entry.root != op.root:
            raise MatchingError(
                f"rank {state.rank} joined collective {op.kind!r} (root "
                f"{op.root}) but tag {op.tag} gathers {entry.kind!r} (root "
                f"{entry.root})"
            )
        grank = self._group_rank[op.comm_id].get(state.rank)
        if grank is None:
            raise MatchingError(
                f"world rank {state.rank} is not a member of comm "
                f"{op.comm_id} (group {entry.group})"
            )
        if entry.requests[grank] is not None:
            raise MatchingError(
                f"rank {state.rank} entered collective tag {op.tag} twice"
            )
        req = CollectiveRequest(state.rank, op.kind, op.comm_id, op.tag)
        entry.values[grank] = op.value
        entry.op_fns[grank] = op.op
        entry.requests[grank] = req
        entry.count += 1
        if entry.count == len(entry.group):
            del self._pending_colls[key]
            self._complete_collective(entry)
        return req

    def _complete_collective(self, entry: _PendingCollective) -> None:
        """Compute a fully-gathered collective and wake its members.

        ``entry`` is indexed by group rank; clocks are gathered from (and
        written back to) the member ranks only, and the group's rank→world
        vector translates partners for the network model and tracer.
        """
        states = self._states
        group = entry.group
        size = len(group)
        clocks = np.fromiter(
            (states[w].ctx.clock for w in group), dtype=np.float64, count=size
        )
        results, new_clocks = _coll.execute_fast_collective(
            entry.kind,
            values=entry.values,
            op_fns=entry.op_fns,
            root=entry.root,
            trace_kind=entry.trace_kind,
            clocks=clocks,
            group=np.asarray(group, dtype=np.int64),
            network=self.network,
            tracer=self.tracer,
        )
        self.fast_collectives_run += 1
        new_times = new_clocks.tolist()
        for grank, req in enumerate(entry.requests):
            world = group[grank]
            states[world].ctx.clock = new_times[grank]
            req.result = results[grank]
            req.done = True
            if states[world].blocked_on is req:
                self._make_runnable(world)

    def _unblock_if_waiting(self, rank: int, request: Request) -> None:
        state = self._states[rank]
        if state.blocked_on is request:
            # Leave blocked_on set: _step consumes it on resume so the
            # pending Wait yield receives the completed request.
            self._make_runnable(rank)

    def _price_pending_sends(self) -> None:
        """Price the drained batch's send wave in one vectorized pass.

        Arrival times are ``send_time + transfer_times(...)`` —
        bit-identical to the scalar ``transfer_time`` path (same IEEE
        arithmetic; see :meth:`NetworkModel.transfer_times`), so messages
        already priced on demand (consumed within their posting batch, see
        :meth:`_complete_wait`) are simply overwritten with the same value.
        Tiny waves skip the array machinery.
        """
        pending = self._unpriced
        srcs, dsts, nbytes = (
            self._unpriced_src,
            self._unpriced_dst,
            self._unpriced_nbytes,
        )
        self._unpriced = []
        self._unpriced_src = []
        self._unpriced_dst = []
        self._unpriced_nbytes = []
        if len(pending) <= 4:
            transfer_time = self.network.transfer_time
            for m in pending:
                if m.arrival_time is None:
                    m.arrival_time = m.send_time + transfer_time(
                        m.src, m.dst, m.nbytes
                    )
            return
        times = self.network.transfer_times(
            np.array(srcs, dtype=np.int64),
            np.array(dsts, dtype=np.int64),
            np.array(nbytes, dtype=np.float64),
        )
        for m, t in zip(pending, times.tolist()):
            m.arrival_time = m.send_time + t

    def _complete_wait(self, state: _RankState, request: Request) -> Request:
        """Account virtual time for a completed wait and return the request."""
        if isinstance(request, RecvRequest):
            message = request.message
            if message is None:
                raise MatchingError("completed receive without a message")
            if message.arrival_time is None:
                # Consumed within its own posting batch: price this one
                # message scalar; the batch-boundary flush skips it.
                message.arrival_time = message.send_time + self.network.transfer_time(
                    message.src, message.dst, message.nbytes
                )
            if message.arrival_time > state.ctx.clock:
                state.ctx.clock = message.arrival_time
            if self.track_recv_counts:
                channel = (message.src, state.rank)
                self.recv_counts[channel] = self.recv_counts.get(channel, 0) + 1
        return request

    # -- introspection ---------------------------------------------------------

    @property
    def max_time(self) -> float:
        """Largest rank clock seen so far (the run's virtual makespan)."""
        if not self._states:
            return 0.0
        return max(s.ctx.clock for s in self._states)

    def rank_times(self) -> list[float]:
        """Per-rank final virtual clocks (after :meth:`run`)."""
        return [s.ctx.clock for s in self._states]


def run_program(
    program: RankProgram | Sequence[RankProgram],
    nranks: int,
    *,
    network: NetworkModel | None = None,
    tracer: TraceRecorder | None = None,
    use_fast_collectives: bool = True,
    use_batched_p2p: bool = True,
) -> list[Any]:
    """One-shot convenience wrapper: build an engine, run, return results."""
    engine = Engine(
        nranks,
        network=network,
        tracer=tracer,
        use_fast_collectives=use_fast_collectives,
        use_batched_p2p=use_batched_p2p,
    )
    return engine.run(program)


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveOp",
    "Engine",
    "PostRecv",
    "PostSend",
    "RankContext",
    "Wait",
    "run_program",
    "nbytes_of",
]
