"""Deterministic discrete-event engine driving simulated MPI rank programs.

Rank programs are Python *generator coroutines*: every communication
primitive is a generator that ``yield``\\ s low-level operations to the
engine and receives the result back through ``gen.send()``. Application code
therefore reads almost exactly like mpi4py::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=7)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=7)
        return result

The engine is *deterministic*: runnable ranks are resumed in sorted
batches (see below), message matching follows MPI's non-overtaking rule
per (sender, communicator), and virtual time is tracked per rank with a
latency/bandwidth network model. Determinism is what makes the protocol
tests (checkpoint/replay bit-equivalence) meaningful.

Scheduling
----------
The scheduler is a batched run-until-blocked loop. All ranks start
runnable; the engine drains the current batch in ascending rank order,
resuming each rank's generator until it either finishes or blocks on an
incomplete request. Ranks unblocked while a batch drains (a send
completing a peer's pending receive, the last member arriving at a fast
collective) accumulate into the *next* batch, which is sorted and drained
the same way, until no rank is runnable. The schedule is a pure function
of the programs — no heap, no wall-clock, no iteration order over hash
containers — so runs are exactly reproducible.

Dispatch of the yielded ops is a ``__class__``-identity chain over the
six op types (send post, receive post, wait, wait-all, persistent start,
collective), and message matching is per-channel: unexpected messages and
pending receives live in deques keyed by ``(source, tag)`` under each
``(communicator, receiver)``, stamped with a global posting sequence.
Exact-match traffic pops its deque in O(1); wildcard receives
(``ANY_SOURCE`` / ``ANY_TAG``) pick the matching channel head with the
smallest stamp, which reproduces exactly the posted-order semantics of a
linear scan.

The message pool
----------------
In-flight messages are not Python objects. The engine owns one
:class:`~repro.simmpi.request.MessagePool` — parallel NumPy columns for
source / destination / tag / communicator / byte count / posting sequence /
send time / arrival time, plus payload and kind lists and a LIFO free
list — and every posted send allocates a *slot index* in it. Matching
moves slot ``int``\\ s through the channel deques, wildcard arbitration
compares ``pool.seq`` entries, and the wait that consumes a receive copies
the slot out into an immutable
:class:`~repro.simmpi.request.MessageView` before recycling it. Observers
(``Status``, payload delivery, the protocol's receive counting) only ever
see views — a recycled slot can never corrupt a completed receive. Send
handles carry no message state at all: every send post returns the shared
:data:`~repro.simmpi.request.COMPLETED_SEND` instance.

Batched p2p pricing
-------------------
Posting a send does not price it. The slot is allocated with the
:data:`~repro.simmpi.request.UNPRICED` arrival sentinel and queued on the
current *wave*; when the scheduler finishes draining a batch, the whole
accumulated send wave is priced in one vectorized
:meth:`NetworkModel.transfer_times <repro.simmpi.network.NetworkModel.transfer_times>`
call and written back with a single fancy-indexed assignment
(``pool.arrival[wave] = pool.send_time[wave] + times``). A receive
completed *within* the posting batch prices its one slot scalar on demand —
the flush then simply overwrites it with the bit-identical value. Trace
recording is batched on the same cadence: each wave accumulates per-kind
``(src, dst, nbytes)`` triples and flushes them through
:meth:`TraceRecorder.record_many <repro.simmpi.tracing.TraceRecorder.record_many>`,
which produces byte-identical matrices to per-message recording (integer
byte counts — accumulation order cannot perturb the float sums). Arrival
times are bit-identical to the scalar path (``use_batched_p2p=False`` pins
the per-message reference, which also keeps per-message trace recording;
the equivalence suite compares both).

Persistent-request waves
------------------------
``send_init`` / ``recv_init`` build reusable request recipes and
``start_all`` posts a whole wave of them through one yielded
:class:`StartAll` op; ``waitall`` blocks on one :class:`WaitAll` op instead
of one ``Wait`` per message. This is MPI's persistent-communication shape
(``MPI_Send_init`` / ``MPI_Startall``) and it is what stencil codes use in
practice: the per-iteration halo exchange costs two scheduler interactions
per rank instead of roughly three per message, while posting order, message
matching, pricing and tracing stay exactly those of the equivalent
``isend`` / ``irecv`` / ``wait`` sequence (the equivalence suite pins
traces, clocks and results against the per-message program). All traced
workloads speak this shape by default (``use_waves`` on the app
configs); re-arming is restart-safe — a start refuses a receive still in
flight or matched-but-never-drained — and failure injection sees waves
and per-message sequences identically (a dropped start posts nothing,
exactly like a crash before the first ``isend`` of the equivalent
sequence).

Virtual-time semantics
----------------------
* each rank carries a local clock, advanced by ``ctx.advance(seconds)`` for
  compute and by communication waits;
* sends are buffered: posting captures the payload and completes
  immediately (the sender pays no wait time);
* a receive completes at ``max(local clock, message arrival time)`` where
  arrival = sender clock at post + network transfer time.

This is the standard LogP-style approximation used by trace-driven MPI
simulators; it reproduces exactly what the paper consumes (byte-accurate
traces, event ordering) while remaining fast enough for 1088-rank runs.

Fast-path collectives
---------------------
``bcast`` / ``reduce`` / ``allreduce`` / ``allgather`` / ``alltoall`` /
``barrier`` on the world communicator *or any split sub-communicator* skip
the point-to-point generator cascade: each member yields a single
:class:`CollectiveOp`, the engine parks it until every member of the
communicator's registered group has arrived, then computes results,
per-member clocks and trace records in one vectorized pass over the
group's slice of the network model (:mod:`repro.simmpi.collectives`,
second half). Membership bookkeeping lives in the engine: comm id 0 is
the world group, and ``Communicator.split`` registers each new group
(stable comm ids via :meth:`Engine.allocate_comm_id`, rank→group-rank
maps via :meth:`Engine.register_group`). Split *plans* are engine-cached
too: every member of a split derives the identical color→(id, members)
map from the identical allgather, so the first member computes it once
and the rest look their color up — O(ranks) total instead of O(ranks²). A deadlock involving a
partially-gathered collective is attributed to the stuck group: the error
names the member's group rank and the world ranks that never arrived.

The fast path is byte-identical to the cascade — same trace matrices,
same message counts, same clocks, same results — and is therefore active
even under tracing. It deactivates (per run) whenever a per-message
observer needs to see the individual point-to-point messages: a
``message_log`` (sender-based payload logging), ``track_recv_counts``
(receiver-position sidecars), a non-empty ``failure_ranks`` set (failures
strike mid-cascade), or ``use_fast_collectives=False`` (the equivalence
tests' pin). Communicators whose membership the engine does not know
(e.g. the HydEE replay communicator) always run the cascade.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.errors import DeadlockError, MatchingError, RankFailedError
from repro.simmpi.network import NetworkModel, zero_latency_network
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    COMPLETED_SEND,
    UNPRICED,
    CollectiveRequest,
    MessagePool,
    MessageView,
    PersistentRecvRequest,
    PersistentSendRequest,
    RecvRequest,
    Request,
    WaitAllRequest,
    capture_payload,
    nbytes_of,
)
from repro.simmpi.tracing import TraceRecorder

# --------------------------------------------------------------------------
# Low-level operations yielded by primitives to the engine
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PostSend:
    """Post a buffered send; engine replies with a :class:`SendRequest`."""

    dest: int  # world rank
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    kind: str


@dataclass(slots=True)
class PostRecv:
    """Post a receive; engine replies with a :class:`RecvRequest`."""

    source: int  # world rank or ANY_SOURCE
    tag: int
    comm_id: int


@dataclass(slots=True)
class Wait:
    """Block until ``request`` completes; engine replies with the request."""

    request: Request


@dataclass(slots=True)
class WaitAll:
    """Block until every request completes; engine replies with per-request
    results in order (the received payload for receives, ``None`` for
    sends) — one scheduler interaction for a whole wave of waits."""

    requests: Sequence[Request]


@dataclass(slots=True)
class StartAll:
    """Activate a wave of persistent requests in list order; engine replies
    ``None``. Sends post one fresh pool message from their recipe; receives
    re-enter matching. ``plan`` caches the engine's compiled posting plan —
    ops are reusable, so a steady-state wave compiles exactly once."""

    requests: Sequence[Request]
    plan: list | None = None


@dataclass(slots=True)
class CollectiveOp:
    """One rank's entry into a fast-path world collective.

    The engine replies with the rank's collective *result* (not a request)
    once every world rank has yielded the matching op. ``tag`` is the
    collective tag the slow path would have used — it keys concurrent
    collectives apart when ranks run ahead of each other.
    """

    kind: str  # "bcast" | "reduce" | "allreduce" | "allgather" | "alltoall" | "barrier"
    comm_id: int
    tag: int
    value: Any
    root: int
    op: Callable | None
    trace_kind: str


Op = PostSend | PostRecv | Wait | WaitAll | StartAll | CollectiveOp


class RankContext:
    """Per-rank execution context handed to every rank program.

    Attributes
    ----------
    rank:
        World rank of this program instance.
    nranks:
        World size.
    clock:
        Local virtual time in seconds (mutated by the engine and by
        :meth:`advance`).
    comm:
        The world communicator (set by the engine before the program runs).
    """

    __slots__ = ("rank", "nranks", "clock", "comm", "engine", "user")

    def __init__(self, rank: int, nranks: int, engine: "Engine"):
        self.rank = rank
        self.nranks = nranks
        self.clock = 0.0
        self.comm = None  # filled in by Engine.run with the world communicator
        self.engine = engine
        self.user: dict[str, Any] = {}

    @property
    def now(self) -> float:
        """Current local virtual time in seconds."""
        return self.clock

    def advance(self, seconds: float) -> None:
        """Advance local time by ``seconds`` of modeled computation."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self.clock += seconds


class _RankState:
    """Book-keeping for one live rank inside the engine."""

    __slots__ = ("rank", "gen", "ctx", "blocked_on", "finished", "result", "failed")

    def __init__(self, rank: int, gen: Generator, ctx: RankContext):
        self.rank = rank
        self.gen = gen
        self.ctx = ctx
        self.blocked_on: Request | None = None
        self.finished = False
        self.result: Any = None
        self.failed = False


class _PendingCollective:
    """Gathering state of one fast-path collective instance.

    ``group`` is the owning communicator's membership (group rank → world
    rank); ``values``/``op_fns``/``requests`` are indexed by group rank.
    """

    __slots__ = (
        "kind",
        "root",
        "trace_kind",
        "group",
        "values",
        "op_fns",
        "requests",
        "count",
    )

    def __init__(self, group: tuple[int, ...], kind: str, root: int, trace_kind: str):
        size = len(group)
        self.kind = kind
        self.root = root
        self.trace_kind = trace_kind
        self.group = group
        self.values: list[Any] = [None] * size
        self.op_fns: list[Callable | None] = [None] * size
        self.requests: list[CollectiveRequest | None] = [None] * size
        self.count = 0

    def missing_members(self) -> list[int]:
        """World ranks of members that have not reached the collective."""
        return [
            self.group[g]
            for g, req in enumerate(self.requests)
            if req is None
        ]


class _Mailbox:
    """Matching state of one (communicator, receiver) endpoint.

    ``pending`` maps (source, tag) patterns to deques of parked
    :class:`RecvRequest`\\ s; ``unexpected`` maps (source, tag) channels to
    deques of pool slot ints; ``wild`` counts parked wildcard receives —
    while zero, a send needs exactly one dict probe to find its match.
    """

    __slots__ = ("pending", "unexpected", "wild")

    def __init__(self):
        self.pending: dict[tuple[int, int], deque] = {}
        self.unexpected: dict[tuple[int, int], deque] = {}
        self.wild = 0


RankProgram = Callable[[RankContext], Generator]


class Engine:
    """Deterministic discrete-event executor for simulated MPI programs.

    Parameters
    ----------
    nranks:
        World size.
    network:
        Timing model; defaults to a zero-latency network, which preserves
        ordering semantics and traces while making unit tests trivial.
    tracer:
        Optional :class:`TraceRecorder`; when provided, every message is
        recorded (fast-path collectives and batched p2p waves record the
        same messages in bulk; the scalar p2p reference records at post
        time).
    use_fast_collectives:
        Allow collectives (world or split sub-communicator) to take the
        vectorized fast path. Set to ``False`` to pin every collective to
        the point-to-point generator cascade (the equivalence suite's
        reference).
    use_batched_p2p:
        Price point-to-point sends in vectorized waves (one
        :meth:`NetworkModel.transfer_times` call and one fancy-indexed
        pool assignment per drained batch) instead of one scalar
        :meth:`NetworkModel.transfer_time` call per message. Arrival times
        are bit-identical either way; set to ``False`` to pin the scalar
        reference path.
    pool_capacity:
        Initial slot count of the engine's :class:`MessagePool`; the pool
        doubles on demand, so this only sizes the steady state (tests use
        tiny capacities to exercise growth).
    failure_ranks:
        Ranks that should fail by raising :class:`RankFailedError` inside
        their program the next time they interact with the engine. Used by
        the failure-injection layers; normal runs leave it empty.
    """

    def __init__(
        self,
        nranks: int,
        *,
        network: NetworkModel | None = None,
        tracer: TraceRecorder | None = None,
        use_fast_collectives: bool = True,
        use_batched_p2p: bool = True,
        pool_capacity: int = 512,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.network = network or zero_latency_network()
        self.tracer = tracer
        self.use_fast_collectives = use_fast_collectives
        self.use_batched_p2p = use_batched_p2p
        self.failure_ranks: set[int] = set()

        # Protocol hooks (used by repro.hydee): an optional message log that
        # captures payloads of selected messages at send time, and
        # per-channel counts of *consumed* receives — the two ingredients of
        # sender-based logging with receiver-side checkpointed positions.
        # Receive counting is opt-in (``track_recv_counts``): the protocol
        # layer enables it, plain trace/timing runs skip the per-receive
        # bookkeeping entirely. Either hook forces collectives onto the
        # per-message slow path so the observers see every message. Both
        # observers consume scalars / MessageViews — never pool slots.
        self.message_log = None  # object with .wants(src, dst) and .record(...)
        self.track_recv_counts = False
        self.recv_counts: dict[tuple[int, int], int] = {}

        # The struct-of-arrays message store; see repro.simmpi.request.
        self.pool = MessagePool(pool_capacity)

        # Matching state: one _Mailbox per (comm_id, receiver world rank),
        # each holding per-(source, tag) channels. Pending-receive channels
        # hold the RecvRequest objects (each stamped with .seq);
        # unexpected-message channels hold bare pool slot ints (their stamp
        # is pool.seq[slot]). ``wild`` counts queued wildcard receives so
        # the overwhelmingly common no-wildcard case matches with a single
        # dict probe.
        self._mailboxes: dict[tuple[int, int], _Mailbox] = {}
        # World-communicator mailboxes get a flat rank-indexed array (comm
        # id 0 carries nearly all p2p traffic; skipping the tuple-key dict
        # saves a hash per message).
        self._world_mail: list[_Mailbox | None] = [None] * nranks
        self._seq = 0  # global posting-order stamp

        # Batched p2p pricing: sends posted with the UNPRICED sentinel
        # accumulate their slots (and kinds) on the current wave; the wave
        # is priced, traced and recycled once per drained scheduler batch.
        # Slots consumed mid-batch park on the deferred-free list so wave
        # entries always describe the wave's own messages at flush time.
        self._wave_slots: list[int] = []
        self._wave_kinds: list[str] = []
        self._deferred_free: list[int] = []

        # Communicator-id allocation (world == 0); see Communicator.split.
        # Per-group membership bookkeeping: comm id → (group rank → world
        # rank) tuple and comm id → {world rank → group rank} map. Fast-path
        # collectives are only available on registered groups.
        self._next_comm_id = 1
        self._split_registry: dict[tuple, int] = {}
        # Shared split plans: (parent comm id, split seq) → {color → (new
        # comm id, membership tuple)}. Every member of a split derives the
        # identical plan from the identical allgather, so the first member
        # computes it and the rest look their color up (see
        # Communicator.split).
        self._split_plans: dict[tuple[int, int], dict] = {}
        world = tuple(range(nranks))
        self._groups: dict[int, tuple[int, ...]] = {0: world}
        self._group_rank: dict[int, dict[int, int]] = {
            0: {r: r for r in world}
        }

        self._states: list[_RankState] = []
        self._next_runnable: list[int] = []
        self._in_next: set[int] = set()

        # Fast-collective state: gathering slots and per-run eligibility.
        self._pending_colls: dict[tuple[int, int], _PendingCollective] = {}
        self._fast_coll_active = False
        self.fast_collectives_run = 0

    # -- communicator-id service -------------------------------------------

    def allocate_comm_id(self, key: tuple, group: Sequence[int] | None = None) -> int:
        """Return a stable comm id for ``key`` (same key → same id).

        All members of a split call with the same (parent, sequence, color)
        key and must agree on the resulting id regardless of the order in
        which the engine resumes them. When ``group`` (the new
        communicator's members as world ranks, in group-rank order) is
        supplied, the membership is registered so collectives on the new
        communicator can take the fast path; every member derives the same
        group from the same split allgather, so registration is idempotent.
        """
        cid = self._split_registry.get(key)
        if cid is None:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._split_registry[key] = cid
        if group is not None:
            # Register on hits too: the id and group must stay consistent
            # (register_group raises on a membership mismatch).
            self.register_group(cid, group)
        return cid

    def register_group(self, comm_id: int, group: Sequence[int]) -> None:
        """Record ``comm_id``'s membership (group rank → world rank).

        Only registered communicators are eligible for fast-path
        collectives; unknown comm ids simply stay on the generator cascade.
        """
        members = tuple(group)
        known = self._groups.get(comm_id)
        if known is not None:
            if known != members:
                raise MatchingError(
                    f"comm {comm_id} re-registered with different membership: "
                    f"{known} vs {members}"
                )
            return
        self._groups[comm_id] = members
        self._group_rank[comm_id] = {w: g for g, w in enumerate(members)}

    def group_of(self, comm_id: int) -> tuple[int, ...] | None:
        """Registered membership of ``comm_id`` (``None`` if unknown)."""
        return self._groups.get(comm_id)

    # -- scheduling ----------------------------------------------------------

    def _make_runnable(self, rank: int) -> None:
        if rank not in self._in_next:
            self._in_next.add(rank)
            self._next_runnable.append(rank)

    def run(
        self,
        program: RankProgram | Sequence[RankProgram],
        *,
        comm_factory: Callable[[RankContext], Any] | None = None,
    ) -> list[Any]:
        """Execute one program per rank to completion; return their results.

        ``program`` is either a single callable used for every rank or a
        sequence of ``nranks`` callables. Each callable receives the rank's
        :class:`RankContext` and must return a generator.

        Raises :class:`DeadlockError` if no rank can make progress while
        some are unfinished.
        """
        from repro.simmpi.comm import Communicator  # local import, no cycle at module load

        # Reset the split bookkeeping before anything (including a
        # comm_factory) runs: a reused engine may execute a program with a
        # different split topology, and stale key → id → group mappings
        # would silently push its collectives onto the cascade (or
        # mis-gather them).
        self._next_comm_id = 1
        self._split_registry = {}
        self._split_plans = {}
        self._groups = {0: self._groups[0]}
        self._group_rank = {0: self._group_rank[0]}

        # Fresh matching state and a fully-free pool: messages a previous
        # run never consumed (fire-and-forget sends, failed ranks' traffic)
        # must not leak slots or match this run's receives.
        self._mailboxes = {}
        self._world_mail = [None] * self.nranks
        self._seq = 0
        self.pool.reset()
        self._wave_slots = []
        self._wave_kinds = []
        self._deferred_free = []

        if callable(program):
            programs: list[RankProgram] = [program] * self.nranks
        else:
            programs = list(program)
            if len(programs) != self.nranks:
                raise ValueError(
                    f"got {len(programs)} programs for {self.nranks} ranks"
                )

        self._states = []
        for rank in range(self.nranks):
            ctx = RankContext(rank, self.nranks, self)
            if comm_factory is not None:
                ctx.comm = comm_factory(ctx)
            else:
                ctx.comm = Communicator.world(ctx)
            gen = programs[rank](ctx)
            if not isinstance(gen, Generator):
                raise TypeError(
                    f"rank program for rank {rank} must return a generator; "
                    f"did you forget `yield` in the program body?"
                )
            self._states.append(_RankState(rank, gen, ctx))

        self._pending_colls = {}
        # Eligibility is fixed per run: every rank must take the same path
        # through a given collective, and all three per-message observers
        # (payload log, receive counting, failure injection) need the
        # cascade's individual messages.
        self._fast_coll_active = (
            self.use_fast_collectives
            and self.message_log is None
            and not self.track_recv_counts
            and not self.failure_ranks
        )

        states = self._states
        step = self._step
        batch = list(range(self.nranks))
        self._next_runnable = []
        self._in_next = set()
        # Pause generational GC while the scheduler drains: the engine's
        # steady state barely allocates (messages live in pool slots, send
        # handles are shared), but the collector would still rescan the
        # long-lived generator/deque graph every few hundred allocations.
        # Restored (and never force-enabled) on every exit path.
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            while batch:
                for rank in batch:
                    step(states[rank])
                if self._wave_slots or self._deferred_free:
                    # Price and trace the batch's whole send wave in one
                    # vectorized pass (waits in later batches then find
                    # arrival times ready) and recycle consumed slots.
                    self._price_pending_sends()
                batch = self._next_runnable
                batch.sort()
                self._next_runnable = []
                self._in_next = set()
        finally:
            if resume_gc:
                gc.enable()
            # A program exception must not swallow the wave that was
            # draining: flushing keeps partial-run traces exact.
            if self._wave_slots or self._deferred_free:
                self._price_pending_sends()

        unfinished = [s for s in self._states if not s.finished]
        if unfinished:
            blocked = {s.rank: self._describe_blocked(s) for s in unfinished}
            raise DeadlockError(blocked)
        return [s.result for s in self._states]

    def _describe_blocked(self, state: _RankState) -> str:
        """Deadlock attribution for one blocked rank.

        For a rank parked on a partially-gathered collective, names the
        communicator's group, this member's group rank, and the members
        that never arrived — so a sub-communicator hang reads as "group X
        is stuck waiting for member Y" instead of an opaque request.
        """
        request = state.blocked_on
        if request is None:
            return "not scheduled"
        desc = request.describe()
        if request.__class__ is CollectiveRequest:
            entry = self._pending_colls.get((request.comm_id, request.tag))
            if entry is not None:
                group = entry.group
                grank = self._group_rank[request.comm_id][state.rank]
                missing = entry.missing_members()
                shown = ", ".join(map(str, missing[:8]))
                if len(missing) > 8:
                    shown += f", … {len(missing) - 8} more"
                desc += (
                    f" — group rank {grank}/{len(group)}, gathered "
                    f"{entry.count}/{len(group)}, missing world rank(s) "
                    f"[{shown}]"
                )
        return desc

    def _step(self, state: _RankState) -> None:
        """Resume one rank and run it until it finishes or blocks."""
        send_value: Any = None
        throw_exc: BaseException | None = None
        if state.blocked_on is not None:
            # Waking from a Wait: answer the pending yield with the request
            # (or, for a fast collective, with this rank's result).
            request = state.blocked_on
            state.blocked_on = None
            if not request.done:
                raise MatchingError("rank resumed on an incomplete request")
            if request.__class__ is CollectiveRequest:
                send_value = request.result
            else:
                send_value = self._complete_wait(state, request)

        gen_send = state.gen.send
        failure_ranks = self.failure_ranks
        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    op = state.gen.throw(exc)
                else:
                    op = gen_send(send_value)
            except StopIteration as stop:
                state.finished = True
                state.result = stop.value
                return
            except RankFailedError:
                state.finished = True
                state.failed = True
                state.result = None
                return

            if failure_ranks and state.rank in failure_ranks and not state.failed:
                # Inject the failure at the rank's next communication
                # point (generators cannot catch exceptions thrown before
                # their first yield). The pending op is dropped — the
                # message is never posted, exactly like a crash mid-call.
                state.failed = True
                throw_exc = RankFailedError(state.rank)
                continue

            cls = op.__class__
            if cls is PostSend:
                self._post_send(
                    state,
                    op.dest,
                    op.tag,
                    op.comm_id,
                    op.payload,
                    op.nbytes,
                    op.kind,
                )
                send_value = COMPLETED_SEND
            elif cls is PostRecv:
                send_value = self._handle_recv_post(state, op)
            elif cls is Wait:
                request = op.request
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            elif cls is WaitAll:
                request = WaitAllRequest(state.rank, list(op.requests))
                if request.done:
                    send_value = self._complete_wait(state, request)
                else:
                    state.blocked_on = request
                    return
            elif cls is StartAll:
                self._handle_start_all(state, op)
                send_value = None
            elif cls is CollectiveOp:
                request = self._handle_collective(state, op)
                if request.done:
                    send_value = request.result
                else:
                    state.blocked_on = request
                    return
            else:
                raise MatchingError(f"rank {state.rank} yielded unknown op {op!r}")

    # -- op handlers ---------------------------------------------------------

    def _post_send(
        self,
        state: _RankState,
        dst: int,
        tag: int,
        comm_id: int,
        payload: Any,
        nbytes: int,
        kind: str,
    ) -> None:
        """Post one buffered send: pool slot, trace/log, eager matching.

        Shared by ``PostSend`` and the persistent ``StartAll`` path; the
        posting order (and hence the ``seq`` stamps) is identical in both,
        so persistent waves match and price exactly like the equivalent
        ``isend`` sequence.
        """
        src = state.rank
        pool = self.pool
        free = pool.free
        if not free:
            pool._grow()
            free = pool.free
        slot = free.pop()
        seq = self._seq
        self._seq = seq + 1
        clock = state.ctx.clock
        if self.use_batched_p2p:
            # Defer pricing: the slot carries the UNPRICED sentinel until
            # some receiver needs it, at which point the whole accumulated
            # wave is priced in one vectorized transfer_times call (the
            # halo exchange posts 4 sends per rank per iteration before
            # anyone waits, so whole waves of sends price together). Trace
            # recording rides the same wave: the flush gathers (src, dst,
            # nbytes) straight from the pool columns it is pricing.
            arrival = UNPRICED
            self._wave_slots.append(slot)
            self._wave_kinds.append(kind)
        else:
            arrival = clock + self.network.transfer_time(src, dst, nbytes)
            if self.tracer is not None:
                self.tracer.record(src, dst, nbytes, kind=kind)
        pool.src[slot] = src
        pool.dst[slot] = dst
        pool.tag[slot] = tag
        pool.comm_id[slot] = comm_id
        pool.nbytes[slot] = nbytes
        pool.send_time[slot] = clock
        pool.arrival[slot] = arrival
        pool.seq[slot] = seq
        pool.payload[slot] = payload
        pool.kind[slot] = kind
        if self.message_log is not None and self.message_log.wants(src, dst):
            self.message_log.record(src, dst, tag, payload, nbytes, kind)

        if comm_id == 0:
            mailbox = self._world_mail[dst]
            if mailbox is None:
                mailbox = self._world_mail[dst] = _Mailbox()
        else:
            mailbox = self._mailboxes.get((comm_id, dst))
            if mailbox is None:
                mailbox = self._mailboxes[(comm_id, dst)] = _Mailbox()
        pending = mailbox.pending
        if pending:
            req = self._match_pending_recv(mailbox, src, tag)
            if req is not None:
                # Capture the waitall parent before complete() detaches it:
                # the receiver wakes either because it blocked on this very
                # request, or because this completion was the one that
                # finished the WaitAllRequest it blocked on. Anything else
                # (e.g. a pre-posted receive for a later iteration
                # completing while the rank awaits its resume) must NOT
                # wake it — a second wake would double-schedule the rank.
                parent = req.parent
                req.complete(slot)
                if parent is not None and not parent.done:
                    parent = None
                self._unblock_if_waiting(dst, req, parent)
                return
        bucket = mailbox.unexpected
        chan = bucket.get((src, tag))
        if chan is None:
            chan = bucket[(src, tag)] = deque()
        chan.append(slot)

    @staticmethod
    def _match_pending_recv(mailbox: _Mailbox, src: int, tag: int):
        """Earliest-posted pending receive whose pattern accepts (src, tag).

        With no wildcard receives parked (``mailbox.wild == 0``, the
        overwhelmingly common case) the exact channel is the only
        candidate: one dict probe. Otherwise a receive pattern is one of
        four channels — exact, source-wildcard, tag-wildcard,
        both-wildcard — and the requests' posting-sequence stamps arbitrate
        between the probes exactly like a linear scan over posting order.
        """
        channels = mailbox.pending
        if not mailbox.wild:
            chan = channels.get((src, tag))
            if not chan:
                return None
            req = chan.popleft()
            if not chan:
                del channels[(src, tag)]
            return req
        best_seq = None
        best_pattern = None
        for pattern in (
            (src, tag),
            (src, ANY_TAG),
            (ANY_SOURCE, tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            chan = channels.get(pattern)
            if chan:
                seq = chan[0].seq
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best_pattern = pattern
        if best_pattern is None:
            return None
        chan = channels[best_pattern]
        req = chan.popleft()
        if best_pattern[0] == ANY_SOURCE or best_pattern[1] == ANY_TAG:
            mailbox.wild -= 1
        if not chan:
            # Drop drained channels: slow-path collectives mint a fresh tag
            # per call, so stale empty deques would otherwise accumulate
            # for the lifetime of a long protocol run.
            del channels[best_pattern]
        return req

    def _handle_recv_post(self, state: _RankState, op: PostRecv) -> RecvRequest:
        req = RecvRequest(state.rank, op.source, op.tag, op.comm_id)
        self._post_recv(state, req)
        return req

    def _post_recv(self, state: _RankState, req: RecvRequest) -> None:
        """Enter a receive into matching: serve it from the unexpected
        queue or park it (stamped) on its pending channel."""
        source = req.source
        tag = req.tag
        comm_id = req.comm_id
        if comm_id == 0:
            mailbox = self._world_mail[state.rank]
            if mailbox is None:
                mailbox = self._world_mail[state.rank] = _Mailbox()
        else:
            mailbox = self._mailboxes.get((comm_id, state.rank))
            if mailbox is None:
                mailbox = self._mailboxes[(comm_id, state.rank)] = _Mailbox()
        bucket = mailbox.unexpected
        if bucket:
            slot = self._match_unexpected(bucket, source, tag)
            if slot is not None:
                req.complete(slot)
                return
        pattern = (source, tag)
        channels = mailbox.pending
        chan = channels.get(pattern)
        if chan is None:
            chan = channels[pattern] = deque()
        if source == ANY_SOURCE or tag == ANY_TAG:
            mailbox.wild += 1
        req.seq = self._seq
        self._seq += 1
        chan.append(req)

    def _match_unexpected(self, bucket: dict, source: int, tag: int):
        """Earliest-arrived unexpected message slot matching a pattern.

        Exact patterns probe one channel deque; wildcard patterns scan the
        receiver's active channels and take the head slot with the smallest
        pool stamp — identical to scanning one arrival-ordered list.
        """
        if source != ANY_SOURCE and tag != ANY_TAG:
            chan = bucket.get((source, tag))
            if not chan:
                return None
            slot = chan.popleft()
            if not chan:
                del bucket[(source, tag)]
            return slot
        pool_seq = self.pool.seq
        best_seq = None
        best_key = None
        for (src, mtag), chan in bucket.items():
            if source != ANY_SOURCE and src != source:
                continue
            if tag != ANY_TAG and mtag != tag:
                continue
            seq = pool_seq[chan[0]]
            if best_seq is None or seq < best_seq:
                best_seq = seq
                best_key = (src, mtag)
        if best_key is None:
            return None
        chan = bucket[best_key]
        slot = chan.popleft()
        if not chan:
            del bucket[best_key]
        return slot

    # Plan entry codes: static send (immutable payload, args precomputed),
    # capturing send (payload snapshotted per start), receive re-arm.
    _PLAN_SEND_STATIC = 0
    _PLAN_SEND_CAPTURE = 1
    _PLAN_RECV = 2

    @classmethod
    def _compile_start_plan(cls, requests: Sequence[Request]) -> list:
        """Compile a persistent wave into posting-plan entries.

        Validation and attribute traversal happen here, once per op;
        steady-state starts then run a branch per entry with the send
        arguments already packed.
        """
        plan: list = []
        for req in requests:
            rcls = req.__class__
            if rcls is PersistentSendRequest:
                if req.capture:
                    plan.append((cls._PLAN_SEND_CAPTURE, req))
                else:
                    plan.append(
                        (
                            cls._PLAN_SEND_STATIC,
                            (
                                req.dest,
                                req.tag,
                                req.comm_id,
                                req.payload,
                                req.nbytes,
                                req.kind,
                            ),
                        )
                    )
            elif rcls is PersistentRecvRequest:
                plan.append((cls._PLAN_RECV, req))
            else:
                raise MatchingError(
                    f"start_all on non-persistent request {req!r}"
                )
        return plan

    def _handle_start_all(self, state: _RankState, op: StartAll) -> None:
        """Activate a persistent wave: post its sends and receives in list
        order (identical stamps to the equivalent per-message sequence)."""
        plan = op.plan
        if plan is None:
            plan = op.plan = self._compile_start_plan(op.requests)
        post_send = self._post_send
        post_recv = self._post_recv
        for code, data in plan:
            if code == 0:  # _PLAN_SEND_STATIC
                post_send(state, *data)
            elif code == 2:  # _PLAN_RECV
                if not data.done:
                    raise MatchingError(
                        f"rank {state.rank} restarted a persistent receive "
                        f"that is still in flight ({data.describe()})"
                    )
                if data.slot >= 0:
                    # Matched but never waited on: restarting would silently
                    # drop the delivered message and leak its pool slot.
                    raise MatchingError(
                        f"rank {state.rank} restarted a persistent receive "
                        f"whose completion was never waited on "
                        f"({data.describe()})"
                    )
                data.done = False
                data.slot = -1
                data.view = None
                post_recv(state, data)
            else:  # _PLAN_SEND_CAPTURE
                post_send(
                    state,
                    data.dest,
                    data.tag,
                    data.comm_id,
                    capture_payload(data.payload),
                    data.nbytes,
                    data.kind,
                )

    def _handle_collective(
        self, state: _RankState, op: CollectiveOp
    ) -> CollectiveRequest:
        key = (op.comm_id, op.tag)
        entry = self._pending_colls.get(key)
        if entry is None:
            group = self._groups.get(op.comm_id)
            if group is None:
                raise MatchingError(
                    f"rank {state.rank} entered fast collective {op.kind!r} "
                    f"on unregistered comm {op.comm_id}"
                )
            entry = self._pending_colls[key] = _PendingCollective(
                group, op.kind, op.root, op.trace_kind
            )
        elif entry.kind != op.kind or entry.root != op.root:
            raise MatchingError(
                f"rank {state.rank} joined collective {op.kind!r} (root "
                f"{op.root}) but tag {op.tag} gathers {entry.kind!r} (root "
                f"{entry.root})"
            )
        grank = self._group_rank[op.comm_id].get(state.rank)
        if grank is None:
            raise MatchingError(
                f"world rank {state.rank} is not a member of comm "
                f"{op.comm_id} (group {entry.group})"
            )
        if entry.requests[grank] is not None:
            raise MatchingError(
                f"rank {state.rank} entered collective tag {op.tag} twice"
            )
        req = CollectiveRequest(state.rank, op.kind, op.comm_id, op.tag)
        entry.values[grank] = op.value
        entry.op_fns[grank] = op.op
        entry.requests[grank] = req
        entry.count += 1
        if entry.count == len(entry.group):
            del self._pending_colls[key]
            self._complete_collective(entry)
        return req

    def _complete_collective(self, entry: _PendingCollective) -> None:
        """Compute a fully-gathered collective and wake its members.

        ``entry`` is indexed by group rank; clocks are gathered from (and
        written back to) the member ranks only, and the group's rank→world
        vector translates partners for the network model and tracer.
        """
        states = self._states
        group = entry.group
        size = len(group)
        clocks = np.fromiter(
            (states[w].ctx.clock for w in group), dtype=np.float64, count=size
        )
        results, new_clocks = _coll.execute_fast_collective(
            entry.kind,
            values=entry.values,
            op_fns=entry.op_fns,
            root=entry.root,
            trace_kind=entry.trace_kind,
            clocks=clocks,
            group=np.asarray(group, dtype=np.int64),
            network=self.network,
            tracer=self.tracer,
        )
        self.fast_collectives_run += 1
        new_times = new_clocks.tolist()
        for grank, req in enumerate(entry.requests):
            world = group[grank]
            states[world].ctx.clock = new_times[grank]
            req.result = results[grank]
            req.done = True
            if states[world].blocked_on is req:
                self._make_runnable(world)

    def _unblock_if_waiting(
        self, rank: int, request: Request, parent: Request | None = None
    ) -> None:
        state = self._states[rank]
        blocked = state.blocked_on
        # Leave blocked_on set: _step consumes it on resume so the pending
        # yield receives the completed request (or waitall results).
        # ``parent`` is the WaitAllRequest this completion just finished
        # (if any) — both conditions can fire at most once per request, so
        # a rank is never scheduled twice for one wait.
        if blocked is request or (parent is not None and blocked is parent):
            self._make_runnable(rank)

    def _price_pending_sends(self) -> None:
        """Price, trace and recycle the drained batch's send wave.

        Arrival times are ``pool.send_time[wave] + transfer_times(...)``,
        written back with a single fancy-indexed assignment — bit-identical
        to the scalar ``transfer_time`` path (same IEEE arithmetic; see
        :meth:`NetworkModel.transfer_times`). Slots consumed within their
        posting batch were priced scalar on demand; the flush simply
        overwrites them with the same value (their columns are untouched —
        consumed slots recycle *after* the flush, via the deferred-free
        list, precisely so wave entries always describe the wave's own
        messages). The tracer accumulates the wave from the same gathered
        columns in one ``record_many`` pass per message kind. Tiny waves
        skip the array machinery.
        """
        slots = self._wave_slots
        kinds = self._wave_kinds
        self._wave_slots = []
        self._wave_kinds = []
        pool = self.pool
        tracer = self.tracer
        if len(slots) <= 4:
            transfer_time = self.network.transfer_time
            arrival = pool.arrival
            for s in slots:
                if arrival[s] < 0.0:
                    arrival[s] = pool.send_time[s] + transfer_time(
                        int(pool.src[s]), int(pool.dst[s]), int(pool.nbytes[s])
                    )
            if tracer is not None:
                for s, kind in zip(slots, kinds):
                    tracer.record(
                        int(pool.src[s]),
                        int(pool.dst[s]),
                        int(pool.nbytes[s]),
                        kind=kind,
                    )
        elif slots:
            wave = np.array(slots, dtype=np.int64)
            srcs = pool.src[wave]
            dsts = pool.dst[wave]
            nbytes = pool.nbytes[wave]
            times = self.network.transfer_times(srcs, dsts, nbytes)
            pool.arrival[wave] = pool.send_time[wave] + times
            if tracer is not None:
                first = kinds[0]
                if all(k is first or k == first for k in kinds):
                    tracer.record_many(srcs, dsts, nbytes, kind=first)
                else:
                    by_kind: dict[str, list[int]] = {}
                    for i, k in enumerate(kinds):
                        by_kind.setdefault(k, []).append(i)
                    for kind, idx in by_kind.items():
                        tracer.record_many(
                            srcs[idx], dsts[idx], nbytes[idx], kind=kind
                        )
        deferred = self._deferred_free
        if deferred:
            self._deferred_free = []
            pool.free.extend(deferred)

    def _consume_recv(self, state: _RankState, request: RecvRequest) -> Any:
        """First wait on a completed receive: price, account time, build the
        view, recycle the slot. Idempotent — later waits reuse the view."""
        view = request.view
        if view is None:
            slot = request.slot
            if slot < 0:
                if request.__class__ is PersistentRecvRequest:
                    # Waiting on an inactive (never-started) persistent
                    # request is MPI's defined no-op: empty completion.
                    return None
                raise MatchingError("completed receive without a message")
            pool = self.pool
            src = int(pool.src[slot])
            nbytes = int(pool.nbytes[slot])
            arrival = float(pool.arrival[slot])
            if arrival < 0.0:
                # Consumed within its own posting batch: price this one
                # slot scalar; the wave flush overwrites it bit-identically.
                arrival = float(pool.send_time[slot]) + self.network.transfer_time(
                    src, int(pool.dst[slot]), nbytes
                )
                pool.arrival[slot] = arrival
            payload = pool.payload[slot]
            view = request.view = MessageView(
                src, int(pool.tag[slot]), nbytes, arrival, payload
            )
            request.slot = -1
            pool.payload[slot] = None
            pool.kind[slot] = None
            if self.use_batched_p2p:
                # The slot may still sit on the current pricing/tracing
                # wave: recycle it only after the wave flushes.
                self._deferred_free.append(slot)
            else:
                pool.free.append(slot)
            ctx = state.ctx
            if arrival > ctx.clock:
                ctx.clock = arrival
            if self.track_recv_counts:
                channel = (src, state.rank)
                self.recv_counts[channel] = self.recv_counts.get(channel, 0) + 1
            return payload
        return view.payload

    def _complete_wait(self, state: _RankState, request: Request) -> Any:
        """Account virtual time for a completed wait.

        Returns the request itself for single waits (``comm.wait`` reads
        the view off it) and the ordered per-child results for a
        :class:`WaitAllRequest` (payloads for receives, ``None`` for
        sends).
        """
        if request.__class__ is WaitAllRequest:
            consume = self._consume_recv
            return [
                consume(state, child) if isinstance(child, RecvRequest) else None
                for child in request.children
            ]
        if isinstance(request, RecvRequest):
            self._consume_recv(state, request)
        return request

    # -- introspection ---------------------------------------------------------

    @property
    def max_time(self) -> float:
        """Largest rank clock seen so far (the run's virtual makespan)."""
        if not self._states:
            return 0.0
        return max(s.ctx.clock for s in self._states)

    def rank_times(self) -> list[float]:
        """Per-rank final virtual clocks (after :meth:`run`)."""
        return [s.ctx.clock for s in self._states]


def run_program(
    program: RankProgram | Sequence[RankProgram],
    nranks: int,
    *,
    network: NetworkModel | None = None,
    tracer: TraceRecorder | None = None,
    use_fast_collectives: bool = True,
    use_batched_p2p: bool = True,
) -> list[Any]:
    """One-shot convenience wrapper: build an engine, run, return results."""
    engine = Engine(
        nranks,
        network=network,
        tracer=tracer,
        use_fast_collectives=use_fast_collectives,
        use_batched_p2p=use_batched_p2p,
    )
    return engine.run(program)


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveOp",
    "Engine",
    "PostRecv",
    "PostSend",
    "StartAll",
    "RankContext",
    "Wait",
    "WaitAll",
    "run_program",
    "nbytes_of",
]
