"""Message pool, requests and statuses for the simulated MPI runtime.

In-flight point-to-point messages live in a :class:`MessagePool` — a
struct-of-arrays store whose unit of currency is a *slot index* (a plain
``int``), not a per-message Python object. :class:`SendRequest` and
:class:`RecvRequest` mirror MPI's nonblocking handles, the persistent
variants mirror ``MPI_Send_init`` / ``MPI_Recv_init``, and :class:`Status`
mirrors ``MPI_Status`` (source / tag / message size).

Pool invariants
---------------
* a slot is *live* from the send post that allocates it until the matching
  receive's wait consumes it (or :meth:`MessagePool.reset` at the start of
  the next :meth:`Engine.run <repro.simmpi.engine.Engine.run>`);
* while live, the slot's columns (``src``/``dst``/``tag``/``comm_id``/
  ``nbytes``/``send_time``/``arrival``/``seq`` as parallel NumPy arrays,
  ``payload``/``kind`` as parallel lists) describe exactly one message;
* ``arrival[slot] < 0`` means *unpriced*: the engine's batched p2p path
  posts sends with the :data:`UNPRICED` sentinel and prices whole waves
  with one fancy-indexed assignment (see
  :meth:`Engine._price_pending_sends`);
* observers never hold raw slots. Anything that outlives the wait — a
  :class:`Status`, the payload handed back by ``comm.wait`` — is copied
  into an immutable :class:`MessageView` when the slot is consumed, so
  slot reuse can never corrupt completed receives.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any

import numpy as np

#: Wildcard source rank (mirrors ``MPI_ANY_SOURCE``).
ANY_SOURCE: int = -1
#: Wildcard tag (mirrors ``MPI_ANY_TAG``).
ANY_TAG: int = -1

#: Sentinel stored in ``MessagePool.arrival`` while a send awaits the
#: batched wave pricing (arrival times are physical, hence non-negative).
UNPRICED: float = -1.0

#: Posting-plan entry codes for compiled persistent waves (see
#: ``Engine._compile_start_plan``). A plan is a list of ``(code, data)``
#: pairs: static sends carry their packed ``(dest, tag, comm_id, payload,
#: nbytes, kind)`` argument tuple, capture sends and receives carry the
#: persistent request itself.
PLAN_SEND_STATIC: int = 0
PLAN_SEND_CAPTURE: int = 1
PLAN_RECV: int = 2


def static_wave_columns(plan: list) -> tuple | None:
    """Column-wise view of a compiled wave plan's static sends.

    Returns parallel lists ``(dests, tags, comm_ids, payloads, nbytes,
    kinds)`` — one row per :data:`PLAN_SEND_STATIC` entry, in posting
    order — or ``None`` if the plan contains any capture send (a captured
    payload is re-snapshotted per start, so its column is not static).
    Receive entries are skipped. The steady-state kernel compiler uses
    this to turn a participant's per-iteration send wave into fixed edge
    arrays instead of re-walking the plan every iteration.
    """
    dests: list[int] = []
    tags: list[int] = []
    comm_ids: list[int] = []
    payloads: list[Any] = []
    nbytes: list[int] = []
    kinds: list[str] = []
    for code, data in plan:
        if code == PLAN_SEND_CAPTURE:
            return None
        if code == PLAN_SEND_STATIC:
            dest, tag, comm_id, payload, size, kind = data
            dests.append(dest)
            tags.append(tag)
            comm_ids.append(comm_id)
            payloads.append(payload)
            nbytes.append(size)
            kinds.append(kind)
    return dests, tags, comm_ids, payloads, nbytes, kinds


def nbytes_of(payload: Any) -> int:
    """Best-effort on-the-wire size of ``payload`` in bytes.

    NumPy arrays report their buffer size, ``bytes``/``bytearray`` their
    length, ``None`` is zero (pure-synchronization message), and any other
    Python object falls back to ``sys.getsizeof`` — adequate for traces,
    since the applications we care about send arrays or explicit sizes.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, complex, np.generic)):
        return 8
    return int(sys.getsizeof(payload))


def payload_nbytes(obj: Any) -> int:
    """Wire size of ``obj``, descending into the containers collectives use."""
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    return nbytes_of(obj)


def capture_payload(obj: Any) -> Any:
    """Snapshot mutable payloads at send time (buffered-send semantics).

    NumPy arrays are copied so the sender may reuse its buffer immediately,
    mirroring what a buffered ``MPI_Send`` guarantees. Containers are
    shallow-copied with their array leaves copied.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, dict):
        return {k: capture_payload(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [capture_payload(v) for v in obj]
    if isinstance(obj, tuple):
        return tuple(capture_payload(v) for v in obj)
    return obj


def is_immutable_payload(obj: Any) -> bool:
    """Whether ``obj`` can be shared across receivers without capture.

    Immutable payloads (and containers of immutables) are indistinguishable
    from fresh copies, so the fast collective paths hand the same object to
    every receiver instead of capturing once per rank.
    """
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return True
    if isinstance(obj, (tuple, frozenset)):
        return all(is_immutable_payload(v) for v in obj)
    return False


class MessagePool:
    """Struct-of-arrays store for in-flight point-to-point messages.

    One pool per engine. A send allocates a slot (``post``), matching moves
    the slot index through the per-channel deques, and the receiving wait
    consumes it (``consume`` → :class:`MessageView`, slot returned to the
    free list). Numeric columns are parallel NumPy arrays so the batched
    p2p path can price a whole send wave with one fancy-indexed assignment
    and the tracer can accumulate a wave with one ``np.add.at`` pass;
    ``payload`` and ``kind`` stay Python lists (they hold arbitrary
    objects).

    The pool doubles its capacity when the free list runs dry; capacity is
    retained across :meth:`reset` so steady-state runs never reallocate.
    Pools pickle (the campaign runner ships engines' owners across a
    ``ProcessPoolExecutor``); unpickling restores every column verbatim.
    """

    __slots__ = (
        "capacity",
        "src",
        "dst",
        "tag",
        "comm_id",
        "nbytes",
        "send_time",
        "arrival",
        "seq",
        "payload",
        "kind",
        "free",
    )

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.src = np.zeros(capacity, dtype=np.int64)
        self.dst = np.zeros(capacity, dtype=np.int64)
        self.tag = np.zeros(capacity, dtype=np.int64)
        self.comm_id = np.zeros(capacity, dtype=np.int64)
        self.nbytes = np.zeros(capacity, dtype=np.int64)
        self.send_time = np.zeros(capacity, dtype=np.float64)
        self.arrival = np.zeros(capacity, dtype=np.float64)
        self.seq = np.zeros(capacity, dtype=np.int64)
        self.payload: list[Any] = [None] * capacity
        self.kind: list[str | None] = [None] * capacity
        # LIFO free list: hot slots are reused immediately, keeping the
        # touched region of every column small and cache-resident.
        self.free: list[int] = list(range(capacity - 1, -1, -1))

    # -- lifecycle ---------------------------------------------------------

    def post(
        self,
        src: int,
        dst: int,
        tag: int,
        comm_id: int,
        payload: Any,
        nbytes: int,
        send_time: float,
        arrival: float,
        seq: int,
        kind: str,
    ) -> int:
        """Allocate a slot for one posted send; returns the slot index.

        This is the canonical slot-allocation recipe. The engine's
        ``_post_send`` inlines exactly these writes on its hot path —
        change the two together.
        """
        free = self.free
        if not free:
            self._grow()
            free = self.free
        slot = free.pop()
        self.src[slot] = src
        self.dst[slot] = dst
        self.tag[slot] = tag
        self.comm_id[slot] = comm_id
        self.nbytes[slot] = nbytes
        self.send_time[slot] = send_time
        self.arrival[slot] = arrival
        self.seq[slot] = seq
        self.payload[slot] = payload
        self.kind[slot] = kind
        return slot

    def consume(self, slot: int) -> "MessageView":
        """Copy a slot out into a view; the caller recycles the slot.

        The engine recycles eagerly on the scalar path and *defers*
        recycling to the wave flush on the batched path, so a wave's slots
        always describe the wave's own messages when the flush gathers
        their columns for pricing and tracing. As with :meth:`post`, the
        engine's ``_consume_recv`` inlines this recipe on its hot path —
        change the two together.
        """
        view = MessageView(
            src=int(self.src[slot]),
            tag=int(self.tag[slot]),
            nbytes=int(self.nbytes[slot]),
            arrival_time=float(self.arrival[slot]),
            payload=self.payload[slot],
        )
        self.payload[slot] = None
        self.kind[slot] = None
        return view

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in (
            "src",
            "dst",
            "tag",
            "comm_id",
            "nbytes",
            "send_time",
            "arrival",
            "seq",
        ):
            column = getattr(self, name)
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            setattr(self, name, grown)
        self.payload.extend([None] * old)
        self.kind.extend([None] * old)
        self.free.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def reset(self) -> None:
        """Return every slot to the free list (start of a fresh run).

        Capacity is kept; payload references are dropped so a reset pool
        never pins application data from the previous run.
        """
        self.payload = [None] * self.capacity
        self.kind = [None] * self.capacity
        self.free = list(range(self.capacity - 1, -1, -1))

    @property
    def live_slots(self) -> int:
        """Slots currently holding an in-flight message."""
        return self.capacity - len(self.free)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessagePool(capacity={self.capacity}, live={self.live_slots})"


@dataclass(slots=True)
class MessageView:
    """Snapshot of one consumed message — treat as immutable.

    This is the only message shape observers ever see: pool slots are
    recycled once a wait consumes them, so everything downstream of a
    completed receive (``Status``, the returned payload, protocol
    receive-count accounting) reads from the view, never from the pool.
    (Not ``frozen=True``: per-field ``object.__setattr__`` would triple
    construction cost on the receive hot path.)
    """

    src: int
    tag: int
    nbytes: int
    arrival_time: float
    payload: Any


@dataclass(slots=True)
class Status:
    """Completion metadata for a receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Base class for nonblocking-operation handles."""

    __slots__ = ("done", "owner")

    def __init__(self, owner: int):
        self.done = False
        self.owner = owner  # world rank that posted the request

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class SendRequest(Request):
    """Handle for a posted send.

    The engine models sends as buffered: the payload is captured at post
    time, so a send request is complete the instant it is posted. The
    handle carries no per-message state — the message itself lives in the
    engine's :class:`MessagePool` — which lets the engine hand every send
    the same immortal :data:`COMPLETED_SEND` instance instead of allocating
    one handle per message on the hot path. Programs keep the standard
    post-then-waitall MPI style; waiting on a send is always a no-op.
    """

    __slots__ = ()

    def __init__(self, owner: int = -1):
        super().__init__(owner)
        self.done = True

    def describe(self) -> str:
        return "send (buffered, complete at post)"


#: The shared completed-send handle returned by every send post.
COMPLETED_SEND = SendRequest()


class RecvRequest(Request):
    """Handle for a posted receive; completed by the matching engine.

    Lifecycle: posted (``slot == -1``) → matched (``slot`` holds the
    message's pool slot) → consumed by the first wait (``view`` set, slot
    freed). ``seq`` is the posting-sequence stamp used for wildcard
    arbitration; ``parent`` links the request into an enclosing
    :class:`WaitAllRequest` while one is blocked on it.
    """

    __slots__ = ("source", "tag", "comm_id", "seq", "slot", "view", "parent")

    def __init__(self, owner: int, source: int, tag: int, comm_id: int):
        super().__init__(owner)
        self.source = source
        self.tag = tag
        self.comm_id = comm_id
        self.seq = -1
        self.slot = -1
        self.view: MessageView | None = None
        self.parent: WaitAllRequest | None = None

    def complete(self, slot: int) -> None:
        """Attach the matched message's pool slot and mark the request done."""
        self.slot = slot
        self.done = True
        parent = self.parent
        if parent is not None:
            self.parent = None
            parent.child_completed()

    def status(self) -> Status:
        """Status of the completed receive (raises if not yet consumed).

        Completion metadata lives in the pool until the consuming wait
        copies it into the request's view, so ``status()`` is defined
        *after* the wait — mirroring MPI, where a status is an output of
        ``MPI_Wait``/``MPI_Test``, never a later query on the request.
        Use ``wait_status``/``recv_status`` to get payload and status
        together.
        """
        view = self.view
        if view is None:
            raise RuntimeError("status() before the receive was waited on")
        return Status(view.src, view.tag, view.nbytes)

    def describe(self) -> str:
        src = "ANY" if self.source == ANY_SOURCE else str(self.source)
        tag = "ANY" if self.tag == ANY_TAG else str(self.tag)
        return f"recv from {src} (tag {tag}, comm {self.comm_id})"


class PersistentRecvRequest(RecvRequest):
    """A reusable receive handle (mirrors ``MPI_Recv_init``).

    Created inactive; each ``start_all`` re-arms it (engine resets ``slot``
    / ``view`` and re-enters it into matching). Re-arming is restart-safe:
    the engine refuses to restart a handle still in flight *or* one whose
    matched message was never drained (either restart would drop a
    delivered message and leak its pool slot) — under failure injection a
    dead rank's armed handles simply stay parked in its mailbox until the
    next run's reset, exactly like un-waited plain receives.
    """

    __slots__ = ()

    def __init__(self, owner: int, source: int, tag: int, comm_id: int):
        super().__init__(owner, source, tag, comm_id)
        self.done = True  # inactive until started

    def describe(self) -> str:
        return "persistent " + super().describe()


class PersistentSendRequest(Request):
    """A reusable buffered-send recipe (mirrors ``MPI_Send_init``).

    Stores the resolved world destination, tag, communicator, payload and
    byte count once; every ``start_all`` posts one fresh message from the
    recipe (snapshotting the payload per start, exactly like a buffered
    send). Always ``done`` — buffered sends complete at post.
    """

    __slots__ = ("dest", "tag", "comm_id", "payload", "nbytes", "kind", "capture")

    def __init__(
        self,
        owner: int,
        dest: int,
        tag: int,
        comm_id: int,
        payload: Any,
        nbytes: int,
        kind: str,
    ):
        super().__init__(owner)
        self.done = True
        self.dest = dest
        self.tag = tag
        self.comm_id = comm_id
        self.payload = payload
        self.nbytes = nbytes
        self.kind = kind
        # Immutable payloads are posted as-is on every start; mutable ones
        # are snapshotted per start (buffered-send semantics).
        self.capture = not is_immutable_payload(payload)

    def describe(self) -> str:
        return f"persistent send to {self.dest} (tag {self.tag}, {self.nbytes} B)"


class WaitAllRequest(Request):
    """Aggregate handle: done when every child request is done.

    Backs the engine's ``WaitAll`` op (one scheduler interaction for a
    whole wave of receives instead of one per message). Pending children
    point back here through ``parent`` so the last completion wakes the
    blocked rank.
    """

    __slots__ = ("children", "remaining")

    def __init__(self, owner: int, children: list[Request]):
        super().__init__(owner)
        self.children = children
        remaining = 0
        for child in children:
            # Skip duplicates (parent already points here): one completion
            # must satisfy every listed occurrence, as sequential waits did.
            if not child.done and child.parent is not self:
                child.parent = self  # only RecvRequests can be pending
                remaining += 1
        self.remaining = remaining
        self.done = remaining == 0

    def child_completed(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.done = True

    def describe(self) -> str:
        pending = [c.describe() for c in self.children if not c.done]
        shown = "; ".join(pending[:4])
        if len(pending) > 4:
            shown += f"; … {len(pending) - 4} more"
        return f"waitall ({self.remaining} pending: {shown})"


class CollectiveRequest(Request):
    """Handle for a fast-path collective; completed when all members arrive.

    The engine parks every participating rank on one of these while it
    gathers the remaining members; once the whole communicator has yielded
    its :class:`~repro.simmpi.engine.CollectiveOp`, the engine computes the
    collective in one vectorized pass, stores each rank's ``result`` here
    and wakes the blocked members.
    """

    __slots__ = ("kind", "comm_id", "tag", "result")

    def __init__(self, owner: int, kind: str, comm_id: int, tag: int):
        super().__init__(owner)
        self.kind = kind
        self.comm_id = comm_id
        self.tag = tag
        self.result: Any = None

    def describe(self) -> str:
        return f"collective {self.kind} (comm {self.comm_id}, tag {self.tag})"
