"""Messages, requests and statuses for the simulated MPI runtime.

A :class:`Message` is the unit moved by the engine; :class:`SendRequest` and
:class:`RecvRequest` mirror MPI's nonblocking handles; :class:`Status` mirrors
``MPI_Status`` (source / tag / message size).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any

import numpy as np

#: Wildcard source rank (mirrors ``MPI_ANY_SOURCE``).
ANY_SOURCE: int = -1
#: Wildcard tag (mirrors ``MPI_ANY_TAG``).
ANY_TAG: int = -1


def nbytes_of(payload: Any) -> int:
    """Best-effort on-the-wire size of ``payload`` in bytes.

    NumPy arrays report their buffer size, ``bytes``/``bytearray`` their
    length, ``None`` is zero (pure-synchronization message), and any other
    Python object falls back to ``sys.getsizeof`` — adequate for traces,
    since the applications we care about send arrays or explicit sizes.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, complex, np.generic)):
        return 8
    return int(sys.getsizeof(payload))


def payload_nbytes(obj: Any) -> int:
    """Wire size of ``obj``, descending into the containers collectives use."""
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    return nbytes_of(obj)


def capture_payload(obj: Any) -> Any:
    """Snapshot mutable payloads at send time (buffered-send semantics).

    NumPy arrays are copied so the sender may reuse its buffer immediately,
    mirroring what a buffered ``MPI_Send`` guarantees. Containers are
    shallow-copied with their array leaves copied.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, dict):
        return {k: capture_payload(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [capture_payload(v) for v in obj]
    if isinstance(obj, tuple):
        return tuple(capture_payload(v) for v in obj)
    return obj


def is_immutable_payload(obj: Any) -> bool:
    """Whether ``obj`` can be shared across receivers without capture.

    Immutable payloads (and containers of immutables) are indistinguishable
    from fresh copies, so the fast collective paths hand the same object to
    every receiver instead of capturing once per rank.
    """
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return True
    if isinstance(obj, (tuple, frozenset)):
        return all(is_immutable_payload(v) for v in obj)
    return False


@dataclass(slots=True)
class Message:
    """One in-flight message, addressed in *world* ranks.

    ``arrival_time`` may be ``None`` while the engine's batched p2p pricing
    has the message queued for a vectorized pass; it is always a float by
    the time any receive wait consumes it (the engine prices the whole
    pending wave on first use).
    """

    src: int
    dst: int
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    send_time: float
    arrival_time: float | None
    kind: str = "p2p"

    def matches(self, source: int, tag: int) -> bool:
        """Whether this message satisfies a recv posted for (source, tag)."""
        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )


@dataclass(slots=True)
class Status:
    """Completion metadata for a receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Base class for nonblocking-operation handles."""

    __slots__ = ("done", "owner")

    def __init__(self, owner: int):
        self.done = False
        self.owner = owner  # world rank that posted the request

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class SendRequest(Request):
    """Handle for a posted send.

    The engine models sends as buffered: the payload is captured at post
    time, so a send request is complete as soon as it is posted. The handle
    still exists so programs can be written in the standard
    post-then-waitall MPI style.
    """

    __slots__ = ("message",)

    def __init__(self, owner: int, message: Message):
        super().__init__(owner)
        self.message = message
        self.done = True

    def describe(self) -> str:
        m = self.message
        return f"send to {m.dst} (tag {m.tag}, {m.nbytes} B)"


class RecvRequest(Request):
    """Handle for a posted receive; completed by the matching engine."""

    __slots__ = ("source", "tag", "comm_id", "message")

    def __init__(self, owner: int, source: int, tag: int, comm_id: int):
        super().__init__(owner)
        self.source = source
        self.tag = tag
        self.comm_id = comm_id
        self.message: Message | None = None

    def complete(self, message: Message) -> None:
        """Attach the matched message and mark the request done."""
        self.message = message
        self.done = True

    def status(self) -> Status:
        """Status of the completed receive (raises if still pending)."""
        if self.message is None:
            raise RuntimeError("status() on incomplete receive")
        return Status(self.message.src, self.message.tag, self.message.nbytes)

    def describe(self) -> str:
        src = "ANY" if self.source == ANY_SOURCE else str(self.source)
        tag = "ANY" if self.tag == ANY_TAG else str(self.tag)
        return f"recv from {src} (tag {tag}, comm {self.comm_id})"


class CollectiveRequest(Request):
    """Handle for a fast-path collective; completed when all members arrive.

    The engine parks every participating rank on one of these while it
    gathers the remaining members; once the whole communicator has yielded
    its :class:`~repro.simmpi.engine.CollectiveOp`, the engine computes the
    collective in one vectorized pass, stores each rank's ``result`` here
    and wakes the blocked members.
    """

    __slots__ = ("kind", "comm_id", "tag", "result")

    def __init__(self, owner: int, kind: str, comm_id: int, tag: int):
        super().__init__(owner)
        self.kind = kind
        self.comm_id = comm_id
        self.tag = tag
        self.result: Any = None

    def describe(self) -> str:
        return f"collective {self.kind} (comm {self.comm_id}, tag {self.tag})"
