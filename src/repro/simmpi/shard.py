"""Sharded multi-process trace engine: conservative-window parallel DES.

The single-process :class:`~repro.simmpi.engine.Engine` runs the whole
world in one scheduler; this module partitions the simulated world into
per-shard subworlds and runs each in its own process, exchanging only
boundary messages, partial-collective gathers and clock frontiers at
window boundaries. The design exploits the engine's buffered-send
semantics: a send completes at post time and its arrival is priced from
the *sender's* clock, so a boundary message carries its own timing — no
clock-lookahead constraint is needed, and the conservative window is
simply "drain every shard until all owned ranks are blocked on external
input or finished, then exchange".

Equivalence with the single-process engine is exact, not approximate:

* **traces** are order-independent integer byte sums, recorded once per
  message (boundary p2p at the sending shard, collectives at the
  coordinator) — merging the per-shard recorders reproduces the dense
  matrices byte-for-byte;
* **clocks** depend only on the match assignment and on per-message
  arrival times. Arrivals are ``send_time + transfer_time(src, dst,
  nbytes)`` — the same scalar the single-process engine computes (its
  vectorized wave pricing is bit-identical to the scalar path by the
  :class:`~repro.simmpi.network.NetworkModel` contract). Match
  assignment is preserved because per-channel FIFO survives sharding
  (boundary messages are injected in a deterministic global order:
  origin shard ascending, outbox position ascending — i.e. posting
  order) and because wildcard receives stay *intra-shard* when the
  partition respects the workload's :meth:`~repro.apps.workload.Workload.
  shard_atoms` (an FTI node's ``ANY_SOURCE`` ready-gather and every
  candidate sender share an atom). The BSP drain order is just another
  legal MPI schedule; workloads whose observables are schedule-invariant
  (all in-tree workloads — the nightly interleaving sweep pins this)
  observe byte-identical traces and bit-identical clocks.

Cross-shard fast-path collectives decompose: a shard's partially-gathered
:class:`~repro.simmpi.engine._PendingCollective` never completes locally
(its count can't reach the group size), so at each window boundary the
shard exports the newly-arrived members' ``(group rank, value, op,
clock)`` contributions. The coordinator gathers them across shards and,
once a group is complete, runs the very same
:func:`~repro.simmpi.collectives.execute_fast_collective` the
single-process engine would — same results, same clock updates, same
trace records — then ships each member's ``(result, clock)`` back to its
owning shard. Slow-path (cascade) collectives need nothing special: they
are boundary p2p. ``Communicator.split`` works unchanged because every
member derives the identical plan from the identical (coordinator-
completed) allgather and id allocation walks colors in sorted order;
the one documented limitation is *concurrent* splits on disjoint
communicators, whose registration order — and hence comm ids — could
differ across shards.

Deadlock detection is global and free: every shard is fully drained
between windows, so if a round routes no boundary messages and completes
no collective while ranks remain unfinished, no future round can differ —
the coordinator gathers each shard's blocked descriptions, enriches
partially-gathered collectives with its *global* gather state (the shard
only sees its local members), and raises the same
:class:`~repro.simmpi.errors.DeadlockError` the single engine would.

``ShardedEngine(shards=1)`` exercises the full machinery (partition,
windows, merge) and degenerates to the single-process results exactly;
``workers=0`` runs every shard in-process over the identical protocol,
which is what makes worker-count invariance a tested property rather
than a hope.
"""

from __future__ import annotations

import gc
import math
import multiprocessing as mp
import pickle
import traceback
from typing import Any, Sequence

import numpy as np

from repro.simmpi import collectives as _coll
from repro.simmpi.config import EngineConfig
from repro.simmpi.engine import Engine
from repro.simmpi.errors import DeadlockError, MatchingError
from repro.simmpi.network import NetworkModel, zero_latency_network
from repro.simmpi.request import CollectiveRequest
from repro.simmpi.tracing import SparseTraceRecorder, TraceRecorder


# --------------------------------------------------------------------------
# Partitioner
# --------------------------------------------------------------------------


def partition_workload(workload, shards: int) -> list[tuple[int, ...]]:
    """Cut the workload's rank set into ``shards`` contiguous atom groups.

    Atoms (:meth:`~repro.apps.workload.Workload.shard_atoms`) are the
    workload's indivisible rank groups *in communication order*: grid
    workloads enumerate ranks row-major so contiguous runs are grid
    bands (the minimum-cut direction of a stencil), and the FTI world
    yields one atom per node block so every wildcard gather stays with
    its candidate senders. Cutting contiguous runs of atoms therefore
    cuts along the workload's comm graph; the split is balanced by rank
    count (greedy nearest-boundary) and fully deterministic.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    atoms = [tuple(a) for a in workload.shard_atoms()]
    nranks = workload.nranks
    flat = [r for atom in atoms for r in atom]
    if sorted(flat) != list(range(nranks)):
        raise ValueError(
            f"shard_atoms() must cover ranks 0..{nranks - 1} exactly once, "
            f"got {atoms}"
        )
    if shards > len(atoms):
        raise ValueError(
            f"cannot cut {len(atoms)} indivisible atom(s) into {shards} "
            f"shards (the workload's shard_atoms() bound parallelism)"
        )
    parts: list[tuple[int, ...]] = []
    at = 0
    consumed = 0
    for s in range(shards):
        remaining_shards = shards - s - 1
        target_end = (s + 1) * nranks / shards
        ranks: list[int] = list(atoms[at])
        consumed += len(atoms[at])
        at += 1
        while at < len(atoms) - remaining_shards:
            size = len(atoms[at])
            # Take the next atom only while it moves the boundary closer
            # to this shard's ideal cumulative rank count.
            if abs(consumed + size - target_end) > abs(consumed - target_end):
                break
            ranks.extend(atoms[at])
            consumed += size
            at += 1
        parts.append(tuple(ranks))
    return parts


# --------------------------------------------------------------------------
# Shard-side engine
# --------------------------------------------------------------------------


def _tracer_spec(tracer) -> tuple | None:
    """Describe a recorder so workers can build their own of the same shape."""
    if tracer is None:
        return None
    if isinstance(tracer, SparseTraceRecorder):
        return ("sparse", tracer.nranks, tracer.by_kind)
    if isinstance(tracer, TraceRecorder):
        return ("dense", tracer.nranks, tracer.by_kind)
    raise TypeError(
        f"sharded runs need a mergeable recorder (TraceRecorder or "
        f"SparseTraceRecorder), got {type(tracer).__name__}"
    )


def _tracer_from_spec(spec: tuple | None):
    if spec is None:
        return None
    shape, nranks, by_kind = spec
    cls = SparseTraceRecorder if shape == "sparse" else TraceRecorder
    return cls(nranks, by_kind=by_kind)


class ShardEngine(Engine):
    """An :class:`Engine` that owns a subset of the world's ranks.

    Owned ranks run exactly like in the single-process engine; a send to
    an external rank records its trace and parks on the outbox instead of
    entering local matching, and :meth:`inject_boundary` enters messages
    from other shards with their sender-side timing intact. The window
    loop around :meth:`~Engine._drain` lives in :class:`_ShardRunner`.
    """

    def __init__(
        self,
        nranks: int,
        owned_ranks: Sequence[int],
        *,
        config: EngineConfig | None = None,
        network: NetworkModel | None = None,
        tracer=None,
    ):
        super().__init__(nranks, config=config, network=network, tracer=tracer)
        self._owned = tuple(sorted(owned_ranks))
        self._owned_set = frozenset(self._owned)
        if not self._owned:
            raise ValueError("a shard must own at least one rank")
        bad = [r for r in self._owned if not 0 <= r < nranks]
        if bad:
            raise ValueError(f"owned ranks {bad} outside world of {nranks}")
        # Boundary sends accumulated during the current window, in posting
        # order: (src, dst, tag, comm_id, nbytes, send_time, payload, kind).
        self._outbox: list[tuple] = []
        # Group ranks already exported per pending cross-shard collective.
        self._coll_exported: dict[tuple[int, int], set[int]] = {}

    def _ranks_to_run(self) -> Sequence[int]:
        return self._owned

    def _setup_run(self, program, *, comm_factory=None) -> None:
        super()._setup_run(program, comm_factory=comm_factory)
        self._outbox = []
        self._coll_exported = {}

    def _post_send(self, state, dst, tag, comm_id, payload, nbytes, kind) -> None:
        if dst in self._owned_set:
            super()._post_send(state, dst, tag, comm_id, payload, nbytes, kind)
            return
        # Boundary send: buffered semantics make this complete-at-post just
        # like a local send. Record the trace here (the receiving shard
        # never records injected messages), stamp the posting sequence so
        # local ordering invariants hold, and carry the sender clock — the
        # receiving shard prices arrival from it with the same scalar
        # transfer_time the single-process engine uses.
        src = state.rank
        seq = self._seq
        self._seq = seq + 1
        if self.tracer is not None:
            self.tracer.record(src, dst, nbytes, kind=kind)
        if self.message_log is not None and self.message_log.wants(src, dst):
            self.message_log.record(src, dst, tag, payload, nbytes, kind)
        self._outbox.append(
            (src, dst, tag, comm_id, int(nbytes), state.ctx.clock, payload, kind)
        )

    def inject_boundary(self, messages: Sequence[tuple]) -> None:
        """Enter boundary messages from other shards into local matching.

        ``messages`` arrive in the deterministic global order the
        coordinator constructed (origin shard ascending, outbox position
        ascending); each gets a fresh pool slot, a receiver-side posting
        stamp in that order, and a scalar-priced arrival — then the
        engine's own :meth:`~Engine._deliver_slot` does matching,
        wildcard arbitration and wake-up exactly as for a local post.
        """
        pool = self.pool
        transfer_time = self.network.transfer_time
        for src, dst, tag, comm_id, nbytes, send_time, payload, kind in messages:
            seq = self._seq
            self._seq = seq + 1
            slot = pool.post(
                src,
                dst,
                tag,
                comm_id,
                payload,
                nbytes,
                send_time,
                send_time + transfer_time(src, dst, nbytes),
                seq,
                kind,
            )
            self._deliver_slot(src, dst, tag, comm_id, slot)

    # -- cross-shard collectives -------------------------------------------

    def export_partial_collectives(self) -> list[tuple]:
        """Incremental member contributions of cross-shard collectives.

        For every pending collective whose group has external members,
        export each locally-arrived member not exported in an earlier
        window: ``(key, (kind, root, trace_kind, group), [(group rank,
        value, op, clock), ...])``. A blocked member's clock is frozen
        until its result lands, so the clock exported at arrival is the
        clock :meth:`~Engine._complete_collective` would have read.
        """
        exports: list[tuple] = []
        owned = self._owned_set
        states = self._states
        for key, entry in self._pending_colls.items():
            if owned.issuperset(entry.group):
                continue  # purely local: completes (or deadlocks) here
            sent = self._coll_exported.setdefault(key, set())
            members = []
            for grank, req in enumerate(entry.requests):
                if req is not None and grank not in sent:
                    sent.add(grank)
                    world = entry.group[grank]
                    members.append(
                        (
                            grank,
                            entry.values[grank],
                            entry.op_fns[grank],
                            states[world].ctx.clock,
                        )
                    )
            if members:
                exports.append(
                    (key, (entry.kind, entry.root, entry.trace_kind, entry.group), members)
                )
        return exports

    def apply_collective_results(self, completions: Sequence[tuple]) -> None:
        """Apply coordinator-computed collective results to local members.

        ``completions`` is ``[(key, [(group rank, result, clock), ...])]``
        covering exactly this shard's members; the application mirrors
        :meth:`~Engine._complete_collective` line for line — set the
        member's clock, complete its request, wake it if it blocks on it.
        """
        states = self._states
        for key, members in completions:
            entry = self._pending_colls.pop(key, None)
            self._coll_exported.pop(key, None)
            if entry is None:
                raise MatchingError(
                    f"coordinator completed unknown collective {key}"
                )
            for grank, result, clock in members:
                req = entry.requests[grank]
                world = entry.group[grank]
                state = states[world]
                state.ctx.clock = clock
                req.result = result
                req.done = True
                if state.blocked_on is req:
                    self._make_runnable(world)

    # -- reporting ----------------------------------------------------------

    def clock_frontier(self) -> float:
        """Minimum clock over unfinished owned ranks (``inf`` when done)."""
        frontier = math.inf
        for rank in self._owned:
            state = self._states[rank]
            if state is not None and not state.finished:
                frontier = min(frontier, state.ctx.clock)
        return frontier

    def blocked_ranks(self) -> list[tuple[int, str, tuple | None]]:
        """Attribution input for the coordinator's global deadlock report.

        Per unfinished rank: ``(rank, description, collective key or
        None)``. Purely-local collectives get the engine's own enrichment
        (the local gather state is the whole truth); cross-shard ones
        return the raw description plus their key so the coordinator can
        attach the *global* gather state.
        """
        out = []
        for rank in self._owned:
            state = self._states[rank]
            if state is None or state.finished:
                continue
            request = state.blocked_on
            key = None
            if request is not None and request.__class__ is CollectiveRequest:
                entry = self._pending_colls.get((request.comm_id, request.tag))
                if entry is not None and not self._owned_set.issuperset(entry.group):
                    key = (request.comm_id, request.tag)
            if key is not None:
                desc = request.describe()
            else:
                desc = self._describe_blocked(state)
            out.append((rank, desc, key))
        return out


class _ShardRunner:
    """Drives one :class:`ShardEngine` through the window protocol."""

    def __init__(self, nranks, owned, config, network, tracer_spec, programs):
        self.engine = ShardEngine(
            nranks,
            owned,
            config=config,
            network=network,
            tracer=_tracer_from_spec(tracer_spec),
        )
        self.programs = programs

    def start(self) -> dict:
        eng = self.engine
        eng._setup_run(self.programs)
        return self._drain_and_report(eng._initial_batch())

    def window(self, injections, completions) -> dict:
        eng = self.engine
        eng.apply_collective_results(completions)
        eng.inject_boundary(injections)
        batch = eng._next_runnable
        batch.sort()
        eng._next_runnable = []
        eng._in_next = set()
        return self._drain_and_report(batch)

    def _drain_and_report(self, batch) -> dict:
        eng = self.engine
        resume_gc = gc.isenabled()
        if resume_gc:
            gc.disable()
        try:
            eng._drain(batch)
        finally:
            if resume_gc:
                gc.enable()
            if eng._wave_slots or eng._deferred_free:
                eng._price_pending_sends()
        outbox = eng._outbox
        eng._outbox = []
        return {
            "outbox": outbox,
            "colls": eng.export_partial_collectives(),
            "unfinished": eng._unfinished,
            "frontier": eng.clock_frontier(),
        }

    def describe(self) -> list[tuple]:
        return self.engine.blocked_ranks()

    def finish(self) -> dict:
        eng = self.engine
        return {
            "results": {
                r: eng._states[r].result for r in eng._owned
            },
            "clocks": {r: eng._states[r].ctx.clock for r in eng._owned},
            "tracer": eng.tracer,
            "counters": {
                "fast_collectives_run": eng.fast_collectives_run,
                "kernel_runs": eng.kernel_runs,
                "kernel_iterations": eng.kernel_iterations,
                "kernel_deopts": dict(eng.kernel_deopts),
            },
        }


# --------------------------------------------------------------------------
# Shard hosts: in-process or one worker process for several shards
# --------------------------------------------------------------------------


def _build_programs(workload, nranks: int, owned: Sequence[int]) -> list:
    """Instantiate only the owned ranks' programs (lazily per shard)."""
    programs: list = [None] * nranks
    for rank in owned:
        programs[rank] = workload.build_program(rank)
    return programs


class _InlineHost:
    """Runs its shards in-process (``workers=0``) over the same protocol."""

    def __init__(self):
        self.runners: dict[int, _ShardRunner] = {}

    def add_shard(self, sidx, nranks, owned, config, network, tracer_spec, workload):
        self.runners[sidx] = _ShardRunner(
            nranks,
            owned,
            config,
            network,
            tracer_spec,
            _build_programs(workload, nranks, owned),
        )

    def init(self) -> None:
        pass

    def start(self, sidxs) -> dict[int, dict]:
        return {s: self.runners[s].start() for s in sidxs}

    def window(self, work) -> dict[int, dict]:
        return {
            s: self.runners[s].window(inj, comp) for s, inj, comp in work
        }

    def describe(self, sidxs) -> dict[int, list]:
        return {s: self.runners[s].describe() for s in sidxs}

    def finish(self, sidxs) -> dict[int, dict]:
        return {s: self.runners[s].finish() for s in sidxs}

    def close(self) -> None:
        pass


def _worker_main(conn) -> None:
    """Worker-process loop: host several shard runners behind one pipe."""
    runners: dict[int, _ShardRunner] = {}
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "init":
                for sidx, nranks, owned, config, network, spec, workload in msg[1]:
                    runners[sidx] = _ShardRunner(
                        nranks,
                        owned,
                        config,
                        network,
                        spec,
                        _build_programs(workload, nranks, owned),
                    )
                conn.send(("ok", None))
            elif op == "start":
                conn.send(("ok", {s: runners[s].start() for s in msg[1]}))
            elif op == "window":
                conn.send(
                    ("ok", {s: runners[s].window(inj, comp) for s, inj, comp in msg[1]})
                )
            elif op == "describe":
                conn.send(("ok", {s: runners[s].describe() for s in msg[1]}))
            elif op == "finish":
                conn.send(("ok", {s: runners[s].finish() for s in msg[1]}))
            elif op == "stop":
                return
    except EOFError:
        return
    except BaseException as exc:
        # Forward the original exception when it pickles (so e.g. a
        # RankFailedError surfaces identically to the in-process path);
        # fall back to the formatted traceback otherwise.
        try:
            payload = pickle.dumps(exc)
            conn.send(("raise", payload))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class _ProcessHost:
    """One worker process hosting several shards behind a duplex pipe."""

    def __init__(self):
        self._payloads: list[tuple] = []
        self._proc = None
        self._conn = None

    def add_shard(self, sidx, nranks, owned, config, network, tracer_spec, workload):
        self._payloads.append(
            (sidx, nranks, owned, config, network, tracer_spec, workload)
        )

    def init(self) -> None:
        ctx = mp.get_context()
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
        self._proc.start()
        child.close()
        self._request(("init", self._payloads))
        self._payloads = []

    def _request(self, msg):
        self._conn.send(msg)
        status, payload = self._conn.recv()
        if status == "raise":
            raise pickle.loads(payload)
        if status == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def start(self, sidxs) -> dict[int, dict]:
        return self._request(("start", list(sidxs)))

    def window(self, work) -> dict[int, dict]:
        return self._request(("window", list(work)))

    def describe(self, sidxs) -> dict[int, list]:
        return self._request(("describe", list(sidxs)))

    def finish(self, sidxs) -> dict[int, dict]:
        return self._request(("finish", list(sidxs)))

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            self._proc.join(timeout=5)
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc = None


# --------------------------------------------------------------------------
# Coordinator
# --------------------------------------------------------------------------


class _GlobalColl:
    """Coordinator-side gathering state of one cross-shard collective."""

    __slots__ = (
        "kind",
        "root",
        "trace_kind",
        "group",
        "grank_of",
        "values",
        "op_fns",
        "clocks",
        "gathered",
    )

    def __init__(self, header):
        kind, root, trace_kind, group = header
        size = len(group)
        self.kind = kind
        self.root = root
        self.trace_kind = trace_kind
        self.group = tuple(group)
        self.grank_of = {w: g for g, w in enumerate(self.group)}
        self.values: list[Any] = [None] * size
        self.op_fns: list = [None] * size
        self.clocks = np.zeros(size, dtype=np.float64)
        self.gathered: set[int] = set()  # group ranks exported so far

    def missing_members(self) -> list[int]:
        """World ranks of members no shard has exported yet."""
        return [
            w for g, w in enumerate(self.group) if g not in self.gathered
        ]


class ShardedEngine:
    """Run a :class:`~repro.apps.workload.Workload` across shard subworlds.

    Parameters
    ----------
    shards:
        Number of subworlds. ``shards=1`` exercises the full machinery
        (partition, window protocol, trace merge) and reproduces the
        single-process engine's results exactly.
    workers:
        Worker processes. ``0`` runs every shard in-process (the default,
        and the only mode that accepts non-picklable
        :class:`~repro.apps.workload.ProgramsWorkload` closures);
        ``N >= 1`` spawns ``min(N, shards)`` long-lived processes and
        distributes shards round-robin. Results are invariant to the
        worker count: the window protocol is identical either way.
    config:
        The shared :class:`~repro.simmpi.config.EngineConfig`, replicated
        onto every shard. Interleaving exploration is single-process-only
        and is rejected here.
    network / tracer:
        As on :class:`~repro.simmpi.engine.Engine`. The tracer must be a
        mergeable recorder (:class:`~repro.simmpi.tracing.TraceRecorder`
        or :class:`~repro.simmpi.tracing.SparseTraceRecorder`); shards
        record their own traffic and the merge lands on this instance.
    """

    def __init__(
        self,
        shards: int,
        *,
        workers: int = 0,
        config: EngineConfig | None = None,
        network: NetworkModel | None = None,
        tracer=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        config = config if config is not None else EngineConfig()
        if config.schedule_seed is not None or config.schedule_trace is not None:
            raise ValueError(
                "interleaving exploration (schedule_seed/schedule_trace) is "
                "single-process only; run it on Engine directly"
            )
        self.shards = shards
        self.workers = workers
        self.config = config
        self.network = network if network is not None else zero_latency_network()
        self.tracer = tracer
        self.partitions: list[tuple[int, ...]] | None = None
        self.windows_run = 0
        self.fast_collectives_run = 0
        self.kernel_runs = 0
        self.kernel_iterations = 0
        self.kernel_deopts: dict[str, int] = {}
        self._rank_times: list[float] = []

    def run(self, workload) -> list[Any]:
        """Execute the workload; return per-rank results in world order."""
        from repro.apps.workload import Workload

        if not isinstance(workload, Workload):
            raise TypeError(
                f"ShardedEngine.run needs a Workload (got "
                f"{type(workload).__name__}); wrap explicit programs in "
                f"repro.apps.workload.ProgramsWorkload (workers=0 only)"
            )
        nranks = workload.nranks
        if self.tracer is not None and self.tracer.nranks != nranks:
            raise ValueError(
                f"tracer covers {self.tracer.nranks} ranks but the workload "
                f"has {nranks}"
            )
        parts = partition_workload(workload, self.shards)
        self.partitions = parts
        rank_shard = {}
        for sidx, ranks in enumerate(parts):
            for r in ranks:
                rank_shard[r] = sidx
        spec = _tracer_spec(self.tracer)

        if self.workers:
            try:
                pickle.dumps((workload, self.config, self.network))
            except Exception as exc:
                raise TypeError(
                    "multi-process sharding ships the workload, config and "
                    "network to workers by pickling; use a picklable "
                    "Workload adapter (or workers=0 for in-process shards): "
                    f"{exc}"
                ) from exc
            hosts = [_ProcessHost() for _ in range(min(self.workers, len(parts)))]
        else:
            hosts = [_InlineHost()]
        host_of = {}
        for sidx, ranks in enumerate(parts):
            host = hosts[sidx % len(hosts)]
            host.add_shard(
                sidx, nranks, ranks, self.config, self.network, spec, workload
            )
            host_of[sidx] = host
        shards_of: dict[Any, list[int]] = {}
        for sidx in range(len(parts)):
            shards_of.setdefault(host_of[sidx], []).append(sidx)

        # The coordinator's own recorder books completed cross-shard
        # collectives (execute_fast_collective's record_many), exactly as
        # the single-process engine's tracer would have.
        coll_tracer = _tracer_from_spec(spec)
        global_colls: dict[tuple[int, int], _GlobalColl] = {}
        self.windows_run = 0

        try:
            for host in hosts:
                host.init()
            reports: dict[int, dict] = {}
            for host in hosts:
                reports.update(host.start(shards_of[host]))
            unfinished = {s: reports[s]["unfinished"] for s in reports}

            while sum(unfinished.values()):
                injections: dict[int, list] = {}
                completions: dict[int, list] = {}
                # Boundary routing in deterministic global order: origin
                # shard ascending, outbox position ascending — posting
                # order, which preserves per-channel FIFO at the receiver.
                for sidx in sorted(reports):
                    for message in reports[sidx]["outbox"]:
                        dest = rank_shard[message[1]]
                        injections.setdefault(dest, []).append(message)
                    for key, header, members in reports[sidx]["colls"]:
                        entry = global_colls.get(key)
                        if entry is None:
                            entry = global_colls[key] = _GlobalColl(header)
                        elif (
                            entry.kind != header[0]
                            or entry.root != header[1]
                            or entry.group != tuple(header[3])
                        ):
                            raise MatchingError(
                                f"collective {key} gathered with inconsistent "
                                f"shape across shards"
                            )
                        for grank, value, op_fn, clock in members:
                            if grank in entry.gathered:
                                raise MatchingError(
                                    f"collective {key} member {grank} "
                                    f"exported twice"
                                )
                            entry.values[grank] = value
                            entry.op_fns[grank] = op_fn
                            entry.clocks[grank] = clock
                            entry.gathered.add(grank)
                for key in [
                    k
                    for k, e in global_colls.items()
                    if len(e.gathered) == len(e.group)
                ]:
                    entry = global_colls.pop(key)
                    results, new_clocks = _coll.execute_fast_collective(
                        entry.kind,
                        values=entry.values,
                        op_fns=entry.op_fns,
                        root=entry.root,
                        trace_kind=entry.trace_kind,
                        clocks=entry.clocks,
                        group=np.asarray(entry.group, dtype=np.int64),
                        network=self.network,
                        tracer=coll_tracer,
                    )
                    self.fast_collectives_run += 1
                    new_times = new_clocks.tolist()
                    for grank, world in enumerate(entry.group):
                        completions.setdefault(rank_shard[world], []).append(
                            (key, grank, results[grank], new_times[grank])
                        )

                touched = sorted(set(injections) | set(completions))
                if not touched:
                    raise self._global_deadlock(
                        hosts, shards_of, unfinished, global_colls, rank_shard
                    )
                work: dict[Any, list] = {}
                for sidx in touched:
                    per_key: dict[tuple, list] = {}
                    for key, grank, result, clock in completions.get(sidx, []):
                        per_key.setdefault(key, []).append((grank, result, clock))
                    work.setdefault(host_of[sidx], []).append(
                        (sidx, injections.get(sidx, []), list(per_key.items()))
                    )
                self.windows_run += 1
                reports = {}
                for host, batch in work.items():
                    reports.update(host.window(batch))
                for sidx in reports:
                    unfinished[sidx] = reports[sidx]["unfinished"]

            finishes: dict[int, dict] = {}
            for host in hosts:
                finishes.update(host.finish(shards_of[host]))
        finally:
            for host in hosts:
                host.close()

        results: list[Any] = [None] * nranks
        clocks: list[float] = [0.0] * nranks
        for sidx, payload in finishes.items():
            for rank, value in payload["results"].items():
                results[rank] = value
            for rank, clock in payload["clocks"].items():
                clocks[rank] = clock
            if self.tracer is not None and payload["tracer"] is not None:
                self.tracer.merge(payload["tracer"])
            counters = payload["counters"]
            self.fast_collectives_run += counters["fast_collectives_run"]
            self.kernel_runs += counters["kernel_runs"]
            self.kernel_iterations += counters["kernel_iterations"]
            for reason, n in counters["kernel_deopts"].items():
                self.kernel_deopts[reason] = self.kernel_deopts.get(reason, 0) + n
        if self.tracer is not None and coll_tracer is not None:
            self.tracer.merge(coll_tracer)
        self._rank_times = clocks
        return results

    def rank_times(self) -> list[float]:
        """Per-rank final virtual clocks, in world order (after :meth:`run`)."""
        return list(self._rank_times)

    def _global_deadlock(self, hosts, shards_of, unfinished, global_colls, rank_shard):
        """Merge per-shard blocked descriptions into one DeadlockError.

        Cross-shard collectives get the coordinator's global gather state
        (the shard only sees local arrivals): same format as the single
        engine's attribution — group rank, gathered count, missing world
        ranks.
        """
        blocked: dict[int, str] = {}
        for host in hosts:
            stuck = [s for s in shards_of[host] if unfinished[s]]
            if not stuck:
                continue
            for sidx, entries in host.describe(stuck).items():
                for rank, desc, key in entries:
                    if key is not None:
                        entry = global_colls.get(key)
                        if entry is not None:
                            group = entry.group
                            missing = entry.missing_members()
                            shown = ", ".join(map(str, missing[:8]))
                            if len(missing) > 8:
                                shown += f", … {len(missing) - 8} more"
                            grank = entry.grank_of.get(rank)
                            desc += (
                                f" — group rank {grank}/{len(group)}, "
                                f"gathered {len(entry.gathered)}/"
                                f"{len(group)}, missing world rank(s) "
                                f"[{shown}]"
                            )
                    blocked[rank] = desc
        return DeadlockError(blocked)


__all__ = [
    "ShardEngine",
    "ShardedEngine",
    "partition_workload",
]
