"""Communicator: the mpi4py-flavoured user API of the simulated runtime.

A :class:`Communicator` is a view over a subset of world ranks (its
*group*). Point-to-point calls address *local* ranks within the group and
are translated to world ranks before reaching the engine, exactly like MPI
communicators. All communication methods are generator coroutines and must
be invoked with ``yield from`` inside a rank program::

    def program(ctx):
        comm = ctx.comm                        # world communicator
        row = yield from comm.split(color=ctx.rank // 4)
        total = yield from row.allreduce(ctx.rank)
        return total

Steady-state point-to-point patterns can additionally use the persistent
API (:meth:`Communicator.send_init` / :meth:`Communicator.recv_init` /
:meth:`Communicator.start_all` / :meth:`Communicator.waitall`, mirroring
``MPI_Send_init`` / ``MPI_Startall`` / ``MPI_Waitall``): a fixed wave of
requests is described once and re-posted each iteration through a single
engine interaction, with matching, pricing, traces and clocks identical to
the equivalent ``isend``/``irecv``/``wait`` sequence.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.simmpi import collectives as coll
from repro.simmpi.engine import (
    CollectiveOp,
    PostRecv,
    PostSend,
    RankContext,
    StartAll,
    Wait,
    WaitAll,
)
from repro.simmpi.errors import CommunicatorError
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    PersistentRecvRequest,
    PersistentSendRequest,
    RecvRequest,
    Request,
    Status,
    capture_payload as _capture,
    payload_nbytes as _payload_nbytes,
)

#: Base of the internal tag space used by collectives. User tags must stay
#: below this value; :meth:`Communicator.send` enforces it.
COLL_TAG_BASE: int = 1 << 30
_COLL_TAG_MOD: int = 1 << 20


class Communicator:
    """A group of ranks with isolated point-to-point matching.

    Instances are created through :meth:`world` (by the engine) and
    :meth:`split`; application code never constructs one directly.
    """

    #: Whether the persistent-request wave API (``send_init`` /
    #: ``recv_init`` / ``start_all`` / ``waitall``) is available on this
    #: communicator. Wave-native applications check this before compiling
    #: their steady-state waves; the HydEE replay communicator overrides it
    #: to ``False`` so replay windows transparently fall back to the
    #: per-message exchange (whose messages are what the log serves).
    supports_waves: bool = True

    def __init__(self, ctx: RankContext, comm_id: int, group: Sequence[int]):
        self.ctx = ctx
        self.comm_id = comm_id
        self.group = tuple(group)
        try:
            self.rank = self.group.index(ctx.rank)
        except ValueError:
            raise CommunicatorError(
                f"world rank {ctx.rank} is not a member of group {group}"
            ) from None
        self.size = len(self.group)
        self._coll_seq = 0
        self._split_seq = 0
        self._group_ok: bool | None = None  # cached fast-path membership check
        self._start_ops: dict[int, StartAll] = {}  # start_all's op cache

    # -- construction -------------------------------------------------------

    @classmethod
    def world(cls, ctx: RankContext) -> "Communicator":
        """The world communicator covering every rank (comm id 0).

        The membership tuple is engine-cached: every rank's world
        communicator shares one ``(0, 1, …, nranks-1)`` tuple instead of
        building an O(nranks) tuple per rank.
        """
        engine = ctx.engine
        group = engine._groups[0]
        return cls(ctx, 0, group)

    # -- helpers -------------------------------------------------------------

    def _world_rank(self, local: int) -> int:
        if not 0 <= local < self.size:
            raise CommunicatorError(
                f"rank {local} out of range for communicator of size {self.size}"
            )
        return self.group[local]

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(
                f"root {root} out of range for communicator of size {self.size}"
            )

    def _next_coll_tag(self) -> int:
        tag = COLL_TAG_BASE + (self._coll_seq % _COLL_TAG_MOD)
        self._coll_seq += 1
        return tag

    # -- point-to-point -------------------------------------------------------

    def isend(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        *,
        nbytes: int | None = None,
        kind: str = "p2p",
    ):
        """Nonblocking send; returns a :class:`SendRequest`.

        ``nbytes`` overrides the payload's measured size — pass it with
        ``obj=None`` for synthetic (metadata-only) traffic.
        """
        if tag < 0:
            raise CommunicatorError(f"send tags must be non-negative, got {tag}")
        size = nbytes if nbytes is not None else _payload_nbytes(obj)
        req = yield PostSend(
            dest=self._world_rank(dest),
            tag=tag,
            comm_id=self.comm_id,
            payload=_capture(obj),
            nbytes=int(size),
            kind=kind,
        )
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking receive; returns a :class:`RecvRequest`."""
        world_source = source if source == ANY_SOURCE else self._world_rank(source)
        req = yield PostRecv(source=world_source, tag=tag, comm_id=self.comm_id)
        return req

    def wait(self, request: Request):
        """Wait for one request; returns the payload for receives.

        Waiting on an inactive (never-started) persistent receive is MPI's
        defined no-op and returns ``None``.
        """
        completed = yield Wait(request)
        if isinstance(completed, RecvRequest):
            view = completed.view
            return None if view is None else view.payload
        return None

    def wait_status(self, request: RecvRequest):
        """Wait for a receive; returns ``(payload, Status)``.

        An inactive persistent receive completes immediately with MPI's
        *empty status* (``ANY_SOURCE``, ``ANY_TAG``, zero bytes).
        """
        completed = yield Wait(request)
        if not isinstance(completed, RecvRequest):
            raise CommunicatorError("wait_status() requires a receive request")
        view = completed.view
        if view is None:
            return None, Status(ANY_SOURCE, ANY_TAG, 0)
        return view.payload, completed.status()

    @staticmethod
    def test(request: Request) -> bool:
        """Nonblocking completion check (mirrors ``MPI_Test``).

        Plain method, not a coroutine: posting and matching happen eagerly
        in this engine, so completion state is always current.
        """
        return request.done

    def waitall(self, requests: Sequence[Request]):
        """Wait for every request; returns per-request results in order.

        One engine interaction for the whole set (a single ``WaitAll`` op),
        not one wait per request: the rank blocks until the last request
        completes and receives the ordered payload list (``None`` for
        sends) in one resume. Time accounting is identical to sequential
        waits — each receive still advances the clock to its own arrival.
        """
        results = yield WaitAll(list(requests))
        return results

    # -- persistent requests (MPI_Send_init / MPI_Recv_init shape) -----------

    def send_init(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        *,
        nbytes: int | None = None,
        kind: str = "p2p",
    ) -> PersistentSendRequest:
        """Build a reusable buffered-send recipe (plain method, no yield).

        Each :meth:`start_all` posts one fresh message from the recipe —
        same matching, pricing and tracing as the equivalent
        :meth:`isend`. Mutable payloads are snapshotted per start.
        """
        if tag < 0:
            raise CommunicatorError(f"send tags must be non-negative, got {tag}")
        size = nbytes if nbytes is not None else _payload_nbytes(obj)
        return PersistentSendRequest(
            self.ctx.rank,
            self._world_rank(dest),
            tag,
            self.comm_id,
            obj,
            int(size),
            kind,
        )

    def recv_init(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> PersistentRecvRequest:
        """Build a reusable receive handle (plain method, no yield)."""
        world_source = source if source == ANY_SOURCE else self._world_rank(source)
        return PersistentRecvRequest(
            self.ctx.rank, world_source, tag, self.comm_id
        )

    def start_all(self, requests: Sequence[Request]):
        """Activate a wave of persistent requests in list order.

        One engine interaction posts the whole wave; interleave sends and
        receives in the list exactly as the per-message program would post
        them and the posting-sequence stamps (hence matching, traces and
        clocks) come out identical. Pass the *same tuple(s)* every
        iteration and the engine's compiled posting plans are reused (each
        cached op holds a strong reference to its tuple, so the identity
        check is sound); fresh sequences recompile per call.
        """
        if requests.__class__ is not tuple:
            requests = tuple(requests)
        cache = self._start_ops
        op = cache.get(id(requests))
        if op is None or op.requests is not requests:
            if len(cache) >= 16:
                # A program minting fresh tuples every call gains nothing
                # from caching; keep the table bounded.
                cache.clear()
            op = cache[id(requests)] = StartAll(requests)
        yield op

    def start(self, request: Request):
        """Activate one persistent request (mirrors ``MPI_Start``)."""
        yield StartAll((request,))

    # -- reusable op builders (zero-overhead steady-state waves) -------------

    def start_all_op(self, requests: Sequence[Request]) -> StartAll:
        """Prebuild a reusable ``StartAll`` op for a fixed wave.

        Ops are immutable descriptions, so a steady-state program can build
        one per wave outside its loop and ``yield`` the same object every
        iteration — the leanest possible posting path (no subgenerator, no
        per-iteration allocation)::

            start = comm.start_all_op(wave)
            drain = comm.waitall_op(recvs)
            for _ in range(iterations):
                yield start
                payloads = yield drain
        """
        return StartAll(tuple(requests))

    def waitall_op(self, requests: Sequence[Request]) -> WaitAll:
        """Prebuild a reusable ``WaitAll`` op (see :meth:`start_all_op`);
        yielding it returns the ordered payload list."""
        return WaitAll(tuple(requests))

    def collective_windows_ok(self) -> bool:
        """Whether prebuilt collective ops may be attached to a
        :class:`~repro.simmpi.engine.KernelLoop` window this run.

        True exactly when this communicator's collectives take the
        engine's vectorized fast path (size > 1, registered group, no
        per-message observers, plain :class:`Communicator`). When false,
        apps must fall back to ``yield from`` collectives *after* the
        loop — the generator cascade needs real per-message posting that a
        window cannot replicate.
        """
        return self.size > 1 and self._fast_collective_ok()

    def allreduce_op(self, value: Any, op: Callable = coll.sum_op) -> CollectiveOp:
        """Prebuild an allreduce op for a :class:`KernelLoop` window.

        Consumes exactly the tags the equivalent ``yield from
        comm.allreduce(value, op)`` fast path would (two on non-power-of-
        two groups, whose cascade runs reduce-then-bcast), so a program
        switching between the kernelized and per-iteration paths keeps
        every later collective's tags — and hence traces and clocks —
        aligned. Only legal while :meth:`collective_windows_ok` holds.
        """
        if not self.collective_windows_ok():
            raise CommunicatorError(
                "allreduce_op needs the vectorized collective path "
                "(collective_windows_ok() is false)"
            )
        tag = self._next_coll_tag()
        if not coll._is_pow2(self.size):
            self._next_coll_tag()
        return self._collective_op("allreduce", tag, value, op=op)

    def send(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        *,
        nbytes: int | None = None,
        kind: str = "p2p",
    ):
        """Blocking (buffered) send."""
        req = yield from self.isend(obj, dest, tag, nbytes=nbytes, kind=kind)
        yield from self.wait(req)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        req = yield from self.irecv(source, tag)
        return (yield from self.wait(req))

    def recv_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns ``(payload, Status)``."""
        req = yield from self.irecv(source, tag)
        return (yield from self.wait_status(req))

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        *,
        nbytes: int | None = None,
        kind: str = "p2p",
    ):
        """Combined send+receive (deadlock-free); returns the received payload."""
        sreq = yield from self.isend(sendobj, dest, sendtag, nbytes=nbytes, kind=kind)
        rreq = yield from self.irecv(source, recvtag)
        payload = yield from self.wait(rreq)
        yield from self.wait(sreq)
        return payload

    # -- collectives ------------------------------------------------------------

    def _fast_collective_ok(self) -> bool:
        """Whether this collective may take the engine's vectorized path.

        Restricted to plain :class:`Communicator` instances (subclasses —
        e.g. the HydEE replay communicator — always run the generator
        cascade) whose membership is registered with the engine (the world
        communicator and everything created by :meth:`split`), and gated on
        the engine's per-run eligibility (no message log, no receive
        counting, no failure injection, fast paths enabled).
        """
        engine = self.ctx.engine
        ok = self._group_ok
        if ok is None:
            # Group registrations are immutable (the engine rejects
            # remapping a comm id), so the membership verdict is computed
            # once per communicator instance.
            ok = self._group_ok = (
                self.__class__ is Communicator
                and engine.group_of(self.comm_id) == self.group
            )
        return engine._fast_coll_active and ok

    def _collective_op(self, kind, tag, value, root=0, op=None, trace_kind=None):
        return CollectiveOp(
            kind=kind,
            comm_id=self.comm_id,
            tag=tag,
            value=value,
            root=root,
            op=op,
            trace_kind=kind if trace_kind is None else trace_kind,
        )

    def barrier(self):
        """Dissemination barrier across the group."""
        if self._fast_collective_ok():
            tag = self._next_coll_tag()
            if self.size == 1:
                return None
            return (yield self._collective_op("barrier", tag, None))
        return (yield from coll.barrier(self))

    def bcast(self, obj: Any, root: int = 0):
        """Binomial-tree broadcast; returns the object on every rank."""
        if self._fast_collective_ok():
            self._check_root(root)
            tag = self._next_coll_tag()
            if self.size == 1:
                return obj
            return (yield self._collective_op("bcast", tag, obj, root=root))
        return (yield from coll.bcast(self, obj, root))

    def reduce(self, value: Any, op: Callable = coll.sum_op, root: int = 0):
        """Tree reduction; result on root, ``None`` elsewhere."""
        if self._fast_collective_ok():
            self._check_root(root)
            tag = self._next_coll_tag()
            if self.size == 1:
                return value
            return (yield self._collective_op("reduce", tag, value, root=root, op=op))
        return (yield from coll.reduce(self, value, op, root))

    def allreduce(self, value: Any, op: Callable = coll.sum_op):
        """All-reduce (recursive doubling / reduce+bcast)."""
        if self._fast_collective_ok():
            if self.size == 1:
                return value
            tag = self._next_coll_tag()
            if not coll._is_pow2(self.size):
                # The cascade runs reduce-then-bcast, consuming two tags.
                self._next_coll_tag()
            return (yield self._collective_op("allreduce", tag, value, op=op))
        return (yield from coll.allreduce(self, value, op))

    def gather(self, value: Any, root: int = 0):
        """Gather to root; rank-ordered list on root, ``None`` elsewhere."""
        return (yield from coll.gather(self, value, root))

    def scatter(self, values: list | None, root: int = 0):
        """Scatter from root; returns this rank's element."""
        return (yield from coll.scatter(self, values, root))

    def allgather(self, value: Any):
        """All-gather (recursive doubling / Bruck); rank-ordered list."""
        if self._fast_collective_ok():
            if self.size == 1:
                return [value]
            tag = self._next_coll_tag()
            return (yield self._collective_op("allgather", tag, value))
        return (yield from coll.allgather(self, value))

    def alltoall(self, values: list):
        """Pairwise-exchange all-to-all."""
        if self._fast_collective_ok():
            if len(values) != self.size:
                raise ValueError(
                    f"alltoall needs {self.size} values, got {len(values)}"
                )
            tag = self._next_coll_tag()
            if self.size == 1:
                return [values[0]]
            return (yield self._collective_op("alltoall", tag, values))
        return (yield from coll.alltoall(self, values))

    def scan(self, value: Any, op: Callable = coll.sum_op):
        """Inclusive prefix reduction along rank order."""
        return (yield from coll.scan(self, value, op))

    # -- communicator management ---------------------------------------------

    def split(self, color: int | None, key: int = 0):
        """Split into sub-communicators by ``color`` (``None`` → no membership).

        Ranks with equal color form a new communicator, ordered by
        ``(key, parent rank)`` exactly like ``MPI_Comm_split``.
        """
        seq = self._split_seq
        self._split_seq += 1
        infos = yield from self.allgather((color, key, self.rank))
        # Allocate ids for every color of this split in sorted-color order:
        # each member sees the same allgather result, so the ids (and the
        # registered group memberships) come out identical no matter which
        # member the engine happens to resume first — and identical between
        # the fast-path and cascade schedules. Because every member derives
        # the *same* plan from the same allgather, the first member to get
        # here computes and registers it once; the engine caches it under
        # (parent comm, split sequence) and the other members just look
        # their color up — at 1088 ranks this turns an O(ranks²) init into
        # O(ranks).
        engine = self.ctx.engine
        plan_key = (self.comm_id, seq)
        plan = engine._split_plans.get(plan_key)
        if plan is None:
            by_color: dict[int, list[tuple[int, int]]] = {}
            for c, k, r in infos:
                if c is not None:
                    by_color.setdefault(c, []).append((k, r))
            plan = {}
            for c in sorted(by_color):
                group_world = tuple(
                    self.group[r] for _, r in sorted(by_color[c])
                )
                cid = engine.allocate_comm_id((self.comm_id, seq, c), group_world)
                plan[c] = (cid, group_world)
            engine._split_plans[plan_key] = plan
        if color is None:
            return None
        comm_id, my_group = plan[color]
        return Communicator(self.ctx, comm_id, my_group)

    def translate_rank(self, local: int) -> int:
        """World rank corresponding to ``local`` in this communicator."""
        return self._world_rank(local)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Communicator(id={self.comm_id}, rank={self.rank}/{self.size})"
        )
