"""Communication tracing for the simulated MPI runtime.

The paper's whole evaluation pipeline starts from "the communication graph
obtained by executing a tsunami simulation" (§III). The tracer accumulates a
dense ``(nranks, nranks)`` byte matrix — sender on the x axis, receiver on
the y axis, exactly like Fig. 5a/5b — plus optional per-kind matrices so the
benchmark for Fig. 5b can separate stencil traffic from the MPICH2-style
``Allgather`` pattern and from checkpoint-encoder traffic.

Both recording granularities are exactly equivalent: :meth:`record` is the
per-message path (the engine's scalar p2p reference and the collective
cascade), :meth:`record_many` the bulk path the vectorized fast paths use —
the engine's batched p2p mode gathers each scheduler batch's send wave
straight from its message-pool columns and records it here in one
``np.add.at`` pass per kind. Byte counts are integers, so accumulation
order cannot perturb the float matrices; per-message and per-wave recording
produce byte-identical artifacts.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


class TraceRecorder:
    """Accumulates per-(src, dst) communicated bytes and message counts.

    Parameters
    ----------
    nranks:
        World size; fixes the matrix dimensions.
    by_kind:
        If true, keep a separate byte matrix per message ``kind``
        (``"p2p"``, ``"bcast"``, ``"allgather"`` …) in addition to the total.
    """

    def __init__(self, nranks: int, *, by_kind: bool = False):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.bytes_matrix = np.zeros((nranks, nranks), dtype=np.float64)
        self.count_matrix = np.zeros((nranks, nranks), dtype=np.int64)
        self.by_kind = by_kind
        self.kind_matrices: dict[str, np.ndarray] = {}
        self.total_messages = 0
        self.total_bytes = 0.0

    def record(self, src: int, dst: int, nbytes: int, kind: str = "p2p") -> None:
        """Record one message. Self-messages are recorded too (diagonal)."""
        self.bytes_matrix[dst, src] += nbytes
        self.count_matrix[dst, src] += 1
        self.total_messages += 1
        self.total_bytes += nbytes
        if self.by_kind:
            mat = self.kind_matrices.get(kind)
            if mat is None:
                mat = self.kind_matrices.setdefault(
                    kind, np.zeros((self.nranks, self.nranks), dtype=np.float64)
                )
            mat[dst, src] += nbytes

    def record_many(self, srcs, dsts, nbytes, kind: str = "p2p", *, repeats: int = 1) -> None:
        """Record a whole batch of messages in one vectorized pass.

        ``srcs``/``dsts``/``nbytes`` are parallel arrays; duplicated
        (src, dst) pairs accumulate exactly as repeated :meth:`record`
        calls would (byte counts are integers, so accumulation order
        cannot perturb the float matrices). ``repeats`` records the same
        batch that many times over — the steady-state kernel uses it to
        book K identical iterations in one pass; since per-message byte
        counts are integers well below 2**53, ``nbytes * repeats`` is
        exact and the result is byte-identical to K separate calls.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        nb = np.asarray(nbytes, dtype=np.float64)
        if nb.ndim == 0:
            nb = np.broadcast_to(nb, srcs.shape)
        if repeats != 1:
            nb = nb * repeats
        np.add.at(self.bytes_matrix, (dsts, srcs), nb)
        np.add.at(self.count_matrix, (dsts, srcs), repeats)
        self.total_messages += int(srcs.size) * repeats
        self.total_bytes += float(nb.sum())
        if self.by_kind:
            mat = self.kind_matrices.get(kind)
            if mat is None:
                mat = self.kind_matrices.setdefault(
                    kind, np.zeros((self.nranks, self.nranks), dtype=np.float64)
                )
            np.add.at(mat, (dsts, srcs), nb)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "TraceRecorder | SparseTraceRecorder") -> None:
        """Accumulate another recorder's traffic into this one.

        The sharded engine's trace story: every message is recorded by
        exactly one shard recorder (the sender's, for boundary p2p), so
        summing the per-shard recorders reproduces the single-process
        matrices byte-for-byte — entries are order-independent integer
        byte sums. Accepts dense or sparse recorders of the same world
        size.
        """
        if other.nranks != self.nranks:
            raise ValueError(
                f"cannot merge tracer of {other.nranks} ranks into {self.nranks}"
            )
        if isinstance(other, TraceRecorder):
            self.bytes_matrix += other.bytes_matrix
            self.count_matrix += other.count_matrix
            kind_items = other.kind_matrices.items()
            if self.by_kind:
                for kind, mat in kind_items:
                    mine = self.kind_matrices.get(kind)
                    if mine is None:
                        self.kind_matrices[kind] = mat.copy()
                    else:
                        mine += mat
        else:
            dsts, srcs, nb, counts = other.coo_entries()
            np.add.at(self.bytes_matrix, (dsts, srcs), nb)
            np.add.at(self.count_matrix, (dsts, srcs), counts)
            if self.by_kind:
                for kind in other.kind_entries:
                    kdsts, ksrcs, knb = other.coo_kind(kind)
                    mine = self.kind_matrices.get(kind)
                    if mine is None:
                        mine = self.kind_matrices.setdefault(
                            kind,
                            np.zeros((self.nranks, self.nranks), dtype=np.float64),
                        )
                    np.add.at(mine, (kdsts, ksrcs), knb)
        self.total_messages += other.total_messages
        self.total_bytes += other.total_bytes

    # -- views ------------------------------------------------------------

    def symmetric_bytes(self) -> np.ndarray:
        """Undirected traffic matrix ``B + B.T`` (used by the partitioner)."""
        return self.bytes_matrix + self.bytes_matrix.T

    def zoom(self, n: int) -> np.ndarray:
        """Top-left ``n x n`` corner of the byte matrix (Fig. 5b's view)."""
        if not 0 < n <= self.nranks:
            raise ValueError(f"zoom size must be in [1, {self.nranks}], got {n}")
        return self.bytes_matrix[:n, :n].copy()

    def kind_bytes(self, kind: str) -> np.ndarray:
        """Byte matrix restricted to one message kind (requires by_kind)."""
        if not self.by_kind:
            raise RuntimeError("tracer was not created with by_kind=True")
        mat = self.kind_matrices.get(kind)
        if mat is None:
            return np.zeros((self.nranks, self.nranks), dtype=np.float64)
        return mat

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist matrices to an ``.npz`` archive."""
        payload = {
            "bytes": self.bytes_matrix,
            "counts": self.count_matrix,
        }
        for kind, mat in self.kind_matrices.items():
            payload[f"kind_{kind}"] = mat
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path: str | Path) -> "TraceRecorder":
        """Load a tracer previously stored with :meth:`save`."""
        with np.load(Path(path)) as data:
            bytes_matrix = data["bytes"]
            tracer = cls(bytes_matrix.shape[0], by_kind=True)
            tracer.bytes_matrix = bytes_matrix.copy()
            tracer.count_matrix = data["counts"].copy()
            for key in data.files:
                if key.startswith("kind_"):
                    tracer.kind_matrices[key[len("kind_"):]] = data[key].copy()
        tracer.total_messages = int(tracer.count_matrix.sum())
        tracer.total_bytes = float(tracer.bytes_matrix.sum())
        return tracer


class SparseTraceRecorder:
    """Dict-backed recorder for worlds too large for dense matrices.

    A traced 10k-rank world would need an 800 MB dense float matrix (and
    another for counts); actual stencil/FTI traffic touches a few
    neighbors per rank, so the populated (dst, src) pairs number in the
    tens of thousands. This recorder keeps only those, behind the same
    ``record`` / ``record_many`` / ``merge`` surface the engine drives,
    and converts to a dense :class:`TraceRecorder` on demand for small
    worlds.

    Accumulation is byte-identical to the dense recorder: entries are
    order-independent integer byte sums keyed by exact (dst, src) pairs.
    """

    def __init__(self, nranks: int, *, by_kind: bool = False):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.by_kind = by_kind
        # (dst, src) -> [bytes, count]
        self._entries: dict[tuple[int, int], list] = {}
        # kind -> {(dst, src) -> bytes}
        self.kind_entries: dict[str, dict[tuple[int, int], float]] = {}
        self.total_messages = 0
        self.total_bytes = 0.0

    def record(self, src: int, dst: int, nbytes: int, kind: str = "p2p") -> None:
        """Record one message (same contract as the dense recorder)."""
        entry = self._entries.get((dst, src))
        if entry is None:
            entry = self._entries.setdefault((dst, src), [0.0, 0])
        entry[0] += nbytes
        entry[1] += 1
        self.total_messages += 1
        self.total_bytes += nbytes
        if self.by_kind:
            kmap = self.kind_entries.get(kind)
            if kmap is None:
                kmap = self.kind_entries.setdefault(kind, {})
            kmap[(dst, src)] = kmap.get((dst, src), 0.0) + nbytes

    def record_many(self, srcs, dsts, nbytes, kind: str = "p2p", *, repeats: int = 1) -> None:
        """Record a batch; equivalent to repeated :meth:`record` calls."""
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        nb = np.asarray(nbytes, dtype=np.float64)
        if nb.ndim == 0:
            nb = np.broadcast_to(nb, srcs.shape)
        if repeats != 1:
            nb = nb * repeats
        entries = self._entries
        kmap = None
        if self.by_kind:
            kmap = self.kind_entries.get(kind)
            if kmap is None:
                kmap = self.kind_entries.setdefault(kind, {})
        for src, dst, b in zip(srcs.tolist(), dsts.tolist(), nb.tolist()):
            entry = entries.get((dst, src))
            if entry is None:
                entry = entries.setdefault((dst, src), [0.0, 0])
            entry[0] += b
            entry[1] += repeats
            if kmap is not None:
                kmap[(dst, src)] = kmap.get((dst, src), 0.0) + b
        self.total_messages += int(srcs.size) * repeats
        self.total_bytes += float(nb.sum())

    def merge(self, other: "SparseTraceRecorder") -> None:
        """Accumulate another sparse recorder's traffic into this one."""
        if other.nranks != self.nranks:
            raise ValueError(
                f"cannot merge tracer of {other.nranks} ranks into {self.nranks}"
            )
        for key, (b, c) in other._entries.items():
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = [b, c]
            else:
                entry[0] += b
                entry[1] += c
        for kind, kmap in other.kind_entries.items():
            mine = self.kind_entries.setdefault(kind, {})
            for key, b in kmap.items():
                mine[key] = mine.get(key, 0.0) + b
        self.total_messages += other.total_messages
        self.total_bytes += other.total_bytes

    # -- views ------------------------------------------------------------

    def coo_entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Populated cells as ``(dsts, srcs, bytes, counts)`` arrays."""
        n = len(self._entries)
        dsts = np.empty(n, dtype=np.int64)
        srcs = np.empty(n, dtype=np.int64)
        nb = np.empty(n, dtype=np.float64)
        counts = np.empty(n, dtype=np.int64)
        for i, ((dst, src), (b, c)) in enumerate(self._entries.items()):
            dsts[i], srcs[i], nb[i], counts[i] = dst, src, b, c
        return dsts, srcs, nb, counts

    def coo_kind(self, kind: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One kind's populated cells as ``(dsts, srcs, bytes)`` arrays."""
        kmap = self.kind_entries.get(kind, {})
        n = len(kmap)
        dsts = np.empty(n, dtype=np.int64)
        srcs = np.empty(n, dtype=np.int64)
        nb = np.empty(n, dtype=np.float64)
        for i, ((dst, src), b) in enumerate(kmap.items()):
            dsts[i], srcs[i], nb[i] = dst, src, b
        return dsts, srcs, nb

    def to_dense(self) -> TraceRecorder:
        """Materialize as a dense :class:`TraceRecorder` (small worlds only)."""
        dense = TraceRecorder(self.nranks, by_kind=self.by_kind)
        dense.merge(self)
        return dense
