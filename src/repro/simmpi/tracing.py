"""Communication tracing for the simulated MPI runtime.

The paper's whole evaluation pipeline starts from "the communication graph
obtained by executing a tsunami simulation" (§III). The tracer accumulates a
dense ``(nranks, nranks)`` byte matrix — sender on the x axis, receiver on
the y axis, exactly like Fig. 5a/5b — plus optional per-kind matrices so the
benchmark for Fig. 5b can separate stencil traffic from the MPICH2-style
``Allgather`` pattern and from checkpoint-encoder traffic.

Both recording granularities are exactly equivalent: :meth:`record` is the
per-message path (the engine's scalar p2p reference and the collective
cascade), :meth:`record_many` the bulk path the vectorized fast paths use —
the engine's batched p2p mode gathers each scheduler batch's send wave
straight from its message-pool columns and records it here in one
``np.add.at`` pass per kind. Byte counts are integers, so accumulation
order cannot perturb the float matrices; per-message and per-wave recording
produce byte-identical artifacts.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


class TraceRecorder:
    """Accumulates per-(src, dst) communicated bytes and message counts.

    Parameters
    ----------
    nranks:
        World size; fixes the matrix dimensions.
    by_kind:
        If true, keep a separate byte matrix per message ``kind``
        (``"p2p"``, ``"bcast"``, ``"allgather"`` …) in addition to the total.
    """

    def __init__(self, nranks: int, *, by_kind: bool = False):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self.bytes_matrix = np.zeros((nranks, nranks), dtype=np.float64)
        self.count_matrix = np.zeros((nranks, nranks), dtype=np.int64)
        self.by_kind = by_kind
        self.kind_matrices: dict[str, np.ndarray] = {}
        self.total_messages = 0
        self.total_bytes = 0.0

    def record(self, src: int, dst: int, nbytes: int, kind: str = "p2p") -> None:
        """Record one message. Self-messages are recorded too (diagonal)."""
        self.bytes_matrix[dst, src] += nbytes
        self.count_matrix[dst, src] += 1
        self.total_messages += 1
        self.total_bytes += nbytes
        if self.by_kind:
            mat = self.kind_matrices.get(kind)
            if mat is None:
                mat = self.kind_matrices.setdefault(
                    kind, np.zeros((self.nranks, self.nranks), dtype=np.float64)
                )
            mat[dst, src] += nbytes

    def record_many(self, srcs, dsts, nbytes, kind: str = "p2p", *, repeats: int = 1) -> None:
        """Record a whole batch of messages in one vectorized pass.

        ``srcs``/``dsts``/``nbytes`` are parallel arrays; duplicated
        (src, dst) pairs accumulate exactly as repeated :meth:`record`
        calls would (byte counts are integers, so accumulation order
        cannot perturb the float matrices). ``repeats`` records the same
        batch that many times over — the steady-state kernel uses it to
        book K identical iterations in one pass; since per-message byte
        counts are integers well below 2**53, ``nbytes * repeats`` is
        exact and the result is byte-identical to K separate calls.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        nb = np.asarray(nbytes, dtype=np.float64)
        if nb.ndim == 0:
            nb = np.broadcast_to(nb, srcs.shape)
        if repeats != 1:
            nb = nb * repeats
        np.add.at(self.bytes_matrix, (dsts, srcs), nb)
        np.add.at(self.count_matrix, (dsts, srcs), repeats)
        self.total_messages += int(srcs.size) * repeats
        self.total_bytes += float(nb.sum())
        if self.by_kind:
            mat = self.kind_matrices.get(kind)
            if mat is None:
                mat = self.kind_matrices.setdefault(
                    kind, np.zeros((self.nranks, self.nranks), dtype=np.float64)
                )
            np.add.at(mat, (dsts, srcs), nb)

    # -- views ------------------------------------------------------------

    def symmetric_bytes(self) -> np.ndarray:
        """Undirected traffic matrix ``B + B.T`` (used by the partitioner)."""
        return self.bytes_matrix + self.bytes_matrix.T

    def zoom(self, n: int) -> np.ndarray:
        """Top-left ``n x n`` corner of the byte matrix (Fig. 5b's view)."""
        if not 0 < n <= self.nranks:
            raise ValueError(f"zoom size must be in [1, {self.nranks}], got {n}")
        return self.bytes_matrix[:n, :n].copy()

    def kind_bytes(self, kind: str) -> np.ndarray:
        """Byte matrix restricted to one message kind (requires by_kind)."""
        if not self.by_kind:
            raise RuntimeError("tracer was not created with by_kind=True")
        mat = self.kind_matrices.get(kind)
        if mat is None:
            return np.zeros((self.nranks, self.nranks), dtype=np.float64)
        return mat

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist matrices to an ``.npz`` archive."""
        payload = {
            "bytes": self.bytes_matrix,
            "counts": self.count_matrix,
        }
        for kind, mat in self.kind_matrices.items():
            payload[f"kind_{kind}"] = mat
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path: str | Path) -> "TraceRecorder":
        """Load a tracer previously stored with :meth:`save`."""
        with np.load(Path(path)) as data:
            bytes_matrix = data["bytes"]
            tracer = cls(bytes_matrix.shape[0], by_kind=True)
            tracer.bytes_matrix = bytes_matrix.copy()
            tracer.count_matrix = data["counts"].copy()
            for key in data.files:
                if key.startswith("kind_"):
                    tracer.kind_matrices[key[len("kind_"):]] = data[key].copy()
        tracer.total_messages = int(tracer.count_matrix.sum())
        tracer.total_bytes = float(tracer.bytes_matrix.sum())
        return tracer
