"""Exception hierarchy for the simulated MPI runtime."""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all simulated-MPI errors."""


class DeadlockError(SimMPIError):
    """Raised when no rank can make progress but some have not finished.

    Carries a human-readable description of every blocked rank and the
    request it is waiting on, which makes protocol bugs (mismatched tags,
    missing sends) diagnosable from the test failure alone.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = "; ".join(f"rank {r}: {why}" for r, why in sorted(blocked.items()))
        super().__init__(f"deadlock — {len(blocked)} rank(s) blocked: {detail}")


class RankFailedError(SimMPIError):
    """Raised inside a rank program when the engine injects a failure."""

    def __init__(self, rank: int, reason: str = "injected failure"):
        self.rank = rank
        self.reason = reason
        super().__init__(f"rank {rank} failed: {reason}")


class CommunicatorError(SimMPIError):
    """Invalid communicator usage (bad rank, rank outside group, bad root)."""


class MatchingError(SimMPIError):
    """Internal matching-engine invariant violation (always a library bug)."""
