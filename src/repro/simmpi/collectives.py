"""Collective algorithms implemented over simulated point-to-point.

Collectives are implemented the way MPICH2 implements them — as trees and
distance-doubling exchanges over point-to-point messages — because the
*trace* of a collective matters to the paper: Fig. 5b explicitly identifies
the power-of-two diagonals of MPICH2's ``MPI_Allgather`` (used by FTI during
initialization). Running these algorithms through the tracer reproduces the
same diagonals.

All functions are generator coroutines operating on a
:class:`~repro.simmpi.comm.Communicator`; they must be invoked with
``yield from``. Every collective draws a fresh internal tag from the
communicator so that back-to-back collectives never cross-match.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


def sum_op(a, b):
    """Commutative elementwise sum (NumPy arrays or scalars)."""
    return a + b


def max_op(a, b):
    """Commutative elementwise maximum (NumPy arrays or scalars)."""
    return np.maximum(a, b)


def min_op(a, b):
    """Commutative elementwise minimum (NumPy arrays or scalars)."""
    return np.minimum(a, b)


def prod_op(a, b):
    """Commutative elementwise product (NumPy arrays or scalars)."""
    return a * b


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


# ---------------------------------------------------------------------------
# broadcast / barrier
# ---------------------------------------------------------------------------


def bcast(comm, obj: Any, root: int = 0, *, kind: str = "bcast"):
    """Binomial-tree broadcast; returns the broadcast object on every rank."""
    comm._check_root(root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size

    data = obj
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            data = yield from comm.recv(source=src, tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from comm.send(data, dest=dst, tag=tag, kind=kind)
        mask >>= 1
    return data


def barrier(comm, *, kind: str = "barrier"):
    """Dissemination barrier (log2(size) rounds of 0-byte messages)."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.isend(None, dest=dst, tag=tag, kind=kind)
        yield from comm.recv(source=src, tag=tag)
        step <<= 1


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def reduce(comm, value: Any, op: Callable = sum_op, root: int = 0, *, kind: str = "reduce"):
    """Binomial-tree reduction to ``root``; ``op`` must be commutative.

    Returns the reduced value on the root and ``None`` elsewhere.
    """
    comm._check_root(root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size

    result = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = (vrank - mask + root) % size
            yield from comm.send(result, dest=dst, tag=tag, kind=kind)
            return None
        partner = vrank + mask
        if partner < size:
            src = (partner + root) % size
            partial = yield from comm.recv(source=src, tag=tag)
            result = op(result, partial)
        mask <<= 1
    return result


def allreduce(comm, value: Any, op: Callable = sum_op, *, kind: str = "allreduce"):
    """All-reduce: recursive doubling when size is a power of two, otherwise
    binomial reduce followed by binomial broadcast (MPICH2's fallback)."""
    size = comm.size
    if size == 1:
        return value
    if _is_pow2(size):
        tag = comm._next_coll_tag()
        rank = comm.rank
        result = value
        mask = 1
        while mask < size:
            partner = rank ^ mask
            yield from comm.isend(result, dest=partner, tag=tag, kind=kind)
            other = yield from comm.recv(source=partner, tag=tag)
            result = op(result, other)
            mask <<= 1
        return result
    partial = yield from reduce(comm, value, op, root=0, kind=kind)
    return (yield from bcast(comm, partial, root=0, kind=kind))


# ---------------------------------------------------------------------------
# gathers / scatters
# ---------------------------------------------------------------------------


def gather(comm, value: Any, root: int = 0, *, kind: str = "gather"):
    """Linear gather; returns the rank-ordered list on root, None elsewhere."""
    comm._check_root(root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = value
        for src in range(comm.size):
            if src != root:
                out[src] = yield from comm.recv(source=src, tag=tag)
        return out
    yield from comm.send(value, dest=root, tag=tag, kind=kind)
    return None


def scatter(comm, values: list | None, root: int = 0, *, kind: str = "scatter"):
    """Linear scatter of ``values`` (length ``size``) from root."""
    comm._check_root(root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError(
                f"scatter root needs a list of {comm.size} values, got "
                f"{None if values is None else len(values)}"
            )
        for dst in range(comm.size):
            if dst != root:
                yield from comm.send(values[dst], dest=dst, tag=tag, kind=kind)
        return values[root]
    return (yield from comm.recv(source=root, tag=tag))


def allgather(comm, value: Any, *, kind: str = "allgather"):
    """All-gather; returns the rank-ordered list of contributions.

    Power-of-two sizes use MPICH2's recursive doubling (partners at XOR
    distances 1, 2, 4, …); other sizes use Bruck's algorithm (partners at
    ± power-of-two ring distances). Both place traffic on power-of-two
    diagonals of the communication matrix — the pattern the paper calls out
    in Fig. 5b.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return [value]
    tag = comm._next_coll_tag()
    blocks: list[Any] = [None] * size
    blocks[rank] = value

    if _is_pow2(size):
        mask = 1
        while mask < size:
            partner = rank ^ mask
            base = rank & ~(mask - 1)  # start of my contiguous block run
            send_chunk = {i: blocks[i] for i in range(base, base + mask)}
            yield from comm.isend(send_chunk, dest=partner, tag=tag, kind=kind)
            recv_chunk = yield from comm.recv(source=partner, tag=tag)
            for i, blk in recv_chunk.items():
                blocks[i] = blk
            mask <<= 1
        return blocks

    # Bruck: after round k I hold blocks rank..rank+2^k-1 (mod size).
    have = 1
    pofk = 1
    while have < size:
        count = min(pofk, size - have)
        dst = (rank - pofk) % size
        src = (rank + pofk) % size
        send_chunk = {
            (rank + i) % size: blocks[(rank + i) % size] for i in range(count)
        }
        yield from comm.isend(send_chunk, dest=dst, tag=tag, kind=kind)
        recv_chunk = yield from comm.recv(source=src, tag=tag)
        for i, blk in recv_chunk.items():
            blocks[i] = blk
        have += count
        pofk <<= 1
    return blocks


def alltoall(comm, values: list, *, kind: str = "alltoall"):
    """Pairwise-exchange all-to-all; ``values[i]`` goes to local rank ``i``."""
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError(f"alltoall needs {size} values, got {len(values)}")
    tag = comm._next_coll_tag()
    out: list[Any] = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.isend(values[dst], dest=dst, tag=tag, kind=kind)
        out[src] = yield from comm.recv(source=src, tag=tag)
    return out


def scan(comm, value: Any, op: Callable = sum_op, *, kind: str = "scan"):
    """Inclusive prefix reduction along rank order (linear chain)."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    acc = value
    if rank > 0:
        upstream = yield from comm.recv(source=rank - 1, tag=tag)
        acc = op(upstream, value)
    if rank < size - 1:
        yield from comm.send(acc, dest=rank + 1, tag=tag, kind=kind)
    return acc
