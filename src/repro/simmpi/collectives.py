"""Collective algorithms implemented over simulated point-to-point.

Collectives are implemented the way MPICH2 implements them — as trees and
distance-doubling exchanges over point-to-point messages — because the
*trace* of a collective matters to the paper: Fig. 5b explicitly identifies
the power-of-two diagonals of MPICH2's ``MPI_Allgather`` (used by FTI during
initialization). Running these algorithms through the tracer reproduces the
same diagonals.

All generator functions in the first half of this module operate on a
:class:`~repro.simmpi.comm.Communicator`; they must be invoked with
``yield from``. Every collective draws a fresh internal tag from the
communicator so that back-to-back collectives never cross-match.

Fast paths
----------
The second half holds the *fast paths*: closed-form emulations of the same
algorithms that the engine runs in one vectorized pass once every member of
the communicator — the world communicator or any split sub-communicator
whose membership is registered with the engine — has reached the
collective. All algorithm arithmetic runs in *group-rank* space (the
member's rank within the communicator); world ranks appear only at the
network-model and tracer boundary, translated through the group's
rank→world vector.

**Byte-identical trace** means the fast path emits exactly the per-message
records the cascade would have: the same (source, destination, nbytes,
kind) tuples in the same per-(src, dst) multiplicity, so every
:class:`~repro.simmpi.tracing.TraceRecorder` matrix (bytes, counts,
per-kind) is equal element for element. **Bit-identical clocks** means the
per-rank virtual times after the collective are equal as IEEE doubles —
the recurrences below replay the cascade's ``max(local, sender + transfer)``
chains level by level with the same operation order, and
:meth:`~repro.simmpi.network.NetworkModel.transfer_times` matches the
scalar :meth:`~repro.simmpi.network.NetworkModel.transfer_time` bit for
bit. Results are also identical, including the per-rank operator
application order of the reductions and buffered-send copy semantics.

The engine dispatches here only when no per-message observer is active (no
payload message log, no receive-count tracking, no failure injection) —
any of those forces the generator cascade so the observer sees every
individual message; see :mod:`repro.simmpi.engine` ("Fast-path
collectives") for the eligibility rules.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.simmpi.request import (
    capture_payload,
    is_immutable_payload,
    payload_nbytes,
)


def sum_op(a, b):
    """Commutative elementwise sum (NumPy arrays or scalars)."""
    return a + b


def max_op(a, b):
    """Commutative elementwise maximum (NumPy arrays or scalars)."""
    return np.maximum(a, b)


def min_op(a, b):
    """Commutative elementwise minimum (NumPy arrays or scalars)."""
    return np.minimum(a, b)


def prod_op(a, b):
    """Commutative elementwise product (NumPy arrays or scalars)."""
    return a * b


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


# ---------------------------------------------------------------------------
# broadcast / barrier
# ---------------------------------------------------------------------------


def bcast(comm, obj: Any, root: int = 0, *, kind: str = "bcast"):
    """Binomial-tree broadcast; returns the broadcast object on every rank."""
    comm._check_root(root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size

    data = obj
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            data = yield from comm.recv(source=src, tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from comm.send(data, dest=dst, tag=tag, kind=kind)
        mask >>= 1
    return data


def barrier(comm, *, kind: str = "barrier"):
    """Dissemination barrier (log2(size) rounds of 0-byte messages)."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    step = 1
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.isend(None, dest=dst, tag=tag, kind=kind)
        yield from comm.recv(source=src, tag=tag)
        step <<= 1


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def reduce(comm, value: Any, op: Callable = sum_op, root: int = 0, *, kind: str = "reduce"):
    """Binomial-tree reduction to ``root``; ``op`` must be commutative.

    Returns the reduced value on the root and ``None`` elsewhere.
    """
    comm._check_root(root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size

    result = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = (vrank - mask + root) % size
            yield from comm.send(result, dest=dst, tag=tag, kind=kind)
            return None
        partner = vrank + mask
        if partner < size:
            src = (partner + root) % size
            partial = yield from comm.recv(source=src, tag=tag)
            result = op(result, partial)
        mask <<= 1
    return result


def allreduce(comm, value: Any, op: Callable = sum_op, *, kind: str = "allreduce"):
    """All-reduce: recursive doubling when size is a power of two, otherwise
    binomial reduce followed by binomial broadcast (MPICH2's fallback)."""
    size = comm.size
    if size == 1:
        return value
    if _is_pow2(size):
        tag = comm._next_coll_tag()
        rank = comm.rank
        result = value
        mask = 1
        while mask < size:
            partner = rank ^ mask
            yield from comm.isend(result, dest=partner, tag=tag, kind=kind)
            other = yield from comm.recv(source=partner, tag=tag)
            result = op(result, other)
            mask <<= 1
        return result
    partial = yield from reduce(comm, value, op, root=0, kind=kind)
    return (yield from bcast(comm, partial, root=0, kind=kind))


# ---------------------------------------------------------------------------
# gathers / scatters
# ---------------------------------------------------------------------------


def gather(comm, value: Any, root: int = 0, *, kind: str = "gather"):
    """Linear gather; returns the rank-ordered list on root, None elsewhere."""
    comm._check_root(root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = value
        for src in range(comm.size):
            if src != root:
                out[src] = yield from comm.recv(source=src, tag=tag)
        return out
    yield from comm.send(value, dest=root, tag=tag, kind=kind)
    return None


def scatter(comm, values: list | None, root: int = 0, *, kind: str = "scatter"):
    """Linear scatter of ``values`` (length ``size``) from root."""
    comm._check_root(root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError(
                f"scatter root needs a list of {comm.size} values, got "
                f"{None if values is None else len(values)}"
            )
        for dst in range(comm.size):
            if dst != root:
                yield from comm.send(values[dst], dest=dst, tag=tag, kind=kind)
        return values[root]
    return (yield from comm.recv(source=root, tag=tag))


def allgather(comm, value: Any, *, kind: str = "allgather"):
    """All-gather; returns the rank-ordered list of contributions.

    Power-of-two sizes use MPICH2's recursive doubling (partners at XOR
    distances 1, 2, 4, …); other sizes use Bruck's algorithm (partners at
    ± power-of-two ring distances). Both place traffic on power-of-two
    diagonals of the communication matrix — the pattern the paper calls out
    in Fig. 5b.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return [value]
    tag = comm._next_coll_tag()
    blocks: list[Any] = [None] * size
    blocks[rank] = value

    if _is_pow2(size):
        mask = 1
        while mask < size:
            partner = rank ^ mask
            base = rank & ~(mask - 1)  # start of my contiguous block run
            send_chunk = {i: blocks[i] for i in range(base, base + mask)}
            yield from comm.isend(send_chunk, dest=partner, tag=tag, kind=kind)
            recv_chunk = yield from comm.recv(source=partner, tag=tag)
            for i, blk in recv_chunk.items():
                blocks[i] = blk
            mask <<= 1
        return blocks

    # Bruck: after round k I hold blocks rank..rank+2^k-1 (mod size).
    have = 1
    pofk = 1
    while have < size:
        count = min(pofk, size - have)
        dst = (rank - pofk) % size
        src = (rank + pofk) % size
        send_chunk = {
            (rank + i) % size: blocks[(rank + i) % size] for i in range(count)
        }
        yield from comm.isend(send_chunk, dest=dst, tag=tag, kind=kind)
        recv_chunk = yield from comm.recv(source=src, tag=tag)
        for i, blk in recv_chunk.items():
            blocks[i] = blk
        have += count
        pofk <<= 1
    return blocks


def alltoall(comm, values: list, *, kind: str = "alltoall"):
    """Pairwise-exchange all-to-all; ``values[i]`` goes to local rank ``i``."""
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError(f"alltoall needs {size} values, got {len(values)}")
    tag = comm._next_coll_tag()
    out: list[Any] = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.isend(values[dst], dest=dst, tag=tag, kind=kind)
        out[src] = yield from comm.recv(source=src, tag=tag)
    return out


def scan(comm, value: Any, op: Callable = sum_op, *, kind: str = "scan"):
    """Inclusive prefix reduction along rank order (linear chain)."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    acc = value
    if rank > 0:
        upstream = yield from comm.recv(source=rank - 1, tag=tag)
        acc = op(upstream, value)
    if rank < size - 1:
        yield from comm.send(acc, dest=rank + 1, tag=tag, kind=kind)
    return acc


# ===========================================================================
# Fast paths: vectorized emulations of the cascades above (any communicator)
# ===========================================================================
#
# Each function takes the per-member inputs the engine gathered — ``values``
# (indexed by *group rank*, i.e. the member's rank within the communicator),
# ``op_fns`` (each member's reduction callable), ``root`` (group-local), the
# per-member ``clocks`` at collective entry — plus ``group`` (the
# communicator's members as a vector of *world* ranks, in group-rank order),
# the network model and optional tracer, and returns ``(results,
# new_clocks)`` in group-rank order. All algorithm arithmetic (partners,
# trees, rings) happens in group-rank space exactly like the generator
# cascades; ``group[...]`` translates to world ranks only at the network /
# tracer boundary, so a split communicator prices its messages over its own
# slice of the placement. For the world communicator ``group`` is the
# identity permutation. The timing recurrences mirror the engine's
# virtual-time rules exactly: buffered sends are free, a receive completes
# at ``max(local clock, sender clock at post + transfer time)``, and every
# algorithm's send happens at the sender's clock *entering* that round.


def _trace(tracer, srcs, dsts, nbytes, kind) -> None:
    if tracer is not None:
        tracer.record_many(srcs, dsts, nbytes, kind)


def _fast_bcast(values, op_fns, root, kind, clocks, group, network, tracer):
    n = clocks.size
    data = values[root]
    if n == 1:
        return [data], clocks.copy()
    nb = payload_nbytes(data)
    perm = (np.arange(n) + root) % n  # group rank of each virtual rank
    ready = clocks[perm].copy()
    # Binomial tree: vrank v receives from v with its lowest set bit
    # cleared; levels are processed by descending lowest-set-bit so every
    # parent's ready time is final before its children read it.
    mask = 1 << ((n - 1).bit_length() - 1)
    while mask:
        children = np.arange(mask, n, 2 * mask)
        parents = children - mask
        ws, wd = group[perm[parents]], group[perm[children]]
        t = network.transfer_times(ws, wd, nb)
        ready[children] = np.maximum(ready[children], ready[parents] + t)
        _trace(tracer, ws, wd, float(nb), kind)
        mask >>= 1
    shared = is_immutable_payload(data)
    results = [
        data if (g == root or shared) else capture_payload(data)
        for g in range(n)
    ]
    new_clocks = np.empty(n, dtype=np.float64)
    new_clocks[perm] = ready
    return results, new_clocks


def _fast_reduce(values, op_fns, root, kind, clocks, group, network, tracer):
    n = clocks.size
    if n == 1:
        return [values[0]], clocks.copy()
    perm = (np.arange(n) + root) % n
    c = clocks[perm].copy()
    vals: list[Any] = [values[int(perm[v])] for v in range(n)]
    mask = 1
    while mask < n:
        senders = np.arange(mask, n, 2 * mask)  # vranks whose lsb == mask
        if senders.size:
            receivers = senders - mask
            nb = np.fromiter(
                (payload_nbytes(vals[s]) for s in senders),
                dtype=np.float64,
                count=senders.size,
            )
            ws, wd = group[perm[senders]], group[perm[receivers]]
            t = network.transfer_times(ws, wd, nb)
            c[receivers] = np.maximum(c[receivers], c[senders] + t)
            for s, r in zip(senders.tolist(), receivers.tolist()):
                vals[r] = op_fns[perm[r]](vals[r], capture_payload(vals[s]))
            _trace(tracer, ws, wd, nb, kind)
        mask <<= 1
    results: list[Any] = [None] * n
    results[root] = vals[0]
    new_clocks = np.empty(n, dtype=np.float64)
    new_clocks[perm] = c
    return results, new_clocks


def _fast_allreduce(values, op_fns, root, kind, clocks, group, network, tracer):
    n = clocks.size
    if n == 1:
        return [values[0]], clocks.copy()
    if not _is_pow2(n):
        # MPICH2's fallback: binomial reduce to 0, then binomial bcast.
        partials, c = _fast_reduce(
            values, op_fns, 0, kind, clocks, group, network, tracer
        )
        bvals: list[Any] = [None] * n
        bvals[0] = partials[0]
        return _fast_bcast(bvals, op_fns, 0, kind, c, group, network, tracer)
    idx = np.arange(n)
    c = clocks.copy()
    vals = list(values)
    mask = 1
    while mask < n:
        partner = idx ^ mask
        nb = np.fromiter(
            (payload_nbytes(v) for v in vals), dtype=np.float64, count=n
        )
        t = network.transfer_times(group[partner], group, nb[partner])
        c = np.maximum(c, c[partner] + t)
        _trace(tracer, group, group[partner], nb, kind)
        vals = [
            op_fns[r](vals[r], capture_payload(vals[r ^ mask])) for r in range(n)
        ]
        mask <<= 1
    return vals, c


def _allgather_results(values) -> list[list[Any]]:
    """Per-rank rank-ordered block lists with buffered-send copy semantics."""
    n = len(values)
    immut = [is_immutable_payload(v) for v in values]
    if all(immut):
        template = list(values)
        return [template.copy() for _ in range(n)]
    return [
        [
            values[i] if (i == r or immut[i]) else capture_payload(values[i])
            for i in range(n)
        ]
        for r in range(n)
    ]


def _fast_allgather(values, op_fns, root, kind, clocks, group, network, tracer):
    n = clocks.size
    if n == 1:
        return [[values[0]]], clocks.copy()
    b = np.fromiter(
        (payload_nbytes(v) for v in values), dtype=np.float64, count=n
    )
    idx = np.arange(n)
    c = clocks.copy()
    if _is_pow2(n):
        # Recursive doubling: partner r^mask, each side sends its
        # contiguous block run [base, base + mask).
        prefix = np.concatenate([[0.0], np.cumsum(b)])
        mask = 1
        while mask < n:
            partner = idx ^ mask
            base = idx & ~(mask - 1)
            chunk = prefix[base + mask] - prefix[base]
            t = network.transfer_times(group[partner], group, chunk[partner])
            c = np.maximum(c, c[partner] + t)
            _trace(tracer, group, group[partner], chunk, kind)
            mask <<= 1
    else:
        # Bruck: after round k rank r holds blocks r … r+2^k-1 (mod n) and
        # ships the first `count` of them pofk ranks down the ring.
        prefix2 = np.concatenate([[0.0], np.cumsum(np.concatenate([b, b]))])
        have = 1
        pofk = 1
        while have < n:
            count = min(pofk, n - have)
            window = prefix2[idx + count] - prefix2[idx]
            src = (idx + pofk) % n
            dst = (idx - pofk) % n
            t = network.transfer_times(group[src], group, window[src])
            c = np.maximum(c, c[src] + t)
            _trace(tracer, group, group[dst], window, kind)
            have += count
            pofk <<= 1
    return _allgather_results(values), c


def _fast_alltoall(values, op_fns, root, kind, clocks, group, network, tracer):
    n = clocks.size
    if n == 1:
        return [[values[0][0]]], clocks.copy()
    nbytes = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        row = values[s]
        for d in range(n):
            nbytes[s, d] = payload_nbytes(row[d])
    idx = np.arange(n)
    c = clocks.copy()
    for step in range(1, n):
        src = (idx - step) % n
        dst = (idx + step) % n
        t = network.transfer_times(group[src], group, nbytes[src, idx])
        c = np.maximum(c, c[src] + t)
        _trace(tracer, group, group[dst], nbytes[idx, dst], kind)
    results = [
        [
            values[s][r] if s == r else capture_payload(values[s][r])
            for s in range(n)
        ]
        for r in range(n)
    ]
    return results, c


def _fast_barrier(values, op_fns, root, kind, clocks, group, network, tracer):
    n = clocks.size
    c = clocks.copy()
    if n == 1:
        return [None], c
    idx = np.arange(n)
    zeros = np.zeros(n, dtype=np.float64)
    step = 1
    while step < n:
        src = (idx - step) % n
        dst = (idx + step) % n
        t = network.transfer_times(group[src], group, zeros)
        c = np.maximum(c, c[src] + t)
        _trace(tracer, group, group[dst], zeros, kind)
        step <<= 1
    return [None] * n, c


#: Collectives with a vectorized fast path (any communicator whose group is
#: registered with the engine). Linear gather/scatter and scan keep the
#: generator cascade only — they are cheap and rare in the workloads this
#: engine runs.
FAST_COLLECTIVES: dict[str, Callable] = {
    "bcast": _fast_bcast,
    "reduce": _fast_reduce,
    "allreduce": _fast_allreduce,
    "allgather": _fast_allgather,
    "alltoall": _fast_alltoall,
    "barrier": _fast_barrier,
}


def execute_fast_collective(
    kind: str,
    *,
    values: list,
    op_fns: list,
    root: int,
    trace_kind: str,
    clocks: np.ndarray,
    group: np.ndarray,
    network,
    tracer,
):
    """Run one gathered collective; returns ``(results, new_clocks)``.

    ``values``/``op_fns``/``clocks`` are indexed by group rank, ``root`` is
    group-local, and ``group`` maps group rank → world rank (the identity
    for the world communicator).
    """
    return FAST_COLLECTIVES[kind](
        values, op_fns, root, trace_kind, clocks, group, network, tracer
    )


def execute_fused_window(
    specs: list,
    *,
    clocks: np.ndarray,
    group: np.ndarray,
    network,
    tracer,
):
    """Price a fused window of back-to-back same-group collectives.

    ``specs`` is an ordered list of ``(kind, values, op_fns, root,
    trace_kind)`` tuples, each shaped exactly like one
    :func:`execute_fast_collective` call. The window runs in one pass:
    every collective's output clocks feed the next one's input clocks
    without the engine re-gathering the group in between, which is
    bit-identical to executing them sequentially — all members enter the
    window synchronized, so no other event can interleave. Returns
    ``(results_per_spec, new_clocks)`` where ``results_per_spec[j]`` is
    spec ``j``'s per-group-rank result list.

    The steady-state kernel uses this for a :class:`~repro.simmpi.engine.
    KernelLoop`'s trailing collective window; the generator cascade and the
    per-collective fast path remain the reference semantics.
    """
    results_per_spec = []
    for kind, values, op_fns, root, trace_kind in specs:
        results, clocks = FAST_COLLECTIVES[kind](
            values, op_fns, root, trace_kind, clocks, group, network, tracer
        )
        results_per_spec.append(results)
    return results_per_spec, clocks
