"""Schedule traces: the compact record of one explored interleaving.

The engine's scheduler is a batched run-until-blocked loop that drains
every batch in ascending rank order — one canonical, deterministic
schedule. The interleaving-exploration mode (``Engine(schedule_seed=...)``)
permutes the drain order of each batch among its causally-unordered
ranks; a :class:`ScheduleTrace` records exactly which permutations were
applied, as ``(batch ordinal, permutation)`` entries for the batches that
actually deviated from canonical order.

A trace makes any explored schedule *replay-exact* two ways:

* re-running with the same ``schedule_seed`` regenerates the identical
  permutation stream (batch compositions are a pure function of the
  schedule, which is a pure function of seed + programs);
* re-running with ``Engine(schedule_trace=...)`` applies the recorded
  permutations directly — no RNG involved — which is what repro files
  and the schedule shrinker use. A trace entry whose permutation length
  no longer matches its batch (possible after the shrinker reverts an
  earlier batch to canonical order, shifting what runs when) is skipped:
  the batch drains canonically, so every partial trace still describes a
  legal MPI schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScheduleTrace:
    """Per-batch permutations applied by one explored scheduler run.

    ``entries`` is a tuple of ``(batch_ordinal, permutation)`` pairs in
    strictly increasing ordinal order. The permutation indexes into the
    batch *after* its canonical ascending sort, so entry
    ``(3, (2, 0, 1))`` means "batch 3 held three ranks; drain the third,
    first, second of the sorted order". Batches without an entry drained
    canonically. Hash/equality use only ``entries``.
    """

    entries: tuple[tuple[int, tuple[int, ...]], ...] = ()
    _by_ordinal: dict = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        normalized = []
        last = -1
        for ordinal, perm in self.entries:
            ordinal = int(ordinal)
            perm = tuple(int(i) for i in perm)
            if ordinal <= last:
                raise ValueError(
                    f"trace ordinals must strictly increase, got {ordinal} "
                    f"after {last}"
                )
            if sorted(perm) != list(range(len(perm))):
                raise ValueError(
                    f"entry for batch {ordinal} is not a permutation: {perm}"
                )
            last = ordinal
            normalized.append((ordinal, perm))
        object.__setattr__(self, "entries", tuple(normalized))
        object.__setattr__(
            self, "_by_ordinal", {o: p for o, p in normalized}
        )

    @property
    def n_permuted(self) -> int:
        """How many batches deviate from canonical order."""
        return len(self.entries)

    def permutation_for(self, ordinal: int) -> tuple[int, ...] | None:
        """The recorded permutation of batch ``ordinal`` (None = canonical)."""
        return self._by_ordinal.get(ordinal)

    def without_ordinal(self, ordinal: int) -> "ScheduleTrace":
        """A copy with batch ``ordinal`` reverted to canonical order (the
        schedule shrinker's one-step simplification)."""
        return ScheduleTrace(
            tuple(e for e in self.entries if e[0] != ordinal)
        )

    def to_jsonable(self) -> list:
        """JSON-serializable form (repro files)."""
        return [[ordinal, list(perm)] for ordinal, perm in self.entries]

    @classmethod
    def from_jsonable(cls, data) -> "ScheduleTrace":
        """Inverse of :meth:`to_jsonable` (validates on construction)."""
        return cls(tuple((int(o), tuple(int(i) for i in p)) for o, p in data))

    @classmethod
    def from_entries(cls, entries) -> "ScheduleTrace":
        """Build from any iterable of ``(ordinal, permutation)`` pairs."""
        return cls(tuple(entries))


__all__ = ["ScheduleTrace"]
