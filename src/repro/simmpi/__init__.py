"""Simulated MPI runtime: a deterministic discrete-event MPI in pure Python.

This package substitutes for the paper's MPICH2/TSUBAME2 execution
environment. Rank programs are generator coroutines scheduled by
:class:`~repro.simmpi.engine.Engine`; the API mirrors mpi4py (``send`` /
``recv`` / ``isend`` / collectives / ``split``), collectives use MPICH2's
algorithms so traces show the same structure the paper reports, and every
message is byte-accurately recorded by
:class:`~repro.simmpi.tracing.TraceRecorder`.
"""

from repro.simmpi.comm import Communicator
from repro.simmpi.config import EngineConfig
from repro.simmpi.engine import Engine, KernelLoop, RankContext, run_program
from repro.simmpi.schedule import ScheduleTrace
from repro.simmpi.shard import ShardedEngine, partition_workload
from repro.simmpi.errors import (
    CommunicatorError,
    DeadlockError,
    RankFailedError,
    SimMPIError,
)
from repro.simmpi.network import LinkParameters, NetworkModel, zero_latency_network
from repro.simmpi.request import (
    ANY_SOURCE,
    ANY_TAG,
    MessagePool,
    MessageView,
    PersistentRecvRequest,
    PersistentSendRequest,
    Status,
    nbytes_of,
)
from repro.simmpi.tracing import SparseTraceRecorder, TraceRecorder
from repro.simmpi import collectives

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "CommunicatorError",
    "DeadlockError",
    "Engine",
    "EngineConfig",
    "KernelLoop",
    "LinkParameters",
    "MessagePool",
    "MessageView",
    "NetworkModel",
    "PersistentRecvRequest",
    "PersistentSendRequest",
    "RankContext",
    "RankFailedError",
    "ScheduleTrace",
    "ShardedEngine",
    "SimMPIError",
    "SparseTraceRecorder",
    "Status",
    "TraceRecorder",
    "collectives",
    "nbytes_of",
    "partition_workload",
    "run_program",
    "zero_latency_network",
]
