"""Network timing models for the simulated MPI runtime.

The engine asks the network model one question: *how long does a message of
``n`` bytes take from world rank ``src`` to world rank ``dst``?*  The answer
uses the classic latency/bandwidth (alpha-beta) model, with separate
parameters for intra-node (shared-memory) and inter-node (interconnect)
transfers, which is the level of fidelity the paper's evaluation needs —
traces depend on byte counts and placement, timing shape on alpha-beta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.util.validation import check_positive


class RankLocator(Protocol):
    """Anything that can map a world rank to a node index."""

    def node_of_rank(self, rank: int) -> int:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LinkParameters:
    """Alpha-beta parameters of one link class."""

    latency_s: float
    bandwidth_Bps: float

    def __post_init__(self) -> None:
        check_positive("latency_s", self.latency_s, strict=False)
        check_positive("bandwidth_Bps", self.bandwidth_Bps)

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over this link class."""
        return self.latency_s + nbytes / self.bandwidth_Bps


class NetworkModel:
    """Two-level (intra-node vs inter-node) alpha-beta network model.

    Parameters
    ----------
    intra_node, inter_node:
        Link parameters for the two classes of transfers.
    locator:
        Optional rank→node mapping. Without one, every rank is assumed to be
        on its own node (all transfers inter-node), which is the safe default
        for unit tests that do not care about placement.
    """

    def __init__(
        self,
        intra_node: LinkParameters | None = None,
        inter_node: LinkParameters | None = None,
        locator: RankLocator | Callable[[int], int] | None = None,
    ):
        # Defaults approximate TSUBAME2: shared-memory copies vs dual-rail
        # QDR InfiniBand (Table I: 4 GB/s x 2).
        self.intra_node = intra_node or LinkParameters(5e-7, 6.0e9)
        self.inter_node = inter_node or LinkParameters(2e-6, 8.0e9)
        if locator is None:
            self._node_of = lambda rank: rank
        elif callable(locator) and not hasattr(locator, "node_of_rank"):
            self._node_of = locator
        else:
            self._node_of = locator.node_of_rank

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` under the configured placement."""
        return self._node_of(rank)

    def same_node(self, src: int, dst: int) -> bool:
        """Whether two ranks share a node (and hence the intra-node link)."""
        return self._node_of(src) == self._node_of(dst)

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Transfer time of an ``nbytes`` message from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        link = self.intra_node if self.same_node(src, dst) else self.inter_node
        return link.transfer_time(nbytes)


def zero_latency_network() -> NetworkModel:
    """A network that moves everything instantly (pure-ordering tests)."""
    fast = LinkParameters(0.0, float("inf"))
    return NetworkModel(intra_node=fast, inter_node=fast)
