"""Network timing models for the simulated MPI runtime.

The engine asks the network model one question: *how long does a message of
``n`` bytes take from world rank ``src`` to world rank ``dst``?*  The answer
uses the classic latency/bandwidth (alpha-beta) model, with separate
parameters for intra-node (shared-memory) and inter-node (interconnect)
transfers, which is the level of fidelity the paper's evaluation needs —
traces depend on byte counts and placement, timing shape on alpha-beta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.util.validation import check_positive


class RankLocator(Protocol):
    """Anything that can map a world rank to a node index."""

    def node_of_rank(self, rank: int) -> int:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LinkParameters:
    """Alpha-beta parameters of one link class."""

    latency_s: float
    bandwidth_Bps: float

    def __post_init__(self) -> None:
        check_positive("latency_s", self.latency_s, strict=False)
        check_positive("bandwidth_Bps", self.bandwidth_Bps)

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over this link class."""
        return self.latency_s + nbytes / self.bandwidth_Bps


class NetworkModel:
    """Two-level (intra-node vs inter-node) alpha-beta network model.

    Parameters
    ----------
    intra_node, inter_node:
        Link parameters for the two classes of transfers.
    locator:
        Optional rank→node mapping. Without one, every rank is assumed to be
        on its own node (all transfers inter-node), which is the safe default
        for unit tests that do not care about placement.
    """

    def __init__(
        self,
        intra_node: LinkParameters | None = None,
        inter_node: LinkParameters | None = None,
        locator: RankLocator | Callable[[int], int] | None = None,
    ):
        # Defaults approximate TSUBAME2: shared-memory copies vs dual-rail
        # QDR InfiniBand (Table I: 4 GB/s x 2).
        self.intra_node = intra_node or LinkParameters(5e-7, 6.0e9)
        self.inter_node = inter_node or LinkParameters(2e-6, 8.0e9)
        if locator is None:
            self._node_of = _own_node
        elif callable(locator) and not hasattr(locator, "node_of_rank"):
            self._node_of = locator
        else:
            self._node_of = locator.node_of_rank
        self._node_vector: np.ndarray | None = None

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` under the configured placement."""
        return self._node_of(rank)

    def same_node(self, src: int, dst: int) -> bool:
        """Whether two ranks share a node (and hence the intra-node link)."""
        return self._node_of(src) == self._node_of(dst)

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Transfer time of an ``nbytes`` message from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        link = self.intra_node if self.same_node(src, dst) else self.inter_node
        return link.transfer_time(nbytes)

    # -- vectorized API (fast collectives + batched p2p pricing) ------------

    def node_vector(self, nranks: int) -> np.ndarray:
        """rank → node for ranks ``0 … nranks-1`` as one int64 vector.

        Cached (and grown on demand); callers must treat the result as
        read-only. The returned array may be longer than ``nranks``.
        """
        if self._node_vector is None or self._node_vector.size < nranks:
            node_of = self._node_of
            self._node_vector = np.fromiter(
                (node_of(r) for r in range(nranks)), dtype=np.int64, count=nranks
            )
        return self._node_vector

    def transfer_times(self, src, dests, nbytes) -> np.ndarray:
        """Vectorized :meth:`transfer_time`: times from ``src`` to ``dests``.

        ``src`` may be a scalar rank or an array broadcastable against
        ``dests``; ``nbytes`` may be a scalar or a per-message array. One
        pass over the cached rank → node vector replaces per-message
        ``node_of`` calls; entries with ``src == dst`` are zero, matching
        the scalar path bit for bit (same latency + bytes/bandwidth
        arithmetic in IEEE doubles). Both engine fast paths lean on that
        bit-identity: the collective emulations price whole tree/ring
        levels per call, and the batched p2p path prices each scheduler
        batch's send wave per call.
        """
        srcs = np.asarray(src, dtype=np.int64)
        dsts = np.asarray(dests, dtype=np.int64)
        top = int(max(srcs.max(initial=0), dsts.max(initial=0))) + 1
        nodes = self.node_vector(top)
        same = nodes[srcs] == nodes[dsts]
        nb = np.asarray(nbytes, dtype=np.float64)
        intra, inter = self.intra_node, self.inter_node
        out = np.where(
            same,
            intra.latency_s + nb / intra.bandwidth_Bps,
            inter.latency_s + nb / inter.bandwidth_Bps,
        )
        return np.where(srcs == dsts, 0.0, out)


def _own_node(rank: int) -> int:
    """Default locator: every rank on its own node (picklable, unlike a
    lambda — the parallel campaign runner ships network models to worker
    processes)."""
    return rank


def zero_latency_network() -> NetworkModel:
    """A network that moves everything instantly (pure-ordering tests)."""
    fast = LinkParameters(0.0, float("inf"))
    return NetworkModel(intra_node=fast, inter_node=fast)
