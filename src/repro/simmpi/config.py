"""One frozen, picklable configuration object for the simulation engine.

:class:`EngineConfig` consolidates the engine's keyword sprawl — the
fast-path gates (``use_fast_collectives`` / ``use_batched_p2p`` /
``use_kernels``), the pool sizing, the interleaving-exploration knobs and
the failure/observer gates — into one validated dataclass. It exists so
any consumer that replicates engines (the sharded multi-process engine's
workers, the fuzz executor, replay tooling) ships *one object* across a
process boundary instead of replaying keyword arguments, with the
guarantee that two engines built from equal configs behave identically.

``Engine(nranks, config=...)`` is the primary constructor; the legacy
keyword arguments keep working through a shim that builds a config (see
:meth:`Engine.__init__ <repro.simmpi.engine.Engine.__init__>`). Passing
both a config and legacy keywords is an error — silently merging them
would make "which flag won?" ambiguous.

The config is intentionally *immutable and value-like*: ``frozen=True``
makes it hashable and safe to share, and every field is built from
picklable primitives (a recorded
:class:`~repro.simmpi.schedule.ScheduleTrace` is a tuple-of-tuples
dataclass). The one engine hook that is *not* here is ``message_log`` —
it is a live observer object with callbacks, attached to a constructed
engine, not configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simmpi.schedule import ScheduleTrace


@dataclass(frozen=True)
class EngineConfig:
    """Validated, picklable engine construction parameters.

    Parameters mirror the engine's documented keywords exactly:

    use_fast_collectives:
        Allow collectives on registered groups to take the vectorized
        fast path (``False`` pins the p2p generator cascade).
    use_batched_p2p:
        Price p2p sends in vectorized waves (``False`` pins the scalar
        per-message reference).
    use_kernels:
        Allow :class:`~repro.simmpi.engine.KernelLoop` steady states to
        compile into closed-form whole-world kernels.
    pool_capacity:
        Initial :class:`~repro.simmpi.request.MessagePool` slot count
        (the pool doubles on demand).
    schedule_seed:
        Seeded interleaving exploration (``None`` = canonical drain).
    schedule_trace:
        Recorded :class:`~repro.simmpi.schedule.ScheduleTrace` to replay
        instead of drawing permutations from the seed.
    failure_ranks:
        Ranks that fail at their next engine interaction. Stored as a
        ``frozenset``; the engine copies it into its mutable
        ``failure_ranks`` set (failure layers arm ranks mid-run).
    track_recv_counts:
        Enable per-channel consumed-receive counting (the protocol
        layer's receiver-position sidecars).
    """

    use_fast_collectives: bool = True
    use_batched_p2p: bool = True
    use_kernels: bool = True
    pool_capacity: int = 512
    schedule_seed: int | None = None
    schedule_trace: "ScheduleTrace | None" = None
    failure_ranks: frozenset[int] = field(default_factory=frozenset)
    track_recv_counts: bool = False

    def __post_init__(self):
        if not isinstance(self.pool_capacity, int) or self.pool_capacity < 1:
            raise ValueError(
                f"pool_capacity must be a positive int, got {self.pool_capacity!r}"
            )
        if self.schedule_seed is not None and not isinstance(self.schedule_seed, int):
            raise ValueError(
                f"schedule_seed must be an int or None, got {self.schedule_seed!r}"
            )
        # Coerce any iterable of ranks to a hashable frozenset so configs
        # built with a plain set/list/tuple stay frozen and hashable.
        if not isinstance(self.failure_ranks, frozenset):
            object.__setattr__(self, "failure_ranks", frozenset(self.failure_ranks))
        if any(not isinstance(r, int) or r < 0 for r in self.failure_ranks):
            raise ValueError(
                f"failure_ranks must be non-negative ints, got {sorted(self.failure_ranks)!r}"
            )


__all__ = ["EngineConfig"]
