"""Failure-contained recovery: restore one cluster, replay, verify, resume.

The recovery pipeline after a node failure at iteration ``T`` (§II-B2's
promise: "only the processes in this cluster have to rollback"):

1. **containment** — the restart set is the union of the L1 clusters of the
   processes on the failed nodes (one cluster, when clusters are
   node-aligned);
2. **restore** — failed nodes' SSDs are gone, so their ranks' checkpoints
   are *decoded* from the surviving shards of their L2 encoding clusters;
   co-cluster ranks on healthy nodes restore from their local copies;
3. **replay** — the restart set re-executes iterations ``[v, T)`` (``v`` =
   the cluster's last checkpoint) inside a private engine, pulling messages
   from survivors out of the sender-based log and suppressing messages
   toward survivors;
4. **verification** — suppressed sends are compared against what survivors
   actually received in the original run (send-determinism check), and the
   caller can compare recovered states with a failure-free reference;
5. **resume** — recovered states merge with the survivors' live states and
   the application continues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.failures.events import FailureEvent
from repro.hydee.logging import ReplayMismatchError
from repro.hydee.protocol import ProtocolRunResult
from repro.hydee.replay import OutboundRecord, ReplayCommunicator
from repro.machine.machine import Machine
from repro.simmpi.engine import Engine


@dataclass
class RecoveryResult:
    """Outcome of one contained recovery."""

    restarted_ranks: list[int]
    restarted_clusters: list[int]
    rollback_iteration: int
    failure_iteration: int
    recovered_states: dict[int, dict]
    restore_levels: dict[int, str]
    restore_seconds: float
    outbound: list[OutboundRecord] = field(default_factory=list)

    @property
    def restart_fraction(self) -> float:
        """Restarted ranks / total — the paper's recovery-cost dimension."""
        return len(self.restarted_ranks) / self._total_ranks

    _total_ranks: int = 0

    def decoded_ranks(self) -> list[int]:
        """Ranks whose checkpoint had to be erasure-decoded (node lost)."""
        return [r for r, lvl in self.restore_levels.items() if lvl == "decoded"]


class ContainedRecoveryError(Exception):
    """Recovery is impossible (catastrophic: too many shards lost)."""


class RecoveryManager:
    """Executes contained recoveries against a finished protocol run."""

    def __init__(self, sim, machine: Machine, run: ProtocolRunResult):
        self.sim = sim
        self.machine = machine
        self.run = run
        self.clustering = run.checkpointer.clustering

    # -- step 1: containment ------------------------------------------------

    def restart_set(self, event: FailureEvent) -> tuple[list[int], list[int]]:
        """(ranks, L1 clusters) that must roll back for ``event``."""
        if event.kind == "soft":
            failed = [event.process]
        else:
            failed = [
                r for node in event.nodes for r in self.machine.ranks_of_node(node)
            ]
        clusters = sorted({self.clustering.l1_of(r) for r in failed})
        ranks = sorted(
            int(r)
            for c in clusters
            for r in self.clustering.l1_members(c)
        )
        return ranks, clusters

    # -- steps 2–4: recover ---------------------------------------------------

    def recover(
        self,
        event: FailureEvent,
        *,
        failure_iteration: int,
        wipe_storage: bool = True,
    ) -> RecoveryResult:
        """Run the full contained recovery for ``event``.

        ``failure_iteration`` is the application iteration the failure
        struck at (survivors' states are at this iteration). With
        ``wipe_storage`` the failed nodes' SSDs are cleared first, forcing
        the erasure-decode path exactly as a real node loss would.
        """
        ranks, clusters = self.restart_set(event)
        versions = {
            c: self.run.latest_checkpoint(c, at_or_before=failure_iteration)
            for c in clusters
        }
        if len(set(versions.values())) != 1:
            # Clusters checkpoint independently; co-failing clusters may
            # hold different versions. Replaying from mixed fronts requires
            # inter-failed-cluster logs we deliberately do not keep (HydEE
            # only logs *inter*-cluster traffic of survivors); fall back to
            # the newest common version.
            version = min(versions.values())
        else:
            version = next(iter(versions.values()))

        if wipe_storage and event.kind == "node":
            for node in event.nodes:
                self.machine.wipe_node(node)

        # Restore every restart rank's checkpoint (decode where needed).
        recovered: dict[int, dict] = {}
        levels: dict[int, str] = {}
        restore_seconds = 0.0
        from repro.ftilib.checkpointer import RestoreError

        for rank in ranks:
            try:
                state, seconds, level = self.run.checkpointer.restore(rank, version)
            except RestoreError as exc:
                raise ContainedRecoveryError(
                    f"cannot restore rank {rank} v{version}: {exc}"
                ) from exc
            recovered[rank] = state
            levels[rank] = level
            restore_seconds += seconds

        # Replay the window [version, failure_iteration).
        outbound: list[OutboundRecord] = []
        if failure_iteration > version:
            recovered = self._replay(
                ranks, recovered, version, failure_iteration, outbound
            )

        result = RecoveryResult(
            restarted_ranks=ranks,
            restarted_clusters=clusters,
            rollback_iteration=version,
            failure_iteration=failure_iteration,
            recovered_states=recovered,
            restore_levels=levels,
            restore_seconds=restore_seconds,
            outbound=outbound,
        )
        result._total_ranks = self.clustering.n
        return result

    def _replay(
        self,
        ranks: list[int],
        checkpoint_states: dict[int, dict],
        from_iteration: int,
        to_iteration: int,
        outbound: list[OutboundRecord],
    ) -> dict[int, dict]:
        """Re-execute ``ranks`` over [from_iteration, to_iteration)."""
        members = sorted(ranks)
        member_set = set(members)
        # Receive positions and collective counters from the sidecar.
        cursor_counts: dict[tuple[int, int], int] = {}
        coll_seqs: dict[int, int] = {}
        for rank in members:
            meta = self.run.checkpointer.sidecar_meta(rank, from_iteration)
            coll_seqs[rank] = int(meta.get("world_coll_seq", 0))
            for (src, dst), count in meta.get("recv_counts", {}).items():
                if dst == rank and src not in member_set:
                    cursor_counts[(src, dst)] = count
        cursor = self.run.log.cursor(cursor_counts)

        sim = self.sim

        def make_replay_program(local_index: int):
            original = members[local_index]

            def program(ctx):
                comm = ReplayCommunicator(
                    ctx,
                    members,
                    sim.grid.nranks,
                    cursor,
                    outbound,
                    coll_seq=coll_seqs[original],
                )
                from repro.apps.tsunami import clone_state

                state = clone_state(checkpoint_states[original])
                while state["iteration"] < to_iteration:
                    yield from sim.step(comm, state)
                return state

            return program

        engine = Engine(len(members), network=self.machine.network)
        programs = [make_replay_program(i) for i in range(len(members))]
        results = engine.run(programs)
        return {members[i]: results[i] for i in range(len(members))}

    # -- step 4: verification ------------------------------------------------

    def verify_send_determinism(self, result: RecoveryResult) -> None:
        """Check replayed outbound messages against the original log.

        Every suppressed send toward a survivor must match — tag, size and
        payload — the message the survivor actually received in the original
        run (this is the send-determinism assumption HydEE rests on).
        Raises :class:`~repro.hydee.logging.ReplayMismatchError` otherwise.
        """
        version = result.rollback_iteration
        # Alignment anchor: the *receiver's* checkpointed receive position on
        # the channel. Every cluster checkpoints at the same global cadence,
        # so each surviving receiver has a version-`version` sidecar whose
        # recv_counts say how many channel messages predate the rollback
        # point; the replayed sends must equal the logged entries right
        # after that position.
        by_channel: dict[tuple[int, int], list[OutboundRecord]] = {}
        for record in result.outbound:
            by_channel.setdefault((record.src, record.dst), []).append(record)
        for (src, dst), records in by_channel.items():
            logged = self.run.log.channel(src, dst)
            base = self.run.log.base_offset(src, dst)
            meta = self.run.checkpointer.sidecar_meta(dst, version)
            start = int(meta.get("recv_counts", {}).get((src, dst), 0))
            if start < base:
                raise ReplayMismatchError(
                    f"channel {src}->{dst}: verification window starts at "
                    f"#{start} but the log was truncated to #{base}"
                )
            if base + len(logged) < start + len(records):
                raise ReplayMismatchError(
                    f"channel {src}->{dst}: replay produced {len(records)} "
                    f"sends from position {start}, log holds only "
                    f"{base + len(logged)}"
                )
            window = logged[start - base : start - base + len(records)]
            for entry, record in zip(window, records):
                if entry.tag != record.tag or entry.nbytes != record.nbytes:
                    raise ReplayMismatchError(
                        f"channel {src}->{dst}: tag/size mismatch "
                        f"(logged tag {entry.tag}/{entry.nbytes} B, replayed "
                        f"tag {record.tag}/{record.nbytes} B)"
                    )
                if not _payloads_equal(entry.payload, record.payload):
                    raise ReplayMismatchError(
                        f"channel {src}->{dst}: payload mismatch on replay"
                    )

    # -- step 5: resume ----------------------------------------------------------

    def merged_states(self, result: RecoveryResult) -> list[dict]:
        """Survivor states + recovered states, indexed by rank."""
        merged = list(self.run.states)
        for rank, state in result.recovered_states.items():
            merged[rank] = state
        return merged

    def resume(
        self, result: RecoveryResult, *, iterations: int
    ) -> list[dict]:
        """Continue the application to ``iterations`` from the merged states.

        Runs without protocol hooks (the caller can start a fresh protocol
        for the continuation); returns the final states.
        """
        merged = self.merged_states(result)
        for state in merged:
            if state["iteration"] != result.failure_iteration:
                raise ContainedRecoveryError(
                    "cannot resume: states are not aligned at the failure "
                    f"iteration {result.failure_iteration}"
                )
        engine = Engine(self.sim.grid.nranks, network=self.machine.network)
        program = self.sim.make_program(
            iterations=iterations, initial_states=merged
        )
        return engine.run(program)


def _payloads_equal(a, b) -> bool:
    """Structural equality that understands NumPy leaves."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and bool((a == b).all())
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _payloads_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _payloads_equal(x, y) for x, y in zip(a, b)
        )
    return a == b
