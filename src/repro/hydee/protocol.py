"""The hybrid CR protocol: cluster-coordinated checkpoints + partial logging.

This is the HydEE/FTI composition of §II-C run end to end:

* every ``checkpoint_every`` iterations, each L1 cluster synchronizes
  internally (a barrier on its cluster communicator — *not* a global
  coordination), every rank writes its state to the node SSD, and each L2
  encoding cluster Reed–Solomon-encodes the freshly written checkpoints;
* throughout the run, the engine's send path logs every inter-L1-cluster
  payload into the :class:`~repro.hydee.logging.MessageLog`;
* each checkpoint stores a protocol sidecar (per-channel receive counts and
  the world communicator's collective counter) — the receiver positions
  that recovery replays from.

Both engine hooks this protocol installs are *observers of views, never of
pool slots*: the message log records payload snapshots at send-post time
(before the message enters the engine's recycling
:class:`~repro.simmpi.request.MessagePool`), and ``track_recv_counts``
counts receives as their waits consume them into
:class:`~repro.simmpi.request.MessageView`\\ s. Slot reuse inside the pool
is therefore invisible to checkpoint sidecars and to replay — and so is
the *posting shape*: wave-native applications (``use_waves=True``, the
default) post their halo loops as persistent-request waves, whose sends
run through the same logging post path and whose drained receives are
consumed into the same views at the same per-channel positions, so logs,
receive counts, sidecars and clocks are bit-for-bit those of the
per-message run (pinned by ``tests/hydee/test_protocol.py``). Replay
windows alone force the per-message shape, via
:attr:`ReplayCommunicator.supports_waves
<repro.hydee.replay.ReplayCommunicator.supports_waves>`.

`run_with_protocol` drives a full application execution and returns
everything recovery needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.clustering.base import Clustering
from repro.ftilib.checkpointer import MultilevelCheckpointer, fti_rs_code
from repro.hydee.logging import MessageLog
from repro.machine.machine import Machine
from repro.models.encoding_time import EncodingTimeModel
from repro.simmpi.engine import Engine
from repro.simmpi.tracing import TraceRecorder


@dataclass
class ProtocolRunResult:
    """Everything a recovery needs from a protocol-supervised run."""

    states: list[dict]
    log: MessageLog
    checkpointer: MultilevelCheckpointer
    checkpoint_versions: dict[int, list[int]] = field(default_factory=dict)
    engine: Engine | None = None
    iterations: int = 0

    def latest_checkpoint(self, l1_cluster: int, *, at_or_before: int) -> int:
        """Newest *restorable* checkpoint of ``l1_cluster`` not newer than
        ``at_or_before`` (the failure iteration).

        Versions rotated out of the SSDs by the ``keep_versions`` policy are
        excluded — a failure striking long after a version expired cannot
        roll back to it.
        """
        members = self.checkpointer.clustering.l1_members(l1_cluster)
        available = set(self.checkpointer.versions_of(int(members[0])))
        versions = [
            v for v in self.checkpoint_versions.get(l1_cluster, [])
            if v <= at_or_before and v in available
        ]
        if not versions:
            raise ValueError(
                f"L1 cluster {l1_cluster} has no restorable checkpoint at or "
                f"before iteration {at_or_before} (older versions expired)"
            )
        return max(versions)

    def truncate_log(self, *, keep_from_version: int | None = None) -> int:
        """Garbage-collect log entries no replay can ever request.

        Safe positions are the per-channel receive counts recorded in each
        receiver's checkpoint of ``keep_from_version`` (default: the oldest
        version still restorable by any cluster — exactly the oldest
        possible rollback point). Returns the bytes freed from sender
        memory.
        """
        clustering = self.checkpointer.clustering
        if keep_from_version is None:
            keep_from_version = min(
                min(self.checkpointer.versions_of(rank) or [0])
                for rank in range(clustering.n)
            )
        safe: dict[tuple[int, int], int] = {}
        labels = clustering.l1_labels
        for rank in range(clustering.n):
            try:
                meta = self.checkpointer.sidecar_meta(rank, keep_from_version)
            except Exception:
                continue  # rank lacks this version: keep its channels whole
            for (src, dst), count in meta.get("recv_counts", {}).items():
                if dst == rank and labels[src] != labels[dst]:
                    safe[(src, dst)] = int(count)
        return self.log.truncate(safe)

    @property
    def logged_fraction_observed(self) -> float:
        """Logged bytes / total traced bytes (when a tracer was attached)."""
        if self.engine is None or self.engine.tracer is None:
            raise ValueError("run was executed without a tracer")
        total = self.engine.tracer.total_bytes
        return self.log.logged_bytes / total if total else 0.0


class HybridCRProtocol:
    """Builds the per-iteration hook wiring FTI + HydEE into an application."""

    def __init__(
        self,
        machine: Machine,
        clustering: Clustering,
        *,
        checkpoint_every: int = 10,
        checkpoint_at_zero: bool = True,
        code_factory=fti_rs_code,
        time_model: EncodingTimeModel | None = None,
        keep_versions: int = 4,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.machine = machine
        self.clustering = clustering
        self.checkpoint_every = checkpoint_every
        self.checkpoint_at_zero = checkpoint_at_zero
        self.checkpointer = MultilevelCheckpointer(
            machine,
            clustering,
            code_factory=code_factory,
            time_model=time_model,
            keep_versions=keep_versions,
        )
        self.log = MessageLog(clustering.l1_labels)
        self.checkpoint_versions: dict[int, list[int]] = {}

    # -- hook ---------------------------------------------------------------

    def _should_checkpoint(self, iteration: int) -> bool:
        if iteration == 0:
            return self.checkpoint_at_zero
        return iteration % self.checkpoint_every == 0

    def make_hook(self):
        """The ``hook(ctx, comm, sim, state, iteration)`` generator for apps."""

        def hook(ctx, comm, sim, state, iteration):
            # Cluster communicators are created once, collectively, on the
            # first hook invocation (every rank reaches it at iteration 0).
            if "l1_comm" not in ctx.user:
                l1 = int(self.clustering.l1_labels[comm.rank])
                ctx.user["l1_comm"] = yield from comm.split(color=l1)
                l2 = int(self.clustering.l2_labels[comm.rank])
                ctx.user["l2_comm"] = yield from comm.split(color=l2)
            if not self._should_checkpoint(iteration):
                return
            rank = comm.rank
            l1_comm = ctx.user["l1_comm"]
            l2_comm = ctx.user["l2_comm"]

            # Phase 1 — intra-cluster coordination (no global barrier).
            yield from l1_comm.barrier()

            # Phase 2 — L1 local write, with the protocol sidecar recovery
            # needs: receive positions and the collective counter.
            recv_counts = {
                (src, dst): count
                for (src, dst), count in ctx.engine.recv_counts.items()
                if dst == rank
            }
            seconds = self.checkpointer.save_local(
                rank,
                state,
                version=iteration,
                meta={
                    "recv_counts": recv_counts,
                    "world_coll_seq": comm._coll_seq,
                },
            )
            ctx.advance(seconds)

            # Phase 3 — all members stored before the encoder runs.
            yield from l2_comm.barrier()
            members = self.clustering.l2_members(
                int(self.clustering.l2_labels[rank])
            )
            if rank == int(members.min()):
                encode_seconds = self.checkpointer.encode_cluster(
                    int(self.clustering.l2_labels[rank]), iteration
                )
            else:
                encode_seconds = None
            # Every member is busy for the duration of the cluster encode.
            if encode_seconds is None:
                size = members.size
                blob = self.checkpointer._state_meta[(rank, iteration)]["nbytes"]
                from repro.util.units import GiB

                encode_seconds = self.checkpointer.time_model.seconds(
                    size * blob / GiB, size
                )
            ctx.advance(encode_seconds)

            if rank == int(members.min()):
                l1 = int(self.clustering.l1_labels[rank])
                versions = self.checkpoint_versions.setdefault(l1, [])
                if iteration not in versions:
                    versions.append(iteration)

        return hook


def run_with_protocol(
    sim,
    machine: Machine,
    clustering: Clustering,
    *,
    iterations: int,
    checkpoint_every: int = 10,
    code_factory=fti_rs_code,
    time_model: EncodingTimeModel | None = None,
    trace: bool = False,
    keep_versions: int = 4,
) -> ProtocolRunResult:
    """Run ``sim`` under the hybrid protocol; returns the run artifacts.

    ``sim`` is a :class:`~repro.apps.tsunami.TsunamiSimulation` or
    :class:`~repro.apps.heat.HeatSimulation` (anything with ``make_program``
    and a ``grid``).
    """
    nranks = sim.grid.nranks
    if nranks != machine.nranks:
        raise ValueError(
            f"app uses {nranks} ranks, machine hosts {machine.nranks}"
        )
    protocol = HybridCRProtocol(
        machine,
        clustering,
        checkpoint_every=checkpoint_every,
        code_factory=code_factory,
        time_model=time_model,
        keep_versions=keep_versions,
    )
    tracer = TraceRecorder(nranks) if trace else None
    engine = Engine(nranks, network=machine.network, tracer=tracer)
    engine.message_log = protocol.log
    # The checkpoint sidecars snapshot per-channel receive positions, so
    # this run needs the engine's (opt-in) receive counting; together with
    # the message log it pins every collective to the per-message path.
    engine.track_recv_counts = True
    program = sim.make_program(iterations=iterations, hook=protocol.make_hook())
    states = engine.run(program)
    return ProtocolRunResult(
        states=states,
        log=protocol.log,
        checkpointer=protocol.checkpointer,
        checkpoint_versions=protocol.checkpoint_versions,
        engine=engine,
        iterations=iterations,
    )
