"""Replay communicator: re-executes failed ranks against the message log.

During recovery, only the failed L1 cluster's ranks re-execute (that is the
whole point of failure containment). Their communication splits three ways:

* **intra-cluster** — both endpoints are replaying: routed through a small
  private engine, regenerating the messages exactly as in the original run;
* **incoming from survivors** — served from the sender-based log, starting
  at the receive positions stored in the checkpoint sidecar;
* **outgoing to survivors** — suppressed (survivors already received them)
  but *captured*, so send-determinism can be verified against the log.

The class subclasses :class:`~repro.simmpi.Communicator` and presents the
*original* rank/size to the application, so unmodified app code (including
collectives, which decompose into point-to-point) replays transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.hydee.logging import LogEntry, ReplayCursor
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.request import ANY_SOURCE, ANY_TAG, Request


class _ServedRequest(Request):
    """A receive pre-completed from the log (no engine involvement)."""

    __slots__ = ("payload",)

    def __init__(self, owner: int, payload: Any):
        super().__init__(owner)
        self.payload = payload
        self.done = True

    def describe(self) -> str:
        return "log-served recv"


class _SuppressedSend(Request):
    """A send to a survivor: captured, never transmitted."""

    __slots__ = ()

    def describe(self) -> str:
        return "suppressed send"


@dataclass
class OutboundRecord:
    """One suppressed (replayed) send toward a surviving rank."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int


class ReplayCommunicator(Communicator):
    """Communicator view used by replaying ranks.

    Parameters
    ----------
    ctx:
        Context within the *replay* engine (world of ``len(members)`` ranks).
    members:
        Sorted original ranks being replayed; ``members[ctx.rank]`` is this
        rank's original identity.
    original_size:
        World size of the original run (what ``.size`` must report).
    cursor:
        Log cursor positioned at the checkpointed receive counts.
    outbound:
        Shared list collecting suppressed sends (for verification).
    coll_seq:
        Restored collective counter from the checkpoint sidecar, so replayed
        collective tags match the logged ones exactly.
    """

    #: Wave-native applications must not compile persistent waves during
    #: replay: starts would bypass log serving and send suppression. The
    #: apps check this flag and fall back to the per-message exchange,
    #: which posts exactly the messages the original (wave or per-message)
    #: run logged — waves and per-message sequences are one workload.
    supports_waves = False

    def __init__(
        self,
        ctx: RankContext,
        members: list[int],
        original_size: int,
        cursor: ReplayCursor,
        outbound: list[OutboundRecord],
        *,
        coll_seq: int = 0,
    ):
        # The underlying engine communicator covers the replay world.
        super().__init__(ctx, 0, tuple(range(len(members))))
        self._members = list(members)
        self._member_index = {orig: i for i, orig in enumerate(members)}
        self._original_rank = members[ctx.rank]
        self._original_size = original_size
        self._cursor = cursor
        self._outbound = outbound
        self._coll_seq = coll_seq

    # -- identity seen by the application ------------------------------------

    @property
    def rank(self) -> int:  # type: ignore[override]
        """Original rank of this replaying process."""
        return self._original_rank

    @rank.setter
    def rank(self, value: int) -> None:
        # Base-class __init__ assigns the engine-local rank; ignore it.
        pass

    @property
    def size(self) -> int:  # type: ignore[override]
        """Original world size (what the app decomposes over)."""
        return self._original_size

    @size.setter
    def size(self, value: int) -> None:
        pass

    def _is_member(self, original_rank: int) -> bool:
        return original_rank in self._member_index

    # -- point-to-point overrides ----------------------------------------------

    def isend(self, obj, dest, tag=0, *, nbytes=None, kind="p2p"):
        from repro.simmpi.request import nbytes_of

        if not 0 <= dest < self._original_size:
            from repro.simmpi.errors import CommunicatorError

            raise CommunicatorError(
                f"rank {dest} out of range for world of {self._original_size}"
            )
        if self._is_member(dest):
            local = self._member_index[dest]
            req = yield from Communicator.isend(
                self, obj, local, tag, nbytes=nbytes, kind=kind
            )
            return req
        size = nbytes if nbytes is not None else nbytes_of(obj)
        self._outbound.append(
            OutboundRecord(
                src=self._original_rank,
                dst=dest,
                tag=tag,
                payload=obj,
                nbytes=int(size),
            )
        )
        return _SuppressedSend(self.ctx.rank)

    def irecv(self, source=ANY_SOURCE, tag=ANY_TAG):
        if source == ANY_SOURCE:
            from repro.simmpi.errors import CommunicatorError

            raise CommunicatorError(
                "replay cannot serve wildcard-source receives: the log is "
                "channel-ordered (send-deterministic apps use explicit sources)"
            )
        if self._is_member(source):
            local = self._member_index[source]
            req = yield from Communicator.irecv(self, local, tag)
            return req
        entry: LogEntry = self._cursor.next_message(
            source,
            self._original_rank,
            expected_tag=None if tag == ANY_TAG else tag,
        )
        if False:
            yield  # keep generator semantics without engine interaction
        return _ServedRequest(self.ctx.rank, entry.payload)

    def wait(self, request):
        if isinstance(request, _ServedRequest):
            if False:
                yield
            return request.payload
        if isinstance(request, _SuppressedSend):
            if False:
                yield
            return None
        return (yield from Communicator.wait(self, request))

    def waitall(self, requests):
        """Sequential waits: log-served and suppressed requests never reach
        the engine, so the base class's single ``WaitAll`` op (which only
        understands engine-native requests) cannot drain a replay's mix."""
        results = []
        for request in requests:
            results.append((yield from self.wait(request)))
        return results

    def wait_status(self, request):
        if isinstance(request, _ServedRequest):
            from repro.simmpi.errors import CommunicatorError

            raise CommunicatorError(
                "wait_status on log-served receives is not supported"
            )
        return (yield from Communicator.wait_status(self, request))

    # -- unsupported during replay ----------------------------------------------

    def _no_persistent_replay(self):
        from repro.simmpi.errors import CommunicatorError

        raise CommunicatorError(
            "persistent requests are not supported during replay: starts "
            "would bypass log serving (receives from survivors) and send "
            "suppression (sends to survivors) — replay windows use the "
            "per-message isend/irecv/wait API"
        )

    def send_init(self, obj, dest, tag=0, *, nbytes=None, kind="p2p"):
        self._no_persistent_replay()

    def recv_init(self, source=ANY_SOURCE, tag=ANY_TAG):
        self._no_persistent_replay()

    def start_all(self, requests):
        self._no_persistent_replay()
        if False:
            yield

    def start(self, request):
        self._no_persistent_replay()
        if False:
            yield

    def start_all_op(self, requests):
        self._no_persistent_replay()

    def waitall_op(self, requests):
        self._no_persistent_replay()

    def split(self, color, key=0):
        from repro.simmpi.errors import CommunicatorError

        raise CommunicatorError(
            "communicator creation during replay is not supported: replay "
            "windows contain application steps only"
        )
        if False:
            yield

    def _world_rank(self, local: int) -> int:
        # Point-to-point address translation happens in isend/irecv; the
        # base-class helpers must see engine-local ranks unchanged.
        if not 0 <= local < len(self._members):
            from repro.simmpi.errors import CommunicatorError

            raise CommunicatorError(
                f"internal replay rank {local} out of range"
            )
        return self.group[local]
