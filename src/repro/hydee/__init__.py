"""HydEE-style hybrid protocol: coordinated-in-cluster checkpointing,
inter-cluster sender-based message logging, and failure-contained recovery
with log replay."""

from repro.hydee.logging import (
    LogEntry,
    MessageLog,
    ReplayCursor,
    ReplayMismatchError,
)
from repro.hydee.protocol import (
    HybridCRProtocol,
    ProtocolRunResult,
    run_with_protocol,
)
from repro.hydee.recovery import (
    ContainedRecoveryError,
    RecoveryManager,
    RecoveryResult,
)
from repro.hydee.replay import OutboundRecord, ReplayCommunicator

__all__ = [
    "ContainedRecoveryError",
    "HybridCRProtocol",
    "LogEntry",
    "MessageLog",
    "OutboundRecord",
    "ProtocolRunResult",
    "RecoveryManager",
    "RecoveryResult",
    "ReplayCommunicator",
    "ReplayCursor",
    "ReplayMismatchError",
    "run_with_protocol",
]
