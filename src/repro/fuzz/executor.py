"""Scenario executor: run one fuzzed scenario end to end and classify it.

Two phases per scenario, each on a fresh machine:

**Phase A — engine differential.** The synthetic, kernel-native tsunami
runs once on the fully accelerated engine (kernels + vectorized
collectives + batched p2p) and once with every fast path off, both with
the scenario's node victims preset in ``Engine.failure_ranks`` and the
scenario's perturbed network installed. Outcomes (completion pattern,
deadlock attribution, per-rank clocks) must match bit for bit; while
injection is active the kernel fast path must stay off (``kernel_runs ==
0``) and the engine must record why (``kernel_deopts``) — the safety
property the kernelized engine promises under failures.

**Phase B — protocol vs model.** The real application runs under the
hybrid CR protocol, the scenario's corruption (if any) is applied to the
stored checkpoint/parity blobs, and every scheduled event is recovered
through :class:`~repro.hydee.recovery.RecoveryManager` — erasure decode,
log replay, send-determinism verification, bitwise state comparison
against a failure-free reference. The observed outcome is compared with
the analytic tables' prediction (`event_is_catastrophic`, restart
fractions — the quantities behind ``montecarlo_scores``).

Events are observed *in schedule order with cumulative damage*: a node
wiped by an earlier event stays wiped. The analytic model prices each
event in isolation, so multi-event schedules are exactly where the
executor can catch the model being optimistic — that gap is the point,
not a bug.

When the scenario carries a ``schedule_seed`` or ``schedule_trace``,
phase A additionally runs the synthetic world under the explored
interleaving and compares that outcome with the canonical schedule's.
The world is wildcard-free, so any difference — result, clocks, or a
deadlock — is a ``schedule_divergence`` finding; the permutations the
engine actually applied come back on ``ScenarioResult.schedule_trace``
for repro files and the schedule shrinker.

Classification (most severe wins): ``crash`` > ``deadlock`` >
``schedule_divergence`` > ``engine_divergence`` > ``model_optimistic`` >
``model_pessimistic`` > ``agree``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.core.query import QueryTables
from repro.failures.catastrophic import CatastrophicModel
from repro.failures.events import FailureEvent
from repro.ftilib.checkpointer import RestoreError
from repro.fuzz.actors import CorruptionSpec, FuzzScenario
from repro.fuzz.perturb import apply_perturbation
from repro.fuzz.shape import FuzzShape
from repro.hydee.logging import ReplayMismatchError
from repro.hydee.protocol import run_with_protocol
from repro.hydee.recovery import ContainedRecoveryError, RecoveryManager
from repro.simmpi import DeadlockError, Engine, ScheduleTrace, run_program

CLASSIFICATIONS = (
    "crash",
    "deadlock",
    "schedule_divergence",
    "engine_divergence",
    "model_optimistic",
    "model_pessimistic",
    "agree",
)

DISAGREEMENTS = frozenset(CLASSIFICATIONS[:-1])


@dataclass(frozen=True)
class EventRecord:
    """Prediction vs observation for one scheduled event."""

    iteration: int
    kind: str
    nodes: tuple[int, ...]
    process: int | None
    predicted_catastrophic: bool
    observed: str  # recovered | lost | corrupt | crash | deadlock
    predicted_restart_fraction: float
    observed_restart_fraction: float | None
    detail: str = ""


@dataclass(frozen=True)
class ScenarioResult:
    """Everything the autopilot, shrinker and repro files need."""

    classification: str
    events: tuple[EventRecord, ...] = ()
    engine_ok: bool = True
    schedule_ok: bool = True
    kernel_deopts: tuple[tuple[str, int], ...] = ()
    schedule_trace: tuple[tuple[int, tuple[int, ...]], ...] | None = None
    detail: str = ""

    @property
    def disagrees(self) -> bool:
        return self.classification in DISAGREEMENTS


# -- phase A: engine differential -------------------------------------------


def _engine_outcome(engine: Engine, program) -> tuple:
    """Comparable outcome signature of one engine run."""
    try:
        results = engine.run(program)
    except DeadlockError as err:
        return ("deadlock", tuple(sorted(err.blocked)))
    return (
        "done",
        tuple(r is not None for r in results),
        tuple(engine.rank_times()),
    )


def _schedule_check(
    scenario: FuzzScenario, machine, sim, victims, fast_outcome
) -> tuple[bool, tuple, str]:
    """Explored interleaving vs the canonical schedule (same machine).

    The synthetic world has no wildcard receives, so every legal
    interleaving must reproduce the canonical outcome bit for bit; the
    kernel fast path must stay off under a non-canonical schedule and
    record ``non-canonical-schedule`` as the reason.
    """
    shape = scenario.shape
    trace = (
        None
        if scenario.schedule_trace is None
        else ScheduleTrace.from_entries(scenario.schedule_trace)
    )
    seeded = Engine(
        shape.nranks,
        network=machine.network,
        schedule_seed=None if trace is not None else scenario.schedule_seed,
        schedule_trace=trace,
    )
    seeded.failure_ranks.update(victims)
    outcome = _engine_outcome(
        seeded, sim.make_program(iterations=shape.iterations)
    )
    if seeded.kernel_runs != 0:
        raise AssertionError(
            f"kernel fast path ran {seeded.kernel_runs}x under a "
            "non-canonical schedule"
        )
    deopts = dict(seeded.kernel_deopts)
    if deopts and "non-canonical-schedule" not in deopts:
        raise AssertionError(
            "exploring engine recorded kernel deopts without naming "
            f"the schedule: {deopts}"
        )
    applied = (
        () if seeded.schedule_trace is None else seeded.schedule_trace.entries
    )
    if outcome != fast_outcome:
        if outcome[0] == "deadlock":
            detail = (
                "explored schedule deadlocks: blocked "
                f"{sorted(outcome[1])}"
            )
        elif outcome[0] != fast_outcome[0]:
            detail = (
                f"explored schedule {outcome[0]} != canonical "
                f"{fast_outcome[0]}"
            )
        else:
            detail = "explored schedule result/clock mismatch vs canonical"
        return False, applied, detail
    return True, applied, ""


def _engine_check(scenario: FuzzScenario) -> tuple[bool, bool, dict, str, tuple | None]:
    """Fast engine vs scalar reference under injection + perturbation,
    plus the explored-interleaving differential when the scenario carries
    a schedule seed or trace."""
    shape = scenario.shape
    machine = shape.machine()
    apply_perturbation(machine, scenario.perturbation)
    victims = sorted(
        rank
        for node in scenario.schedule.killed_nodes()
        for rank in machine.ranks_of_node(node)
    )
    sim = shape.simulation(synthetic=True)

    fast = Engine(shape.nranks, network=machine.network)
    fast.failure_ranks.update(victims)
    fast_outcome = _engine_outcome(
        fast, sim.make_program(iterations=shape.iterations)
    )
    deopts = dict(fast.kernel_deopts)
    if victims and fast.kernel_runs != 0:
        raise AssertionError(
            f"kernel fast path ran {fast.kernel_runs}x with failure "
            f"injection active (victims {victims})"
        )
    if victims and not deopts and len(victims) < shape.nranks:
        # A total wipeout may die at the first communication, before any
        # rank reaches a kernel-eligible loop — no deopt to record then.
        raise AssertionError(
            "active failure injection recorded no kernel deopt reason"
        )

    reference = Engine(
        shape.nranks,
        network=machine.network,
        use_fast_collectives=False,
        use_batched_p2p=False,
        use_kernels=False,
    )
    reference.failure_ranks.update(victims)
    ref_outcome = _engine_outcome(
        reference, sim.make_program(iterations=shape.iterations)
    )
    if fast_outcome != ref_outcome:
        detail = (
            f"fast {fast_outcome[0]} != reference {ref_outcome[0]}"
            if fast_outcome[0] != ref_outcome[0]
            else "fast/reference outcome mismatch"
        )
        return False, True, deopts, detail, None

    schedule_ok, schedule_trace, schedule_detail = True, None, ""
    if (
        scenario.schedule_seed is not None
        or scenario.schedule_trace is not None
    ):
        schedule_ok, schedule_trace, schedule_detail = _schedule_check(
            scenario, machine, sim, victims, fast_outcome
        )
    return True, schedule_ok, deopts, schedule_detail, schedule_trace


# -- phase B: protocol vs model ----------------------------------------------


@functools.lru_cache(maxsize=64)
def _reference_states(shape: FuzzShape, iterations: int) -> tuple:
    """Failure-free reference states at ``iterations`` (per-process cache;
    treat as read-only)."""
    sim = shape.simulation()
    return tuple(
        run_program(sim.make_program(iterations=iterations), shape.nranks)
    )


def _states_match(recovered: dict, reference: dict) -> bool:
    if recovered["iteration"] != reference["iteration"]:
        return False
    for key in ("eta", "u", "v"):
        if not np.array_equal(recovered[key], reference[key]):
            return False
    return True


def _xor_blob(device, key, mask: int) -> None:
    """Flip bytes inside a stored blob, deep in the serialized payload."""
    blob, _ = device.read(key)
    blob = blob.copy()
    offset = (blob.size * 3) // 5
    span = min(16, blob.size - offset)
    if span <= 0:
        offset, span = 0, blob.size
    blob[offset : offset + span] ^= mask
    device.write(key, blob, blob.size)


def apply_corruption(
    machine, run, clustering, spec: CorruptionSpec, version: int
) -> int:
    """Corrupt up to ``spec.n_shards`` stored blobs of ``version``.

    ``parity`` walks the L2 clusters' round-robin parity placement;
    ``local`` hits ranks' L1 checkpoint copies. Returns how many blobs
    were actually corrupted (a shard may already be gone).
    """
    corrupted = 0
    if spec.target == "parity":
        for l2 in range(clustering.n_l2_clusters):
            members = [int(r) for r in clustering.l2_members(l2)]
            nodes = [machine.node_of_rank(r) for r in members]
            for j in range(len(members)):  # fti_rs_code: m == k shards
                if corrupted >= spec.n_shards:
                    return corrupted
                device = machine.node_ssds[nodes[j % len(nodes)]]
                key = ("parity", l2, version, j)
                if key in device:
                    _xor_blob(device, key, spec.xor_mask)
                    corrupted += 1
    else:
        for rank in range(machine.nranks):
            if corrupted >= spec.n_shards:
                return corrupted
            device = machine.ssd_of_rank(rank)
            key = ("ckpt", rank, version)
            if key in device:
                _xor_blob(device, key, spec.xor_mask)
                corrupted += 1
    return corrupted


def _observe_event(
    manager: RecoveryManager,
    shape: FuzzShape,
    event: FailureEvent,
    iteration: int,
) -> tuple[str, float | None, str]:
    """Run one contained recovery; say what actually happened."""
    try:
        result = manager.recover(event, failure_iteration=iteration)
    except (ContainedRecoveryError, RestoreError) as exc:
        return "lost", None, f"{type(exc).__name__}: {exc}"
    except ValueError as exc:
        # latest_checkpoint: no restorable version for the cluster.
        return "lost", None, f"{type(exc).__name__}: {exc}"
    except DeadlockError as exc:
        return "deadlock", None, f"replay deadlock: blocked {sorted(exc.blocked)}"
    except Exception as exc:  # noqa: BLE001 — crashes are a *finding*
        return "crash", None, f"{type(exc).__name__}: {exc}"

    try:
        manager.verify_send_determinism(result)
    except ReplayMismatchError as exc:
        return "corrupt", result.restart_fraction, f"send determinism: {exc}"
    except Exception as exc:  # noqa: BLE001
        return "crash", None, f"{type(exc).__name__}: {exc}"

    reference = _reference_states(shape, iteration)
    for rank in result.restarted_ranks:
        if not _states_match(result.recovered_states[rank], reference[rank]):
            return (
                "corrupt",
                result.restart_fraction,
                f"rank {rank} state differs from failure-free reference",
            )
    return "recovered", result.restart_fraction, ""


def _protocol_check(scenario: FuzzScenario) -> list[EventRecord]:
    shape = scenario.shape
    machine = shape.machine()
    apply_perturbation(machine, scenario.perturbation)
    clustering = shape.clustering()
    sim = shape.simulation()
    run = run_with_protocol(
        sim,
        machine,
        clustering,
        iterations=shape.iterations,
        checkpoint_every=shape.checkpoint_every,
        keep_versions=shape.keep_versions,
    )
    manager = RecoveryManager(sim, machine, run)
    # The same per-event oracle the query layer serves: tables built once,
    # predictions read per scheduled event.
    tables = QueryTables(
        machine=machine,
        clustering=clustering,
        model=CatastrophicModel(machine.placement),
    )

    records: list[EventRecord] = []
    corruption_pending = scenario.corruption is not None
    for scheduled in scenario.schedule.failures:
        event = scheduled.event
        predicted = tables.predicted_catastrophic(event)
        predicted_fraction = tables.predicted_restart_fraction(event)
        if corruption_pending and event.kind == "node":
            versions = [
                v
                for v in run.checkpointer.versions_of(0)
                if v <= scheduled.iteration
            ]
            if versions:
                apply_corruption(
                    machine, run, clustering, scenario.corruption, max(versions)
                )
                corruption_pending = False
        observed, observed_fraction, detail = _observe_event(
            manager, shape, event, scheduled.iteration
        )
        records.append(
            EventRecord(
                iteration=scheduled.iteration,
                kind=event.kind,
                nodes=tuple(event.nodes) if event.kind == "node" else (),
                process=event.process,
                predicted_catastrophic=predicted,
                observed=observed,
                predicted_restart_fraction=predicted_fraction,
                observed_restart_fraction=observed_fraction,
                detail=detail,
            )
        )
    return records


# -- classification -----------------------------------------------------------


def classify(
    engine_ok: bool, records: list[EventRecord], schedule_ok: bool = True
) -> str:
    observed = [r.observed for r in records]
    if "crash" in observed:
        return "crash"
    if "deadlock" in observed:
        return "deadlock"
    if not schedule_ok:
        return "schedule_divergence"
    if not engine_ok:
        return "engine_divergence"
    for record in records:
        if not record.predicted_catastrophic and record.observed in (
            "lost",
            "corrupt",
        ):
            return "model_optimistic"
    for record in records:
        if record.predicted_catastrophic and record.observed == "recovered":
            return "model_pessimistic"
    return "agree"


def execute_scenario(scenario: FuzzScenario) -> ScenarioResult:
    """Run both phases and classify; never raises on scenario badness
    (crashes become a classification), only on executor-internal bugs."""
    engine_ok, schedule_ok, deopts, engine_detail, schedule_trace = (
        _engine_check(scenario)
    )
    records = _protocol_check(scenario)
    classification = classify(engine_ok, records, schedule_ok)
    detail = engine_detail
    if not detail:
        for record in records:
            if record.detail:
                detail = f"iter {record.iteration}: {record.detail}"
                break
    return ScenarioResult(
        classification=classification,
        events=tuple(records),
        engine_ok=engine_ok,
        schedule_ok=schedule_ok,
        kernel_deopts=tuple(sorted(deopts.items())),
        schedule_trace=schedule_trace,
        detail=detail,
    )
