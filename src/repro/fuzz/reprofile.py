"""Replayable repro files: a fuzz finding serialized to JSON.

A repro file captures the *inputs* of one scenario — shape, failure
schedule, perturbation, corruption — plus the classification it
reproduced. No timings or states are stored: replay re-executes the
scenario from scratch and checks that the same classification comes back,
which is exactly the determinism guarantee the executor makes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.failures.events import FailureEvent
from repro.failures.injector import FailureScenario, ScheduledFailure
from repro.fuzz.actors import CorruptionSpec, FuzzScenario
from repro.fuzz.perturb import PerturbationSpec
from repro.fuzz.shape import FuzzShape

#: Version 2 added interleaving exploration: ``schedule_seed`` /
#: ``schedule_trace`` on scenario files, and the standalone
#: ``"kind": "interleaving"`` repro flavor written by the schedule sweep.
#: Version-1 files (no schedule fields) still load.
REPRO_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def scenario_to_dict(
    scenario: FuzzScenario, classification: str | None = None
) -> dict:
    """JSON-able description of ``scenario`` (+ the class it reproduces)."""
    return {
        "version": REPRO_VERSION,
        "classification": classification,
        "shape": scenario.shape.to_dict(),
        "schedule": [
            {
                "iteration": f.iteration,
                "kind": f.event.kind,
                "nodes": list(f.event.nodes),
                "process": f.event.process,
            }
            for f in scenario.schedule.failures
        ],
        "perturbation": {
            "rank_factors": [list(p) for p in scenario.perturbation.rank_factors],
            "bad_nodes": list(scenario.perturbation.bad_nodes),
            "link_factor": scenario.perturbation.link_factor,
            "jitter_amp": scenario.perturbation.jitter_amp,
        },
        "corruption": None
        if scenario.corruption is None
        else {
            "target": scenario.corruption.target,
            "n_shards": scenario.corruption.n_shards,
            "xor_mask": scenario.corruption.xor_mask,
        },
        "actors": list(scenario.actor_names),
        "seed": scenario.seed,
        "schedule_seed": scenario.schedule_seed,
        "schedule_trace": None
        if scenario.schedule_trace is None
        else [
            [ordinal, list(perm)]
            for ordinal, perm in scenario.schedule_trace
        ],
    }


def scenario_from_dict(data: dict) -> tuple[FuzzScenario, str | None]:
    """Inverse of :func:`scenario_to_dict`; returns the scenario and the
    recorded classification (``None`` for hand-written files)."""
    version = data.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported repro version {version!r}")
    failures = []
    for entry in data["schedule"]:
        kind = entry["kind"]
        if kind == "node":
            event = FailureEvent(kind="node", nodes=tuple(entry["nodes"]))
        else:
            event = FailureEvent(kind="soft", process=entry["process"])
        failures.append(ScheduledFailure(int(entry["iteration"]), event))
    pert = data.get("perturbation") or {}
    corr = data.get("corruption")
    scenario = FuzzScenario(
        shape=FuzzShape.from_dict(data["shape"]),
        schedule=FailureScenario(tuple(failures)),
        perturbation=PerturbationSpec(
            rank_factors=tuple(
                (int(r), float(f)) for r, f in pert.get("rank_factors", [])
            ),
            bad_nodes=tuple(pert.get("bad_nodes", [])),
            link_factor=float(pert.get("link_factor", 1.0)),
            jitter_amp=float(pert.get("jitter_amp", 0.0)),
        ),
        corruption=None
        if corr is None
        else CorruptionSpec(
            target=corr["target"],
            n_shards=int(corr["n_shards"]),
            xor_mask=int(corr["xor_mask"]),
        ),
        actor_names=tuple(data.get("actors", [])),
        seed=data.get("seed"),
        schedule_seed=data.get("schedule_seed"),
        schedule_trace=None
        if data.get("schedule_trace") is None
        else tuple(
            (int(ordinal), tuple(int(i) for i in perm))
            for ordinal, perm in data["schedule_trace"]
        ),
    )
    return scenario, data.get("classification")


def save_repro(
    path: str | Path, scenario: FuzzScenario, classification: str
) -> Path:
    """Write a repro file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(scenario_to_dict(scenario, classification), indent=2)
        + "\n"
    )
    return path


def load_repro(path: str | Path) -> tuple[FuzzScenario, str | None]:
    """Read a repro file back into an executable scenario."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
