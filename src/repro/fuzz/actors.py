"""Composable adversary actors: each contributes one slice of a scenario.

An actor is a tiny generator with a stable ``name`` and one method,
``generate(ctx, rng) -> ScenarioFragment``. Fragments carry a failure
schedule plus optional network perturbations and checkpoint corruption;
the composer merges them into one :class:`FuzzScenario` through
:meth:`FailureScenario.merge`, dropping (deterministically, in actor
order) any fragment whose kills collide with nodes an earlier fragment
already killed — the scenario-hardening invariants do the conflict
detection.

Every draw comes from the child stream the autopilot spawned for the
scenario, so a scenario is a pure function of ``(shape, actor names,
child seed)`` — the seed-for-seed reproducibility the campaign invariance
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.failures.events import FailureEvent
from repro.failures.injector import FailureScenario, ScheduledFailure
from repro.fuzz.perturb import PerturbationSpec
from repro.fuzz.shape import FuzzShape


@dataclass(frozen=True)
class CorruptionSpec:
    """Checkpoint corruption fed to the erasure decoders.

    ``target`` selects what gets flipped: ``"parity"`` shards (visible only
    when a node loss forces the decode path) or surviving ranks'
    ``"local"`` checkpoint blobs. ``n_shards`` blobs are XORed with
    ``xor_mask`` at a fixed offset inside the serialized state — far
    enough in to land in array payload, so the damage is *silent* until
    recovery compares states or replayed sends against the log.
    """

    target: str = "parity"
    n_shards: int = 2
    xor_mask: int = 0xA5

    def __post_init__(self) -> None:
        if self.target not in ("parity", "local"):
            raise ValueError(f"unknown corruption target {self.target!r}")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 1 <= self.xor_mask <= 0xFF:
            raise ValueError("xor_mask must be a nonzero byte")


@dataclass(frozen=True)
class ScenarioFragment:
    """One actor's contribution to a scenario."""

    schedule: FailureScenario = field(default_factory=FailureScenario)
    perturbation: PerturbationSpec = field(default_factory=PerturbationSpec)
    corruption: CorruptionSpec | None = None
    schedule_seed: int | None = None


@dataclass(frozen=True)
class FuzzScenario:
    """A fully composed, executable, picklable fuzz scenario.

    ``schedule_seed`` seeds the engine's interleaving exploration during
    the phase-A differential; ``schedule_trace`` replays a recorded
    permutation stream instead (raw ``(ordinal, permutation)`` tuples so
    the scenario stays plainly picklable — the executor rehydrates them
    into a :class:`~repro.simmpi.ScheduleTrace`). A trace takes
    precedence over a seed, mirroring the engine.
    """

    shape: FuzzShape
    schedule: FailureScenario
    perturbation: PerturbationSpec = field(default_factory=PerturbationSpec)
    corruption: CorruptionSpec | None = None
    actor_names: tuple[str, ...] = ()
    seed: int | None = None
    schedule_seed: int | None = None
    schedule_trace: tuple[tuple[int, tuple[int, ...]], ...] | None = None

    def describe(self) -> str:
        """One-line summary for logs and repro listings."""
        bits = [f"{self.schedule.n_failures} events"]
        if not self.perturbation.is_identity:
            bits.append("perturbed-net")
        if self.corruption is not None:
            bits.append(f"corrupt-{self.corruption.target}")
        if self.schedule_trace is not None:
            bits.append(f"schedule-trace-{len(self.schedule_trace)}")
        elif self.schedule_seed is not None:
            bits.append(f"schedule-seed-{self.schedule_seed}")
        actors = ",".join(self.actor_names) or "manual"
        return f"[{actors}] " + " + ".join(bits)


class ActorContext:
    """Shape facts the actors key their draws off."""

    def __init__(self, shape: FuzzShape):
        self.shape = shape
        self.nnodes = shape.nnodes
        self.nranks = shape.nranks
        self.iterations = shape.iterations
        # The catastrophic boundary: bursts of this run length are the
        # smallest that can break an L2 stripe.
        self.boundary = shape.boundary_run_length()

    def random_iteration(self, rng: np.random.Generator) -> int:
        """An iteration in [1, iterations] — always recoverable (the
        protocol checkpoints at iteration 0)."""
        return int(rng.integers(1, self.iterations + 1))


def _node_run(
    rng: np.random.Generator, nnodes: int, length: int, *, forbidden: set[int]
) -> tuple[int, ...] | None:
    """A contiguous node run of ``length`` avoiding ``forbidden``; a fixed
    number of rejection draws keeps the RNG stream schedule-independent."""
    length = min(length, nnodes)
    for _ in range(8):
        start = int(rng.integers(nnodes - length + 1))
        run = tuple(range(start, start + length))
        if not forbidden.intersection(run):
            return run
    return None


class CorrelatedBurstActor:
    """One correlated multi-node burst sized around the catastrophic
    boundary (shared PSU / chassis locality, §II-C2)."""

    name = "burst"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        length = int(
            rng.integers(max(1, ctx.boundary - 1), ctx.boundary + 2)
        )
        run = _node_run(rng, ctx.nnodes, length, forbidden=set())
        iteration = ctx.random_iteration(rng)
        if run is None:
            return ScenarioFragment()
        return ScenarioFragment(
            schedule=FailureScenario.multi_node_failure(iteration, run)
        )


class CascadeActor:
    """A failure cascade: consecutive-iteration kills marching through
    the machine, each run drawn near the boundary."""

    name = "cascade"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        steps = int(rng.integers(2, 4))
        first = ctx.random_iteration(rng)
        failures = []
        killed: set[int] = set()
        for step in range(steps):
            length = int(rng.integers(1, ctx.boundary + 1))
            run = _node_run(rng, ctx.nnodes, length, forbidden=killed)
            iteration = min(first + step, ctx.iterations)
            if run is None:
                continue
            killed.update(run)
            failures.append(
                ScheduledFailure(
                    iteration, FailureEvent(kind="node", nodes=run)
                )
            )
        try:
            schedule = FailureScenario(tuple(failures))
        except ValueError:
            # Clamping two steps onto the last iteration can duplicate a
            # (iteration, event) pair; keep the first occurrence only.
            schedule = FailureScenario(tuple(dict.fromkeys(failures)))
        return ScenarioFragment(schedule=schedule)


class SoftErrorActor:
    """Process-level soft errors (always survivable per the model)."""

    name = "soft"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        count = int(rng.integers(1, 4))
        seen: set[tuple[int, int]] = set()
        failures = []
        for _ in range(count):
            iteration = ctx.random_iteration(rng)
            process = int(rng.integers(ctx.nranks))
            if (iteration, process) in seen:
                continue
            seen.add((iteration, process))
            failures.append(
                ScheduledFailure(
                    iteration, FailureEvent(kind="soft", process=process)
                )
            )
        return ScenarioFragment(schedule=FailureScenario(tuple(failures)))


class SlowRankActor:
    """Slow/flaky ranks: inflated per-rank transfer times plus jitter,
    and one soft error so the recovery path runs under the perturbed
    clock."""

    name = "slow-rank"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        n_slow = int(rng.integers(1, 3))
        ranks = rng.choice(ctx.nranks, size=n_slow, replace=False)
        factors = tuple(
            (int(r), float(2.0 + 8.0 * rng.random())) for r in ranks
        )
        jitter = float(rng.random() * 0.3)
        iteration = ctx.random_iteration(rng)
        victim = int(rng.integers(ctx.nranks))
        return ScenarioFragment(
            schedule=FailureScenario(
                (
                    ScheduledFailure(
                        iteration, FailureEvent(kind="soft", process=victim)
                    ),
                )
            ),
            perturbation=PerturbationSpec(
                rank_factors=factors, jitter_amp=jitter
            ),
        )


class DegradedLinkActor:
    """Degraded node links plus a single-node kill elsewhere — recovery
    traffic must cross the slow links."""

    name = "bad-link"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        n_bad = int(rng.integers(1, 3))
        bad = tuple(
            int(n) for n in rng.choice(ctx.nnodes, size=n_bad, replace=False)
        )
        factor = float(3.0 + 17.0 * rng.random())
        victim = int(rng.integers(ctx.nnodes))
        iteration = ctx.random_iteration(rng)
        return ScenarioFragment(
            schedule=FailureScenario.node_failure(iteration, victim),
            perturbation=PerturbationSpec(
                bad_nodes=bad, link_factor=factor
            ),
        )


class CheckpointCorruptionActor:
    """Corrupts checkpoint/parity blobs, then kills a node so recovery is
    forced through the damaged erasure data — the direct attack on the
    decoders."""

    name = "corrupt"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        target = "parity" if rng.random() < 0.7 else "local"
        n_shards = int(rng.integers(1, 5))
        victim = int(rng.integers(ctx.nnodes))
        # Strike late enough that a checkpoint exists to corrupt.
        lo = min(ctx.shape.checkpoint_every, ctx.iterations)
        iteration = int(rng.integers(lo, ctx.iterations + 1))
        return ScenarioFragment(
            schedule=FailureScenario.node_failure(iteration, victim),
            corruption=CorruptionSpec(target=target, n_shards=n_shards),
        )


class InterleavingActor:
    """Schedule explorer: contributes no failures, only a seed for the
    engine's interleaving exploration, so the phase-A differential runs
    the world under a permuted-but-legal drain order. Steering then pulls
    the campaign toward schedules implicated in disagreements."""

    name = "interleave"

    def generate(self, ctx: ActorContext, rng: np.random.Generator) -> ScenarioFragment:
        return ScenarioFragment(schedule_seed=int(rng.integers(1 << 31)))


ALL_ACTORS = (
    CorrelatedBurstActor(),
    CascadeActor(),
    SoftErrorActor(),
    SlowRankActor(),
    DegradedLinkActor(),
    CheckpointCorruptionActor(),
    InterleavingActor(),
)

ACTOR_NAMES = tuple(actor.name for actor in ALL_ACTORS)

_BY_NAME = {actor.name: actor for actor in ALL_ACTORS}


def actor_by_name(name: str):
    """Registry lookup (CLI ``--actors`` and repro files use the names)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown actor {name!r}; choose from {', '.join(ACTOR_NAMES)}"
        ) from None


def compose_scenario(
    shape: FuzzShape,
    actor_names: tuple[str, ...],
    rng: np.random.Generator,
    *,
    seed: int | None = None,
) -> FuzzScenario:
    """Run each named actor and merge the fragments into one scenario.

    Fragments conflicting with earlier ones (overlapping kills, duplicate
    events — detected by the hardened :class:`FailureScenario`
    constructor) are dropped in actor order; every actor still consumes
    its draws, so drops never shift the stream for later actors.
    """
    ctx = ActorContext(shape)
    schedule = FailureScenario()
    perturbation = PerturbationSpec()
    corruption: CorruptionSpec | None = None
    schedule_seed: int | None = None
    kept: list[str] = []
    for name in actor_names:
        fragment = actor_by_name(name).generate(ctx, rng)
        try:
            merged = schedule.merge(fragment.schedule)
        except ValueError:
            continue
        schedule = merged
        perturbation = perturbation.merge(fragment.perturbation)
        if corruption is None:
            corruption = fragment.corruption
        if schedule_seed is None:
            schedule_seed = fragment.schedule_seed
        kept.append(name)
    return FuzzScenario(
        shape=shape,
        schedule=schedule,
        perturbation=perturbation,
        corruption=corruption,
        actor_names=tuple(kept),
        seed=seed,
        schedule_seed=schedule_seed,
    )


def simplified(scenario: FuzzScenario, **changes) -> FuzzScenario:
    """A copy with ``changes`` applied (shrinker convenience)."""
    return replace(scenario, **changes)
