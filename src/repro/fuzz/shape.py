"""The (small) machine/app/clustering shape fuzzed scenarios run on.

One frozen, hashable, picklable description from which every fuzz
component — actors, executor, shrinker, repro files — can rebuild the
exact same world: a machine, a hierarchical clustering, the tsunami
application, and the analytic reliability model whose predictions the
executor falsifies.

The default shape generalizes the proven ``hierarchical_16`` fixture of
the recovery tests: 8 nodes x 2 ranks, two L1 clusters of 4 nodes, L2
encoding stripes of 4 with one member per node. Reed–Solomon tolerance is
``floor(4/2) = 2`` dead members per stripe, so the catastrophic boundary
sits at contiguous runs of 3 nodes — exactly the region the adversary
actors aim bursts at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.tsunami import TsunamiConfig, TsunamiSimulation
from repro.clustering.base import Clustering
from repro.failures.catastrophic import CatastrophicModel
from repro.machine.machine import Machine


@dataclass(frozen=True)
class FuzzShape:
    """Everything needed to rebuild a fuzz world from scratch."""

    nnodes: int = 8
    procs_per_node: int = 2
    cluster_nodes: int = 4
    px: int = 4
    py: int = 4
    nx: int = 16
    ny: int = 16
    iterations: int = 10
    checkpoint_every: int = 4
    allreduce_every: int = 4
    keep_versions: int = 4

    def __post_init__(self) -> None:
        if self.nnodes % self.cluster_nodes:
            raise ValueError("cluster_nodes must divide nnodes")
        if self.px * self.py != self.nranks:
            raise ValueError(
                f"grid {self.px}x{self.py} needs {self.px * self.py} ranks, "
                f"machine hosts {self.nranks}"
            )

    @property
    def nranks(self) -> int:
        return self.nnodes * self.procs_per_node

    def machine(self) -> Machine:
        """A fresh machine (fresh SSDs — executor phases must not share)."""
        return Machine(self.nnodes, self.procs_per_node)

    def clustering(self) -> Clustering:
        """Node-aligned L1 clusters of ``cluster_nodes`` nodes, L2 stripes
        with one member per node (the paper's hierarchical layout)."""
        ppn = self.procs_per_node
        ranks = np.arange(self.nranks)
        l1 = (ranks // ppn) // self.cluster_nodes
        l2 = l1 * ppn + ranks % ppn
        return Clustering(
            f"fuzz-{self.nnodes}x{ppn}-c{self.cluster_nodes}", l1, l2
        )

    def simulation(self, *, synthetic: bool = False) -> TsunamiSimulation:
        """The application; ``synthetic=True`` gives the hook-less
        kernel-native variant the engine differential check runs."""
        return TsunamiSimulation(
            TsunamiConfig(
                px=self.px,
                py=self.py,
                nx=self.nx,
                ny=self.ny,
                iterations=self.iterations,
                synthetic=synthetic,
                allreduce_every=self.allreduce_every,
            )
        )

    def model(self) -> CatastrophicModel:
        """The analytic reliability model under falsification."""
        return CatastrophicModel(self.machine().placement)

    def boundary_run_length(self) -> int:
        """Smallest contiguous node run that can break an L2 stripe."""
        l2_size = self.cluster_nodes  # one stripe member per node
        from repro.failures.catastrophic import rs_half_tolerance

        return rs_half_tolerance(l2_size) + 1

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzShape":
        return cls(**{k: int(v) for k, v in data.items()})
