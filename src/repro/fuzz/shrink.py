"""Shrinker: reduce a disagreeing scenario to a minimal failing schedule.

Greedy delta-debugging over a strict cost measure: repeatedly try the
cheapest simplifications — drop an event, shorten a node run, discard the
network perturbation, weaken the corruption, revert the explored schedule
(wholesale, or batch by batch once it is a concrete trace), cut the
iteration horizon — and keep a candidate only if it still reproduces the
*exact* original classification. Every accepted candidate strictly
decreases the cost tuple, so the loop terminates; the result is locally
minimal (no single remaining simplification preserves the failure class).

Schedule shrinking has a materialization pre-pass: a scenario carrying
only a ``schedule_seed`` is first re-executed to capture the engine's
recorded :class:`~repro.simmpi.ScheduleTrace`, then (if the class
survives replay-from-trace, which the engine guarantees) swapped to the
explicit trace — a strict cost drop that unlocks the per-batch
greedy reverts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.failures.events import FailureEvent
from repro.failures.injector import FailureScenario, ScheduledFailure
from repro.fuzz.actors import FuzzScenario
from repro.fuzz.executor import ScenarioResult, execute_scenario
from repro.fuzz.perturb import PerturbationSpec


@dataclass(frozen=True)
class ShrinkOutcome:
    """The minimal scenario plus the bookkeeping tests assert on."""

    scenario: FuzzScenario
    result: ScenarioResult
    classification: str
    executions: int
    original_cost: tuple
    final_cost: tuple


def _schedule_cost(scenario: FuzzScenario) -> int:
    """Explored-schedule complexity: canonical (0) < explicit trace
    (1 + permuted batches) < seed-only (an opaque permutation stream —
    priced above any realistic trace so materializing it always pays)."""
    if scenario.schedule_trace is not None:
        return 1 + len(scenario.schedule_trace)
    if scenario.schedule_seed is not None:
        return 1_000_000
    return 0


def _cost(scenario: FuzzScenario) -> tuple:
    """Strictly decreasing along every accepted shrink step."""
    schedule = scenario.schedule
    total_nodes = sum(
        len(f.event.nodes)
        for f in schedule.failures
        if f.event.kind == "node"
    )
    return (
        schedule.n_failures,
        total_nodes,
        0 if scenario.perturbation.is_identity else 1,
        0 if scenario.corruption is None else scenario.corruption.n_shards,
        _schedule_cost(scenario),
        scenario.shape.iterations,
    )


def _candidates(scenario: FuzzScenario):
    """Yield every one-step simplification, cheapest class first."""
    failures = scenario.schedule.failures

    # Drop one event at a time.
    if len(failures) > 1:
        for skip in range(len(failures)):
            kept = tuple(f for i, f in enumerate(failures) if i != skip)
            yield replace(scenario, schedule=FailureScenario(kept))

    # Shorten multi-node runs (halve, then single-node).
    for index, scheduled in enumerate(failures):
        event = scheduled.event
        if event.kind != "node" or len(event.nodes) <= 1:
            continue
        for keep in {max(1, len(event.nodes) // 2), 1}:
            shorter = ScheduledFailure(
                scheduled.iteration,
                FailureEvent(kind="node", nodes=event.nodes[:keep]),
            )
            schedule = FailureScenario(
                tuple(
                    shorter if i == index else f
                    for i, f in enumerate(failures)
                )
            )
            yield replace(scenario, schedule=schedule)

    # Discard the network perturbation wholesale.
    if not scenario.perturbation.is_identity:
        yield replace(scenario, perturbation=PerturbationSpec())

    # Revert the explored schedule to canonical wholesale (kills the
    # seed/trace in one step when the failure never needed it) ...
    if (
        scenario.schedule_seed is not None
        or scenario.schedule_trace is not None
    ):
        yield replace(scenario, schedule_seed=None, schedule_trace=None)
    # ... or batch by batch: revert one permuted batch to canonical
    # order while preserving the rest of the interleaving.
    if scenario.schedule_trace is not None and len(scenario.schedule_trace) > 1:
        for skip in range(len(scenario.schedule_trace)):
            kept_entries = tuple(
                entry
                for i, entry in enumerate(scenario.schedule_trace)
                if i != skip
            )
            yield replace(scenario, schedule_trace=kept_entries)

    # Weaken, then drop, the corruption.
    if scenario.corruption is not None:
        if scenario.corruption.n_shards > 1:
            yield replace(
                scenario,
                corruption=replace(scenario.corruption, n_shards=1),
            )
        yield replace(scenario, corruption=None)

    # Cut the horizon down to the last scheduled event.
    if failures:
        needed = max(f.iteration for f in failures)
        if needed < scenario.shape.iterations:
            yield replace(
                scenario,
                shape=replace(scenario.shape, iterations=needed),
            )


def shrink(
    scenario: FuzzScenario,
    *,
    target: str | None = None,
    max_executions: int = 64,
) -> ShrinkOutcome:
    """Minimize ``scenario`` while preserving its classification.

    ``target`` defaults to the scenario's own classification (one
    execution to establish it). ``max_executions`` bounds the executor
    calls — shrinking is deterministic, so the bound only truncates how
    minimal the result gets, never changes what it reproduces.
    """
    executions = 0
    original_cost = _cost(scenario)
    if target is None or (
        scenario.schedule_seed is not None and scenario.schedule_trace is None
    ):
        baseline = execute_scenario(scenario)
        executions += 1
        if target is None:
            target = baseline.classification
        # Materialize a seed-only schedule into the trace the engine
        # recorded, so the per-batch reverts below have entries to chew
        # on. Kept only if the class survives replay-from-trace.
        if (
            scenario.schedule_seed is not None
            and scenario.schedule_trace is None
            and baseline.schedule_trace is not None
        ):
            candidate = replace(
                scenario,
                schedule_seed=None,
                schedule_trace=baseline.schedule_trace,
            )
            result = execute_scenario(candidate)
            executions += 1
            if result.classification == target:
                scenario = candidate

    current = scenario
    improved = True
    while improved and executions < max_executions:
        improved = False
        for candidate in _candidates(current):
            if executions >= max_executions:
                break
            result = execute_scenario(candidate)
            executions += 1
            if result.classification == target:
                current = candidate
                improved = True
                break

    final = execute_scenario(current)
    executions += 1
    return ShrinkOutcome(
        scenario=current,
        result=final,
        classification=target,
        executions=executions,
        original_cost=original_cost,
        final_cost=_cost(current),
    )
