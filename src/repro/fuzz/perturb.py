"""Engine/network perturbations for fuzzed scenarios.

Adversary actors do not only kill nodes: they also degrade the *timing*
substrate the engine prices messages with — slow ranks (a flaky NIC or a
thermally throttled socket), degraded nodes (every message touching the
node pays a penalty) and deterministic per-channel jitter. A
:class:`PerturbationSpec` is the declarative, picklable description an
actor emits; :func:`apply_perturbation` compiles it into a
:class:`PerturbedNetwork` and installs it on a machine.

The bit-identity discipline of :class:`~repro.simmpi.network.NetworkModel`
(scalar ``transfer_time`` == vectorized ``transfer_times``, bit for bit —
both engine fast paths lean on it) must survive perturbation, so the
scalar entry point here *routes through the vectorized code*: one
implementation, two arities, no drift for the fuzzer's differential
engine check to trip over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.machine import Machine
from repro.simmpi.network import NetworkModel


@dataclass(frozen=True)
class PerturbationSpec:
    """Declarative network degradation (picklable, actor-composable).

    ``rank_factors``
        ``(rank, factor)`` pairs: every message touching ``rank`` is slowed
        by at least ``factor`` (the max over both endpoints applies).
    ``bad_nodes`` / ``link_factor``
        Messages with an endpoint on a bad node pay ``link_factor``.
    ``jitter_amp``
        Deterministic per-(src, dst) jitter in ``[1, 1 + amp]`` — a cheap
        stand-in for congestion that stays bit-reproducible.
    """

    rank_factors: tuple[tuple[int, float], ...] = ()
    bad_nodes: tuple[int, ...] = ()
    link_factor: float = 1.0
    jitter_amp: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rank_factors",
            tuple(sorted((int(r), float(f)) for r, f in self.rank_factors)),
        )
        object.__setattr__(
            self, "bad_nodes", tuple(sorted(int(n) for n in self.bad_nodes))
        )
        if self.link_factor < 1.0:
            raise ValueError("link_factor must be >= 1")
        if self.jitter_amp < 0.0:
            raise ValueError("jitter_amp must be >= 0")

    @property
    def is_identity(self) -> bool:
        """Whether this spec leaves the network untouched."""
        return (
            not self.rank_factors
            and (not self.bad_nodes or self.link_factor == 1.0)
            and self.jitter_amp == 0.0
        )

    def merge(self, other: "PerturbationSpec") -> "PerturbationSpec":
        """Compose two specs: per-rank max, node union, max penalties."""
        factors: dict[int, float] = dict(self.rank_factors)
        for rank, f in other.rank_factors:
            factors[rank] = max(factors.get(rank, 1.0), f)
        return PerturbationSpec(
            rank_factors=tuple(factors.items()),
            bad_nodes=tuple(set(self.bad_nodes) | set(other.bad_nodes)),
            link_factor=max(self.link_factor, other.link_factor),
            jitter_amp=max(self.jitter_amp, other.jitter_amp),
        )


class PerturbedNetwork(NetworkModel):
    """A :class:`NetworkModel` whose transfer times are inflated by a
    :class:`PerturbationSpec`.

    The slowdown is a pure function of ``(src, dst)`` so the scalar and
    vectorized paths stay bit-identical: the scalar ``transfer_time``
    delegates to the same numpy expression ``transfer_times`` uses
    (``src == dst`` entries are zero either way, and ``0 * factor == 0``).
    """

    def __init__(self, base: NetworkModel, spec: PerturbationSpec, nranks: int):
        super().__init__(
            intra_node=base.intra_node,
            inter_node=base.inter_node,
            locator=base._node_of,
        )
        self.spec = spec
        rank_factor = np.ones(nranks, dtype=np.float64)
        for rank, factor in spec.rank_factors:
            if 0 <= rank < nranks:
                rank_factor[rank] = max(rank_factor[rank], factor)
        nodes = self.node_vector(nranks)[:nranks]
        on_bad = np.isin(nodes, np.asarray(spec.bad_nodes, dtype=np.int64))
        self._rank_factor = rank_factor
        self._on_bad_node = on_bad

    def _factors(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Slowdown of each (src, dst) message — one numpy expression
        serving both the scalar and the vectorized entry points."""
        f = np.maximum(self._rank_factor[srcs], self._rank_factor[dsts])
        if self.spec.bad_nodes and self.spec.link_factor != 1.0:
            bad = self._on_bad_node[srcs] | self._on_bad_node[dsts]
            f = f * np.where(bad, self.spec.link_factor, 1.0)
        if self.spec.jitter_amp:
            noise = ((srcs * 7919 + dsts * 104729) % 997) / 997.0
            f = f * (1.0 + self.spec.jitter_amp * noise)
        return f

    def transfer_times(self, src, dests, nbytes) -> np.ndarray:
        srcs = np.asarray(src, dtype=np.int64)
        dsts = np.asarray(dests, dtype=np.int64)
        base = super().transfer_times(srcs, dsts, nbytes)
        return base * self._factors(srcs, dsts)

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        return float(
            self.transfer_times(
                np.int64(src), np.int64(dst), float(nbytes)
            )
        )


def apply_perturbation(machine: Machine, spec: PerturbationSpec) -> None:
    """Install ``spec`` on ``machine`` (no-op for the identity spec)."""
    if spec.is_identity:
        return
    machine._network = PerturbedNetwork(machine.network, spec, machine.nranks)
