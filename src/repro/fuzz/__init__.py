"""Adversarial scenario fuzzer: falsify the analytic reliability model.

Four layers (see ``docs/architecture.md``, *Life of a fuzz run*):

* :mod:`~repro.fuzz.actors` — composable adversaries (correlated bursts,
  cascades, soft errors, slow ranks, degraded links, checkpoint
  corruption) merged into one :class:`FuzzScenario`;
* :mod:`~repro.fuzz.executor` — runs a scenario end to end through the
  hydee protocol on the simmpi engine and classifies the outcome against
  the model tables;
* :mod:`~repro.fuzz.shrink` — reduces disagreeing scenarios to minimal
  replayable repros (:mod:`~repro.fuzz.reprofile`);
* :mod:`~repro.fuzz.interleave` — seeded schedule sweeps over fixed
  workloads (``repro fuzz --schedules N``), with schedule-shrinking and
  replay-exact interleaving repro files;
* :mod:`~repro.fuzz.autopilot` — the steered generate → execute →
  classify → shrink campaign loop behind ``repro fuzz``.
"""

from repro.fuzz.actors import (
    ACTOR_NAMES,
    ALL_ACTORS,
    ActorContext,
    CorruptionSpec,
    FuzzScenario,
    ScenarioFragment,
    actor_by_name,
    compose_scenario,
)
from repro.fuzz.autopilot import (
    CampaignReport,
    FuzzCampaignConfig,
    run_campaign,
)
from repro.fuzz.executor import (
    CLASSIFICATIONS,
    EventRecord,
    ScenarioResult,
    execute_scenario,
)
from repro.fuzz.interleave import (
    InterleavingFinding,
    InterleavingSpec,
    InterleavingSweepReport,
    replay_interleaving,
    run_schedule,
    shrink_trace,
    sweep,
)
from repro.fuzz.perturb import (
    PerturbationSpec,
    PerturbedNetwork,
    apply_perturbation,
)
from repro.fuzz.reprofile import (
    load_repro,
    save_repro,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.fuzz.shape import FuzzShape
from repro.fuzz.shrink import ShrinkOutcome, shrink

__all__ = [
    "ACTOR_NAMES",
    "ALL_ACTORS",
    "ActorContext",
    "CLASSIFICATIONS",
    "CampaignReport",
    "CorruptionSpec",
    "EventRecord",
    "FuzzCampaignConfig",
    "FuzzScenario",
    "FuzzShape",
    "InterleavingFinding",
    "InterleavingSpec",
    "InterleavingSweepReport",
    "PerturbationSpec",
    "PerturbedNetwork",
    "ScenarioFragment",
    "ScenarioResult",
    "ShrinkOutcome",
    "actor_by_name",
    "apply_perturbation",
    "compose_scenario",
    "execute_scenario",
    "load_repro",
    "replay_interleaving",
    "run_campaign",
    "run_schedule",
    "save_repro",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink",
    "shrink_trace",
    "sweep",
]
