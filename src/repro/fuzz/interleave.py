"""Focused interleaving sweeps: many schedules of one concrete workload.

The fuzzer's `interleave` actor explores schedules of the synthetic
differential world *per scenario*; this module is the complementary
hammer — take one fixed workload and drive the engine's seeded
schedule exploration across thousands of seeds, comparing every explored
schedule against the canonical one. Two workloads:

* ``"fti"`` — the §V fig5 world (stencil + FTI encoders with ready
  notifications, readiness-gather waves and the Reed–Solomon ring). The
  control traffic is counting-satisfiable, so *any* divergence — result,
  clocks, trace bytes, or a deadlock — is a real concurrency bug. This
  is what the nightly CI sweep runs.
* ``"race-demo"`` — a three-rank wildcard race that legally deadlocks
  under roughly half of all schedules. It exists so the divergence →
  shrink → repro-file → replay pipeline itself is exercised end to end
  by fast tests and the bench smoke.

A finding serializes to a versioned ``"kind": "interleaving"`` repro
file; ``python -m repro fuzz --replay`` re-executes it from the recorded
:class:`~repro.simmpi.ScheduleTrace` and exits nonzero if the failure
class changed. Traces are first shrunk by greedily reverting permuted
batches to canonical order while the failure class holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi import (
    ANY_SOURCE,
    DeadlockError,
    Engine,
    ScheduleTrace,
    TraceRecorder,
)

WORKLOADS = ("fti", "race-demo")

#: Failure classes a sweep can find (also what repro files record).
DEADLOCK = "schedule_deadlock"
MISMATCH = "schedule_mismatch"


@dataclass(frozen=True)
class InterleavingSpec:
    """One sweep workload, fully determined by its fields."""

    workload: str = "fti"
    nodes: int = 4
    app_per_node: int = 2
    iterations: int = 3
    checkpoint_every: int = 2

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {', '.join(WORKLOADS)}"
            )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "nodes": self.nodes,
            "app_per_node": self.app_per_node,
            "iterations": self.iterations,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InterleavingSpec":
        return cls(
            workload=data["workload"],
            nodes=int(data["nodes"]),
            app_per_node=int(data["app_per_node"]),
            iterations=int(data["iterations"]),
            checkpoint_every=int(data["checkpoint_every"]),
        )


def _race_demo_program(ctx):
    """Rank 0 takes ANY_SOURCE then specifically rank 2; schedules where
    rank 2's send posts first starve the second receive."""
    comm = ctx.comm
    if ctx.rank == 0:
        first, status = yield from comm.recv_status(source=ANY_SOURCE, tag=0)
        second = yield from comm.recv(source=2, tag=0)
        return (status.source, first, second)
    yield from comm.send(f"from{ctx.rank}", dest=0, tag=0)
    return ctx.rank


def build_world(spec: InterleavingSpec):
    """``(programs, nranks, network)`` of the spec's workload."""
    if spec.workload == "race-demo":
        return _race_demo_program, 3, None

    import numpy as np

    from repro.apps.tsunami import TsunamiConfig, TsunamiSimulation
    from repro.apps.workload import ExecutionMode
    from repro.ftilib.tracesim import FTITraceConfig, make_fti_world_programs
    from repro.machine.placement import FTIPlacement
    from repro.machine.tsubame2 import tsubame2_fti_machine

    n_app = spec.nodes * spec.app_per_node
    px = int(np.sqrt(n_app))
    py = n_app // px
    cfg = TsunamiConfig(
        px=px,
        py=py,
        nx=32 * px,
        ny=32 * py,
        iterations=spec.iterations,
        synthetic=True,
        allreduce_every=0,
        mode=ExecutionMode.WAVES,
    )
    sim = TsunamiSimulation(cfg)
    placement = FTIPlacement(spec.nodes, spec.app_per_node)
    programs = make_fti_world_programs(
        sim,
        placement,
        iterations=spec.iterations,
        trace_cfg=FTITraceConfig(checkpoint_every=spec.checkpoint_every),
    )
    network = tsubame2_fti_machine(spec.nodes, spec.app_per_node).network
    return programs, placement.nranks, network


@dataclass(frozen=True)
class ScheduleOutcome:
    """One schedule's comparable observation."""

    status: str  # "done" | "deadlock"
    signature: tuple  # finished-flags + clocks + trace bytes
    blocked: tuple[int, ...] = ()
    trace: tuple[tuple[int, tuple[int, ...]], ...] = ()

    def failure_kind(self, canonical: "ScheduleOutcome") -> str | None:
        """``None`` when equivalent to ``canonical``, else the class."""
        if self.status == "deadlock":
            return DEADLOCK
        if self.signature != canonical.signature:
            return MISMATCH
        return None


def run_schedule(
    spec: InterleavingSpec,
    *,
    schedule_seed: int | None = None,
    schedule_trace: ScheduleTrace | None = None,
) -> ScheduleOutcome:
    """Run the workload once under one (possibly explored) schedule."""
    programs, nranks, network = build_world(spec)
    tracer = TraceRecorder(nranks)
    engine = Engine(
        nranks,
        network=network,
        tracer=tracer,
        schedule_seed=schedule_seed,
        schedule_trace=schedule_trace,
    )
    trace: tuple = ()
    try:
        results = engine.run(programs)
    except DeadlockError as err:
        if engine.schedule_trace is not None:
            trace = engine.schedule_trace.entries
        return ScheduleOutcome(
            status="deadlock",
            signature=("deadlock", tuple(sorted(err.blocked))),
            blocked=tuple(sorted(err.blocked)),
            trace=trace,
        )
    if engine.schedule_trace is not None:
        trace = engine.schedule_trace.entries
    signature = (
        "done",
        tuple(r is not None for r in results),
        tuple(engine.rank_times()),
        tracer.bytes_matrix.tobytes(),
        tracer.count_matrix.tobytes(),
    )
    return ScheduleOutcome(status="done", signature=signature, trace=trace)


def shrink_trace(
    spec: InterleavingSpec,
    trace: tuple[tuple[int, tuple[int, ...]], ...],
    kind: str,
    canonical: ScheduleOutcome,
    *,
    max_executions: int = 48,
) -> tuple[tuple[tuple[int, tuple[int, ...]], ...], int]:
    """Greedily revert permuted batches to canonical order while the
    failure class holds; returns ``(minimal trace, executions used)``."""
    executions = 0
    current = ScheduleTrace.from_entries(trace)
    improved = True
    while improved and executions < max_executions:
        improved = False
        for ordinal, _ in current.entries:
            if executions >= max_executions:
                break
            candidate = current.without_ordinal(ordinal)
            outcome = run_schedule(spec, schedule_trace=candidate)
            executions += 1
            if outcome.failure_kind(canonical) == kind:
                current = candidate
                improved = True
                break
    return current.entries, executions


@dataclass(frozen=True)
class InterleavingFinding:
    """One diverging schedule, shrunk and ready to serialize."""

    seed: int
    kind: str  # DEADLOCK | MISMATCH
    blocked: tuple[int, ...]
    trace: tuple[tuple[int, tuple[int, ...]], ...]

    def describe(self) -> str:
        extra = f" blocked {list(self.blocked)}" if self.blocked else ""
        return (
            f"seed {self.seed}: {self.kind}{extra} "
            f"({len(self.trace)} permuted batches)"
        )


@dataclass
class InterleavingSweepReport:
    """What a sweep produced, plus the BENCH record fields."""

    spec: InterleavingSpec
    seeds: tuple[int, ...]
    findings: list[InterleavingFinding]
    permuted_batches: int
    wall_seconds: float
    shrink_executions: int = 0

    @property
    def n_schedules(self) -> int:
        return len(self.seeds)

    @property
    def schedules_per_s(self) -> float:
        if not self.wall_seconds:
            return 0.0
        return self.n_schedules / self.wall_seconds

    def to_record(self) -> dict:
        """The BENCH_interleaving.json payload."""
        kinds: dict[str, int] = {}
        for finding in self.findings:
            kinds[finding.kind] = kinds.get(finding.kind, 0) + 1
        return {
            "section": "interleaving",
            "spec": self.spec.to_dict(),
            "schedules": self.n_schedules,
            "seed_range": [min(self.seeds), max(self.seeds)]
            if self.seeds
            else [],
            "permuted_batches": self.permuted_batches,
            "wall_seconds": round(self.wall_seconds, 3),
            "schedules_per_s": round(self.schedules_per_s, 2),
            "findings": dict(sorted(kinds.items())),
            "shrink_executions": self.shrink_executions,
        }

    def summary(self) -> str:
        lines = [
            f"interleaving sweep [{self.spec.workload}]: "
            f"{self.n_schedules} schedules in {self.wall_seconds:.1f}s "
            f"({self.schedules_per_s:.1f}/s, "
            f"{self.permuted_batches} permuted batches)",
            f"divergences: {len(self.findings)}",
        ]
        for finding in self.findings[:8]:
            lines.append("  " + finding.describe())
        if len(self.findings) > 8:
            lines.append(f"  ... and {len(self.findings) - 8} more")
        return "\n".join(lines)


def sweep(
    spec: InterleavingSpec,
    *,
    n_schedules: int = 100,
    seed_start: int = 0,
    shrink: bool = True,
    max_findings: int = 8,
) -> InterleavingSweepReport:
    """Explore ``n_schedules`` seeded interleavings of the workload.

    Seeds are the contiguous range ``[seed_start, seed_start +
    n_schedules)`` so a nightly log line pins the whole sweep. Findings
    beyond ``max_findings`` are counted but not shrunk (the sweep is
    report-only; the first few minimal repros are what a human reads).
    """
    import time

    started = time.perf_counter()
    canonical = run_schedule(spec)
    seeds = tuple(range(seed_start, seed_start + n_schedules))
    findings: list[InterleavingFinding] = []
    permuted = 0
    shrink_execs = 0
    for seed in seeds:
        outcome = run_schedule(spec, schedule_seed=seed)
        permuted += len(outcome.trace)
        kind = outcome.failure_kind(canonical)
        if kind is None:
            continue
        trace = outcome.trace
        if shrink and len(findings) < max_findings:
            trace, used = shrink_trace(spec, trace, kind, canonical)
            shrink_execs += used
        findings.append(
            InterleavingFinding(
                seed=seed, kind=kind, blocked=outcome.blocked, trace=trace
            )
        )
    return InterleavingSweepReport(
        spec=spec,
        seeds=seeds,
        findings=findings,
        permuted_batches=permuted,
        wall_seconds=time.perf_counter() - started,
        shrink_executions=shrink_execs,
    )


# -- repro files --------------------------------------------------------------


def finding_to_dict(
    spec: InterleavingSpec, finding: InterleavingFinding
) -> dict:
    """Versioned ``"kind": "interleaving"`` repro payload."""
    from repro.fuzz.reprofile import REPRO_VERSION

    return {
        "version": REPRO_VERSION,
        "kind": "interleaving",
        "classification": finding.kind,
        "spec": spec.to_dict(),
        "seed": finding.seed,
        "blocked": list(finding.blocked),
        "schedule_trace": [
            [ordinal, list(perm)] for ordinal, perm in finding.trace
        ],
    }


def replay_interleaving(data: dict) -> tuple[str | None, str]:
    """Re-execute an interleaving repro dict from its recorded trace.

    Returns ``(observed_kind, expected_kind)`` — ``observed_kind`` is
    ``None`` when the replayed schedule no longer diverges from
    canonical.
    """
    from repro.fuzz.reprofile import _SUPPORTED_VERSIONS

    version = data.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported repro version {version!r}")
    spec = InterleavingSpec.from_dict(data["spec"])
    trace = ScheduleTrace.from_entries(
        (int(ordinal), tuple(int(i) for i in perm))
        for ordinal, perm in data.get("schedule_trace", [])
    )
    canonical = run_schedule(spec)
    observed = run_schedule(spec, schedule_trace=trace)
    return observed.failure_kind(canonical), data["classification"]


__all__ = [
    "DEADLOCK",
    "MISMATCH",
    "WORKLOADS",
    "InterleavingFinding",
    "InterleavingSpec",
    "InterleavingSweepReport",
    "ScheduleOutcome",
    "build_world",
    "finding_to_dict",
    "replay_interleaving",
    "run_schedule",
    "shrink_trace",
    "sweep",
]
