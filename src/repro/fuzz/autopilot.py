"""Autopilot: the steering loop that drives a fuzz campaign.

Generation → execution → classification → steering, in rounds:

* **generation** — for each scenario the parent RNG draws how many and
  which actors participate (weighted without replacement) and spawns one
  child stream that the actors consume. The stream of scenarios is a pure
  function of ``(seed, budget, actor set, shape)`` — executing them on 0,
  2 or 8 pool workers cannot change it, because workers never touch the
  parent RNG and results are consumed in submission order (the same
  discipline as the PR 2 campaign sweep).
* **steering** — actors that participated in a disagreeing scenario get
  their selection weight multiplied at the *round boundary* (a barrier),
  pushing generation toward the model-disagreement regions the campaign
  exists to map. Weight updates depend only on classifications, which are
  deterministic, so steering preserves bit-reproducibility.
* **shrinking** — after the budget is spent, the first few disagreeing
  scenarios are reduced to minimal repros (:mod:`repro.fuzz.shrink`).

The campaign summary (scenarios/s, disagreement rate, coverage by actor,
classification histogram) is what ``repro fuzz`` prints and what lands in
``BENCH_fuzzer.json``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.fuzz.actors import ACTOR_NAMES, FuzzScenario, compose_scenario
from repro.fuzz.executor import ScenarioResult, execute_scenario
from repro.fuzz.shape import FuzzShape
from repro.fuzz.shrink import ShrinkOutcome, shrink
from repro.util.rng import resolve_rng

MAX_ACTOR_WEIGHT = 8.0
STEER_FACTOR = 1.5


def _execute_task(scenario: FuzzScenario) -> ScenarioResult:
    """Module-level so ProcessPoolExecutor can pickle it; executor-internal
    blowups become a ``crash`` classification instead of killing the
    campaign."""
    try:
        return execute_scenario(scenario)
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        return ScenarioResult(
            classification="crash",
            detail=f"executor raised {type(exc).__name__}: {exc}",
        )


@dataclass(frozen=True)
class FuzzCampaignConfig:
    """Knobs of one campaign (CLI flags map 1:1)."""

    budget: int = 200
    seed: int = 42
    actors: tuple[str, ...] = ACTOR_NAMES
    workers: int = 0
    shape: FuzzShape = field(default_factory=FuzzShape)
    shrink_limit: int = 4
    shrink_executions: int = 48
    round_size: int = 16
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if not self.actors:
            raise ValueError("need at least one actor")
        from repro.fuzz.actors import actor_by_name

        for name in self.actors:
            actor_by_name(name)  # validates early, with the actor list


@dataclass
class CampaignReport:
    """Everything a campaign produced, plus the derived summary numbers."""

    config: FuzzCampaignConfig
    scenarios: list[FuzzScenario]
    results: list[ScenarioResult]
    shrunken: list[ShrinkOutcome]
    wall_seconds: float
    final_weights: dict[str, float] = field(default_factory=dict)

    @property
    def classifications(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.classification] = (
                counts.get(result.classification, 0) + 1
            )
        return dict(sorted(counts.items()))

    @property
    def coverage(self) -> dict[str, int]:
        counts = {name: 0 for name in self.config.actors}
        for scenario in self.scenarios:
            for name in scenario.actor_names:
                counts[name] += 1
        return counts

    @property
    def disagreements(self) -> list[tuple[FuzzScenario, ScenarioResult]]:
        return [
            (scenario, result)
            for scenario, result in zip(self.scenarios, self.results)
            if result.disagrees
        ]

    @property
    def disagreement_rate(self) -> float:
        return len(self.disagreements) / max(1, len(self.results))

    @property
    def scenarios_per_s(self) -> float:
        return len(self.results) / self.wall_seconds if self.wall_seconds else 0.0

    def to_record(self) -> dict:
        """The BENCH_fuzzer.json payload."""
        return {
            "section": "fuzzer",
            "seed": self.config.seed,
            "budget": self.config.budget,
            "scenarios": len(self.results),
            "wall_seconds": round(self.wall_seconds, 3),
            "scenarios_per_s": round(self.scenarios_per_s, 2),
            "classifications": self.classifications,
            "disagreement_rate": round(self.disagreement_rate, 4),
            "coverage": self.coverage,
            "shrunken": [
                {
                    "classification": outcome.classification,
                    "events": outcome.scenario.schedule.n_failures,
                    "executions": outcome.executions,
                }
                for outcome in self.shrunken
            ],
        }

    def summary(self) -> str:
        """Human-readable campaign wrap-up for the CLI."""
        lines = [
            f"fuzz campaign: {len(self.results)} scenarios "
            f"(seed {self.config.seed}) in {self.wall_seconds:.1f}s "
            f"({self.scenarios_per_s:.1f}/s)",
            "classifications: "
            + ", ".join(
                f"{name}={count}"
                for name, count in self.classifications.items()
            ),
            "coverage: "
            + ", ".join(
                f"{name}={count}" for name, count in self.coverage.items()
            ),
            f"disagreement rate: {100 * self.disagreement_rate:.1f}%",
        ]
        for outcome in self.shrunken:
            lines.append(
                f"shrunk {outcome.classification}: "
                f"{outcome.original_cost} -> {outcome.final_cost} "
                f"({outcome.scenario.describe()})"
            )
        return "\n".join(lines)


def generate_scenarios(
    config: FuzzCampaignConfig,
    rng: np.random.Generator,
    count: int,
    weights: np.ndarray,
    start_index: int,
) -> list[FuzzScenario]:
    """Draw ``count`` scenarios from the parent stream (the only RNG
    consumer — see the module docstring's invariance argument)."""
    names = config.actors
    scenarios = []
    for offset in range(count):
        n_actors = int(rng.integers(1, min(3, len(names)) + 1))
        p = weights / weights.sum()
        chosen = rng.choice(len(names), size=n_actors, replace=False, p=p)
        child = rng.spawn(1)[0]
        scenarios.append(
            compose_scenario(
                config.shape,
                tuple(names[i] for i in chosen),
                child,
                seed=start_index + offset,
            )
        )
    return scenarios


def run_campaign(config: FuzzCampaignConfig) -> CampaignReport:
    """Run one steered fuzz campaign; see the module docstring."""
    rng = resolve_rng(config.seed)
    weights = np.ones(len(config.actors), dtype=np.float64)
    scenarios: list[FuzzScenario] = []
    results: list[ScenarioResult] = []
    started = time.perf_counter()

    pool = (
        ProcessPoolExecutor(max_workers=config.workers)
        if config.workers > 0
        else None
    )
    try:
        while len(results) < config.budget:
            if (
                config.max_seconds is not None
                and time.perf_counter() - started > config.max_seconds
            ):
                break
            count = min(config.round_size, config.budget - len(results))
            batch = generate_scenarios(
                config, rng, count, weights, start_index=len(results)
            )
            if pool is not None:
                batch_results = list(pool.map(_execute_task, batch))
            else:
                batch_results = [_execute_task(s) for s in batch]
            scenarios.extend(batch)
            results.extend(batch_results)
            # Round-boundary steering: lean into the actors that found
            # disagreements this round.
            for scenario, result in zip(batch, batch_results):
                if not result.disagrees:
                    continue
                for name in scenario.actor_names:
                    index = config.actors.index(name)
                    weights[index] = min(
                        weights[index] * STEER_FACTOR, MAX_ACTOR_WEIGHT
                    )
    finally:
        if pool is not None:
            pool.shutdown()

    shrunken: list[ShrinkOutcome] = []
    for scenario, result in zip(scenarios, results):
        if len(shrunken) >= config.shrink_limit:
            break
        if result.disagrees:
            shrunken.append(
                shrink(
                    scenario,
                    target=result.classification,
                    max_executions=config.shrink_executions,
                )
            )

    wall = time.perf_counter() - started
    return CampaignReport(
        config=config,
        scenarios=scenarios,
        results=results,
        shrunken=shrunken,
        wall_seconds=wall,
        final_weights={
            name: float(w) for name, w in zip(config.actors, weights)
        },
    )
