"""Process-placement policies: which node hosts which MPI rank.

The paper's evaluation hinges on placement: "to maximize intra-node
communications, consecutive process ranks are placed on the same node"
(§III). Placement interacts with clustering — block placement plus
consecutive-rank clusters puts whole clusters on single nodes, which is
what destroys erasure-code reliability in §III-B.

A placement is a bijection between ranks and (node, slot) pairs. The
:class:`FTIPlacement` variant models §V's layout: each node hosts
``app_per_node`` application processes *plus one dedicated encoder process*
whose world rank is the first of the node's block (ranks 0, 17, 34, 51 …
in the paper's 16-app-process configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Placement:
    """Base class: rank ↔ node mapping over ``nnodes * procs_per_node`` ranks."""

    def __init__(self, nnodes: int, procs_per_node: int):
        if nnodes <= 0 or procs_per_node <= 0:
            raise ValueError(
                f"need positive nnodes/procs_per_node, got {nnodes}/{procs_per_node}"
            )
        self.nnodes = nnodes
        self.procs_per_node = procs_per_node
        self.nranks = nnodes * procs_per_node
        self._node_array: np.ndarray | None = None

    def node_of_rank(self, rank: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def node_array(self) -> np.ndarray:
        """rank → node for every rank as one int64 vector.

        Cached after the first call (placements are immutable once built);
        callers must treat the returned array as read-only. This is the
        placement-derived table every vectorized model indexes instead of
        calling :meth:`node_of_rank` rank by rank.
        """
        if self._node_array is None:
            self._node_array = self._build_node_array()
        return self._node_array

    def _build_node_array(self) -> np.ndarray:
        return np.fromiter(
            (self.node_of_rank(r) for r in range(self.nranks)),
            dtype=np.int64,
            count=self.nranks,
        )

    def ranks_of_node(self, node: int) -> list[int]:
        """All ranks hosted by ``node`` (default: scan; subclasses optimize)."""
        self._check_node(node)
        return [r for r in range(self.nranks) if self.node_of_rank(r) == node]

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return rank

    def _check_node(self, node: int) -> int:
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} out of range [0, {self.nnodes})")
        return node


class BlockPlacement(Placement):
    """Consecutive ranks fill each node — the paper's topology-aware layout."""

    def node_of_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.procs_per_node

    def _build_node_array(self) -> np.ndarray:
        return np.arange(self.nranks, dtype=np.int64) // self.procs_per_node

    def ranks_of_node(self, node: int) -> list[int]:
        self._check_node(node)
        base = node * self.procs_per_node
        return list(range(base, base + self.procs_per_node))


class RoundRobinPlacement(Placement):
    """Cyclic placement: rank ``r`` on node ``r mod nnodes`` (anti-locality)."""

    def node_of_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.nnodes

    def _build_node_array(self) -> np.ndarray:
        return np.arange(self.nranks, dtype=np.int64) % self.nnodes

    def ranks_of_node(self, node: int) -> list[int]:
        self._check_node(node)
        return list(range(node, self.nranks, self.nnodes))


class ExplicitPlacement(Placement):
    """Placement from an explicit rank→node table (for tests and imports)."""

    def __init__(self, node_of: list[int], nnodes: int):
        counts: dict[int, int] = {}
        for node in node_of:
            if not 0 <= node < nnodes:
                raise ValueError(f"node {node} out of range [0, {nnodes})")
            counts[node] = counts.get(node, 0) + 1
        ppn = max(counts.values()) if counts else 1
        super().__init__(nnodes, ppn)
        self.nranks = len(node_of)
        self._node_of = list(node_of)
        self._ranks_of: dict[int, list[int]] = {n: [] for n in range(nnodes)}
        for rank, node in enumerate(node_of):
            self._ranks_of[node].append(rank)

    def node_of_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return self._node_of[rank]

    def _build_node_array(self) -> np.ndarray:
        return np.asarray(self._node_of, dtype=np.int64)

    def ranks_of_node(self, node: int) -> list[int]:
        self._check_node(node)
        return list(self._ranks_of[node])


@dataclass(frozen=True)
class FTIRankLayout:
    """Role of one world rank under :class:`FTIPlacement`."""

    world_rank: int
    node: int
    is_encoder: bool
    app_index: int | None  # dense application-process index, None for encoders


class FTIPlacement(Placement):
    """§V layout: per node, one encoder rank followed by the app ranks.

    With ``app_per_node = 16``, node *i* hosts world ranks
    ``[17 i, 17 i + 16]``; the *first* rank of each block (0, 17, 34, 51 …)
    is the FTI encoder process, matching the interrupted diagonals of
    Fig. 5b.
    """

    def __init__(self, nnodes: int, app_per_node: int):
        super().__init__(nnodes, app_per_node + 1)
        self.app_per_node = app_per_node

    def node_of_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.procs_per_node

    def _build_node_array(self) -> np.ndarray:
        return np.arange(self.nranks, dtype=np.int64) // self.procs_per_node

    def ranks_of_node(self, node: int) -> list[int]:
        self._check_node(node)
        base = node * self.procs_per_node
        return list(range(base, base + self.procs_per_node))

    def is_encoder(self, rank: int) -> bool:
        """Whether ``rank`` is a dedicated FTI encoder process."""
        self._check_rank(rank)
        return rank % self.procs_per_node == 0

    def encoder_ranks(self) -> list[int]:
        """World ranks of all encoder processes (one per node)."""
        return [n * self.procs_per_node for n in range(self.nnodes)]

    def app_ranks(self) -> list[int]:
        """World ranks of all application processes, in world order."""
        return [r for r in range(self.nranks) if not self.is_encoder(r)]

    def app_index(self, rank: int) -> int:
        """Dense application index (0 … n_app-1) of an application rank."""
        if self.is_encoder(rank):
            raise ValueError(f"rank {rank} is an encoder process")
        node = self.node_of_rank(rank)
        offset = rank % self.procs_per_node - 1
        return node * self.app_per_node + offset

    def world_rank_of_app(self, app_index: int) -> int:
        """Inverse of :meth:`app_index`."""
        if not 0 <= app_index < self.nnodes * self.app_per_node:
            raise ValueError(f"app index {app_index} out of range")
        node, offset = divmod(app_index, self.app_per_node)
        return node * self.procs_per_node + 1 + offset

    def layout(self, rank: int) -> FTIRankLayout:
        """Full layout record for ``rank``."""
        enc = self.is_encoder(rank)
        return FTIRankLayout(
            world_rank=rank,
            node=self.node_of_rank(rank),
            is_encoder=enc,
            app_index=None if enc else self.app_index(rank),
        )
