"""The machine model: nodes, placement, power domains, storage, network.

A :class:`Machine` bundles everything topology-related that the paper's
four dimensions depend on:

* rank ↔ node mapping (via a :class:`~repro.machine.placement.Placement`);
* power-supply groups — §II-C2: "two nodes sharing a power supply should be
  located in the same cluster", the source of correlated failures;
* per-node SSDs and the shared PFS (for the checkpointing layers);
* a :class:`~repro.simmpi.network.NetworkModel` wired to the placement so
  intra-node messages ride the fast link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.placement import BlockPlacement, Placement
from repro.machine.storage import (
    StorageDevice,
    StorageSpec,
    TSUBAME2_PFS,
    TSUBAME2_SSD,
)
from repro.simmpi.network import LinkParameters, NetworkModel


@dataclass(frozen=True)
class NodeInfo:
    """Static facts about one compute node."""

    index: int
    ranks: tuple[int, ...]
    psu_group: int


class Machine:
    """Simulated cluster with placement, power domains and storage.

    Parameters
    ----------
    nnodes, procs_per_node:
        Shape of the partition the job runs on.
    placement:
        rank→node policy; defaults to block placement (the paper's).
    psu_group_size:
        Number of adjacent nodes sharing one power supply (≥ 1). Nodes
        ``[k·g, (k+1)·g)`` form power group ``k``.
    ssd_spec / pfs_spec:
        Storage classes; defaults are the TSUBAME2 values of Table I.
    intra_link / inter_link:
        Network parameters; defaults approximate TSUBAME2's dual-rail QDR.
    """

    def __init__(
        self,
        nnodes: int,
        procs_per_node: int,
        *,
        placement: Placement | None = None,
        psu_group_size: int = 2,
        ssd_spec: StorageSpec = TSUBAME2_SSD,
        pfs_spec: StorageSpec = TSUBAME2_PFS,
        intra_link: LinkParameters | None = None,
        inter_link: LinkParameters | None = None,
    ):
        if psu_group_size < 1:
            raise ValueError(f"psu_group_size must be >= 1, got {psu_group_size}")
        self.placement = placement or BlockPlacement(nnodes, procs_per_node)
        if self.placement.nnodes != nnodes:
            raise ValueError(
                f"placement covers {self.placement.nnodes} nodes, machine has {nnodes}"
            )
        self.nnodes = nnodes
        self.procs_per_node = self.placement.procs_per_node
        self.nranks = self.placement.nranks
        self.psu_group_size = psu_group_size

        self.ssd_spec = ssd_spec
        self.pfs_spec = pfs_spec
        self.node_ssds = [
            StorageDevice(ssd_spec, label=f"ssd[node{n}]") for n in range(nnodes)
        ]
        self.pfs = StorageDevice(pfs_spec, label="pfs")

        self._network = NetworkModel(
            intra_node=intra_link,
            inter_node=inter_link,
            locator=self.placement.node_of_rank,
        )

    # -- topology queries -------------------------------------------------

    def node_of_rank(self, rank: int) -> int:
        """Node hosting ``rank``."""
        return self.placement.node_of_rank(rank)

    def ranks_of_node(self, node: int) -> list[int]:
        """All ranks hosted by ``node``."""
        return self.placement.ranks_of_node(node)

    def nodes_of_ranks(self, ranks) -> set[int]:
        """Set of nodes hosting any of ``ranks``."""
        return {self.placement.node_of_rank(r) for r in ranks}

    def psu_group_of_node(self, node: int) -> int:
        """Power-supply group of ``node``."""
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} out of range [0, {self.nnodes})")
        return node // self.psu_group_size

    def nodes_in_psu_group(self, group: int) -> list[int]:
        """Nodes belonging to power group ``group``."""
        lo = group * self.psu_group_size
        if not 0 <= lo < self.nnodes:
            raise ValueError(f"psu group {group} out of range")
        return list(range(lo, min(lo + self.psu_group_size, self.nnodes)))

    def n_psu_groups(self) -> int:
        """Number of power-supply groups."""
        return -(-self.nnodes // self.psu_group_size)

    def node_info(self, node: int) -> NodeInfo:
        """Bundle of static facts about ``node``."""
        return NodeInfo(
            index=node,
            ranks=tuple(self.ranks_of_node(node)),
            psu_group=self.psu_group_of_node(node),
        )

    # -- wiring ---------------------------------------------------------------

    @property
    def network(self) -> NetworkModel:
        """Network model bound to this machine's placement."""
        return self._network

    def ssd_of_rank(self, rank: int) -> StorageDevice:
        """The node-local SSD visible to ``rank``."""
        return self.node_ssds[self.node_of_rank(rank)]

    def wipe_node(self, node: int) -> None:
        """Model a node loss: its SSD contents are gone."""
        self.node_ssds[node].clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.nnodes} nodes x {self.procs_per_node} procs, "
            f"{self.nranks} ranks)"
        )
