"""Machine/topology models: nodes, placement, power domains, storage.

Substitutes for the physical TSUBAME2 platform (Table I). Everything the
paper's four optimization dimensions depend on — which ranks share a node,
which nodes share a power supply, how fast the SSDs and the PFS are — lives
here.
"""

from repro.machine.machine import Machine, NodeInfo
from repro.machine.placement import (
    BlockPlacement,
    ExplicitPlacement,
    FTIPlacement,
    FTIRankLayout,
    Placement,
    RoundRobinPlacement,
)
from repro.machine.storage import (
    StorageDevice,
    StorageFullError,
    StorageSpec,
    TSUBAME2_PFS,
    TSUBAME2_SSD,
)
from repro.machine.tsubame2 import (
    TSUBAME2,
    TSUBAME2_INTER_LINK,
    TSUBAME2_INTRA_LINK,
    Tsubame2Spec,
    reliability_study_machine,
    tsubame2_fti_machine,
    tsubame2_machine,
)

__all__ = [
    "BlockPlacement",
    "ExplicitPlacement",
    "FTIPlacement",
    "FTIRankLayout",
    "Machine",
    "NodeInfo",
    "Placement",
    "RoundRobinPlacement",
    "StorageDevice",
    "StorageFullError",
    "StorageSpec",
    "TSUBAME2",
    "TSUBAME2_INTER_LINK",
    "TSUBAME2_INTRA_LINK",
    "TSUBAME2_PFS",
    "TSUBAME2_SSD",
    "Tsubame2Spec",
    "reliability_study_machine",
    "tsubame2_fti_machine",
    "tsubame2_machine",
]
