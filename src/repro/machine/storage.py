"""Storage devices of the simulated machine: node-local SSDs and the PFS.

FTI's whole point is exploiting the bandwidth gap between node-local storage
and the parallel file system (§II-B1); the checkpointing layer needs devices
with capacities, bandwidths and (for the PFS) contention among concurrent
writers. Devices store real payloads so checkpoint/restart tests can verify
bit-equality, while charging virtual time according to their specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.util.units import format_bytes
from repro.util.validation import check_positive


class StorageFullError(Exception):
    """Raised when a write would exceed a device's capacity."""


@dataclass(frozen=True)
class StorageSpec:
    """Static description of a storage device class.

    ``shared`` marks devices (the PFS) whose bandwidth is divided among
    concurrent writers; node-local SSDs are private to their node.
    """

    name: str
    read_bw_Bps: float
    write_bw_Bps: float
    capacity_bytes: int
    latency_s: float = 0.0
    shared: bool = False

    def __post_init__(self) -> None:
        check_positive("read_bw_Bps", self.read_bw_Bps)
        check_positive("write_bw_Bps", self.write_bw_Bps)
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("latency_s", self.latency_s, strict=False)

    def write_time(self, nbytes: int, concurrent: int = 1) -> float:
        """Seconds to write ``nbytes`` with ``concurrent`` simultaneous writers."""
        effective = self.write_bw_Bps / max(1, concurrent if self.shared else 1)
        return self.latency_s + nbytes / effective

    def read_time(self, nbytes: int, concurrent: int = 1) -> float:
        """Seconds to read ``nbytes`` with ``concurrent`` simultaneous readers."""
        effective = self.read_bw_Bps / max(1, concurrent if self.shared else 1)
        return self.latency_s + nbytes / effective


class StorageDevice:
    """A stateful device instance: holds payloads, tracks capacity.

    Keys are arbitrary hashables (the checkpoint layer uses
    ``(level, rank, version)`` tuples). Writing an existing key replaces it
    (checkpoint overwrite), releasing the previous allocation first.
    """

    def __init__(self, spec: StorageSpec, *, label: str | None = None):
        self.spec = spec
        self.label = label or spec.name
        self.used_bytes = 0
        self._contents: dict[Any, tuple[int, Any]] = {}

    def __contains__(self, key: Any) -> bool:
        return key in self._contents

    def __len__(self) -> int:
        return len(self._contents)

    @property
    def free_bytes(self) -> int:
        """Remaining capacity in bytes."""
        return self.spec.capacity_bytes - self.used_bytes

    def write(self, key: Any, payload: Any, nbytes: int, *, concurrent: int = 1) -> float:
        """Store ``payload`` under ``key``; returns the modeled write time.

        Raises :class:`StorageFullError` if the device cannot hold it.
        """
        check_positive("nbytes", nbytes, strict=False)
        previous = self._contents.get(key)
        freed = previous[0] if previous is not None else 0
        if self.used_bytes - freed + nbytes > self.spec.capacity_bytes:
            raise StorageFullError(
                f"{self.label}: writing {format_bytes(nbytes)} exceeds capacity "
                f"({format_bytes(self.used_bytes - freed)} used of "
                f"{format_bytes(self.spec.capacity_bytes)})"
            )
        self.used_bytes += nbytes - freed
        self._contents[key] = (nbytes, payload)
        return self.spec.write_time(nbytes, concurrent)

    def read(self, key: Any, *, concurrent: int = 1) -> tuple[Any, float]:
        """Return ``(payload, modeled read time)`` for ``key``."""
        if key not in self._contents:
            raise KeyError(f"{self.label}: no object stored under {key!r}")
        nbytes, payload = self._contents[key]
        return payload, self.spec.read_time(nbytes, concurrent)

    def size_of(self, key: Any) -> int:
        """Stored size in bytes of ``key``."""
        return self._contents[key][0]

    def delete(self, key: Any) -> None:
        """Remove ``key`` (missing keys are ignored, like ``rm -f``)."""
        entry = self._contents.pop(key, None)
        if entry is not None:
            self.used_bytes -= entry[0]

    def clear(self) -> None:
        """Drop everything (device wipe, used to model a node loss)."""
        self._contents.clear()
        self.used_bytes = 0

    def keys(self):
        """Iterate over stored keys."""
        return self._contents.keys()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageDevice({self.label}, used={format_bytes(self.used_bytes)}/"
            f"{format_bytes(self.spec.capacity_bytes)}, {len(self)} objects)"
        )


# -- TSUBAME2 presets (Table I) ---------------------------------------------

#: Node-local SSD: 120 GB RAID0 at 360 MB/s write (Table I), reads ~1 GB/s.
TSUBAME2_SSD = StorageSpec(
    name="ssd",
    read_bw_Bps=1.0e9,
    write_bw_Bps=360.0e6,
    capacity_bytes=120 * 10**9,
    latency_s=1e-4,
    shared=False,
)

#: Lustre PFS: measured 10 GB/s aggregate write throughput (Table I), shared.
TSUBAME2_PFS = StorageSpec(
    name="lustre",
    read_bw_Bps=12.0e9,
    write_bw_Bps=10.0e9,
    capacity_bytes=600 * 2 * 10**12,
    latency_s=5e-3,
    shared=True,
)
