"""TSUBAME2 preset — the experimental platform of Table I.

The constants here transcribe Table I; the factory functions build
:class:`~repro.machine.machine.Machine` instances shaped like the paper's
two experimental configurations:

* the §V evaluation partition — 64 nodes × 16 app processes (+1 FTI encoder
  per node → 1088 MPI ranks), and
* the §III-C reliability study — 128 nodes × 8 processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.machine import Machine
from repro.machine.placement import BlockPlacement, FTIPlacement
from repro.machine.storage import TSUBAME2_PFS, TSUBAME2_SSD
from repro.simmpi.network import LinkParameters


@dataclass(frozen=True)
class Tsubame2Spec:
    """Headline TSUBAME2 architecture facts (Table I)."""

    total_nodes: int = 1408
    cores_per_node: int = 12
    hyperthreads_per_node: int = 24
    memory_GB: float = 55.8
    gpus_per_node: int = 3
    gpu_total: int = 4224
    ssd_capacity_GB: float = 120.0
    ssd_write_MBps: float = 360.0
    ib_rails: int = 2
    ib_rail_GBps: float = 4.0
    pfs_write_GBps: float = 10.0
    os_name: str = "Suse Linux Enterprise + Windows HPC"

    @property
    def ib_total_Bps(self) -> float:
        """Aggregate injection bandwidth per node (dual-rail QDR)."""
        return self.ib_rails * self.ib_rail_GBps * 1e9


#: Singleton spec instance used by the presets and the Table I bench.
TSUBAME2 = Tsubame2Spec()

#: Intra-node transfers: shared-memory copies.
TSUBAME2_INTRA_LINK = LinkParameters(latency_s=5e-7, bandwidth_Bps=6.0e9)
#: Inter-node transfers: dual-rail QDR InfiniBand (4 GB/s × 2).
TSUBAME2_INTER_LINK = LinkParameters(
    latency_s=2e-6, bandwidth_Bps=TSUBAME2.ib_total_Bps
)


def tsubame2_machine(
    nnodes: int = 64,
    procs_per_node: int = 16,
    *,
    psu_group_size: int = 2,
) -> Machine:
    """A TSUBAME2-flavoured machine with block placement (no encoders).

    Defaults to the §V application shape: 64 nodes × 16 processes = 1024.
    """
    return Machine(
        nnodes,
        procs_per_node,
        placement=BlockPlacement(nnodes, procs_per_node),
        psu_group_size=psu_group_size,
        ssd_spec=TSUBAME2_SSD,
        pfs_spec=TSUBAME2_PFS,
        intra_link=TSUBAME2_INTRA_LINK,
        inter_link=TSUBAME2_INTER_LINK,
    )


def tsubame2_fti_machine(
    nnodes: int = 64,
    app_per_node: int = 16,
    *,
    psu_group_size: int = 2,
) -> Machine:
    """The §V machine *including* one FTI encoder process per node.

    With the defaults this yields 64 × 17 = 1088 world ranks; encoder ranks
    are 0, 17, 34, 51 … as in Fig. 5b.
    """
    placement = FTIPlacement(nnodes, app_per_node)
    return Machine(
        nnodes,
        placement.procs_per_node,
        placement=placement,
        psu_group_size=psu_group_size,
        ssd_spec=TSUBAME2_SSD,
        pfs_spec=TSUBAME2_PFS,
        intra_link=TSUBAME2_INTRA_LINK,
        inter_link=TSUBAME2_INTER_LINK,
    )


def reliability_study_machine(
    nnodes: int = 128, procs_per_node: int = 8
) -> Machine:
    """The §III-C distribution-study machine: 128 nodes × 8 = 1024 procs."""
    return tsubame2_machine(nnodes, procs_per_node)
