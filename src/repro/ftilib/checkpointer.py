"""FTI-style multilevel checkpointing over the simulated machine.

Levels, following FTI [3] (§II-B1):

* **L1 — local**: each rank's serialized state on its node's SSD. Fast;
  survives process (soft) failures, dies with the node.
* **L3 — encoded**: Reed–Solomon parity of each L2 encoding cluster's
  checkpoints, distributed round-robin across the cluster's *nodes*. With
  FTI's ``m = k`` configuration (:func:`fti_rs_code`) each node carries one
  data and one parity shard, so any ⌊k/2⌋ node losses are rebuildable.
* **L4 — PFS**: occasional flush of everything to the parallel file system,
  the slow catch-all for catastrophic events.

(FTI's L2 "partner copy" level is subsumed by L3's ``m = k`` redundancy;
:func:`half_parity_code` provides the cheaper ablation point.)

The checkpointer holds real bytes on the simulated storage devices and
charges virtual time from the device specs and the encoding-time model;
``restore`` transparently falls back L1 → decode(L3) → L4, which is exactly
the path a node failure exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.clustering.base import Clustering
from repro.erasure.reed_solomon import DecodeError, ReedSolomonCode
from repro.ftilib.serialization import bytes_to_state, pad_to, state_to_bytes
from repro.machine.machine import Machine
from repro.models.encoding_time import EncodingTimeModel
from repro.util.units import GiB


class RestoreError(Exception):
    """Raised when no level can produce the requested checkpoint."""


def fti_rs_code(k: int) -> ReedSolomonCode:
    """FTI's L3 configuration: ``m = k`` parity shards.

    Each of the cluster's ``k`` nodes stores its own data shard plus one
    parity shard, so a node loss costs two of the ``2k`` shards and the
    cluster survives the loss of **half its nodes** — exactly the tolerance
    FTI advertises and the catastrophic model
    (:func:`repro.failures.rs_half_tolerance`) assumes.
    """
    return ReedSolomonCode(k=k, m=k)


def half_parity_code(k: int) -> ReedSolomonCode:
    """Cheaper ablation variant: ``m = k/2`` parity shards.

    Halves encoding work and parity storage, but with co-located
    data+parity shards a node loss costs two shards, so only ``k/4`` node
    losses are survivable. Used by the XOR-vs-RS/parity ablation bench.
    """
    return ReedSolomonCode(k=k, m=max(1, k // 2))


@dataclass
class CheckpointStats:
    """Aggregate accounting for one run."""

    local_writes: int = 0
    local_bytes: int = 0
    encodings: int = 0
    encoded_bytes: int = 0
    pfs_flushes: int = 0
    restores_local: int = 0
    restores_decoded: int = 0
    restores_pfs: int = 0
    total_write_time_s: float = 0.0
    total_encode_time_s: float = 0.0


class MultilevelCheckpointer:
    """Checkpoint/restore engine bound to one machine + clustering.

    Parameters
    ----------
    machine:
        Storage + topology substrate (SSDs get written for real).
    clustering:
        L2 labels drive the encoding clusters; the protocol layer owns L1.
    code_factory:
        Maps L2 cluster size to an erasure code (default: FTI's ``m = k``
        Reed–Solomon, tolerating the loss of half the cluster's nodes).
    time_model:
        Analytic encoding-cost law used for virtual-time charging.
    keep_versions:
        Old checkpoint versions beyond this many are deleted from the SSDs
        (capacity hygiene, like FTI's rotating checkpoint slots).
    """

    def __init__(
        self,
        machine: Machine,
        clustering: Clustering,
        *,
        code_factory=fti_rs_code,
        time_model: EncodingTimeModel | None = None,
        keep_versions: int = 2,
    ):
        if clustering.n != machine.nranks:
            raise ValueError(
                f"clustering covers {clustering.n} processes, machine hosts "
                f"{machine.nranks}"
            )
        if keep_versions < 1:
            raise ValueError("keep_versions must be >= 1")
        self.machine = machine
        self.clustering = clustering
        self.code_factory = code_factory
        self.time_model = time_model or EncodingTimeModel()
        self.keep_versions = keep_versions
        self.stats = CheckpointStats()

        # version bookkeeping
        self._state_meta: dict[tuple[int, int], dict[str, Any]] = {}
        self._shard_len: dict[tuple[int, int], int] = {}
        self._versions_of_rank: dict[int, list[int]] = {}
        self._encoded_versions: set[tuple[int, int]] = set()

    # -- keys --------------------------------------------------------------

    @staticmethod
    def _ckpt_key(rank: int, version: int) -> tuple:
        return ("ckpt", rank, version)

    @staticmethod
    def _parity_key(l2: int, version: int, j: int) -> tuple:
        return ("parity", l2, version, j)

    # -- write path -----------------------------------------------------------

    def save_local(
        self, rank: int, state: dict, version: int, *, meta: dict | None = None
    ) -> float:
        """L1: serialize ``state`` and write it to the rank's node SSD.

        ``meta`` carries protocol sidecar data (receive counts, collective
        counters) that recovery needs; it is stored out-of-band (in a real
        system: a tiny header next to the checkpoint file). Returns the
        modeled write time in seconds.
        """
        blob = state_to_bytes(state)
        ssd = self.machine.ssd_of_rank(rank)
        seconds = ssd.write(self._ckpt_key(rank, version), blob, blob.size)
        self._state_meta[(rank, version)] = {
            "nbytes": int(blob.size),
            "meta": dict(meta or {}),
        }
        versions = self._versions_of_rank.setdefault(rank, [])
        if version not in versions:
            versions.append(version)
            versions.sort()
        self.stats.local_writes += 1
        self.stats.local_bytes += int(blob.size)
        self.stats.total_write_time_s += seconds
        self._expire_old(rank)
        return seconds

    def encode_cluster(self, l2_cluster: int, version: int) -> float:
        """L3: Reed–Solomon-encode one L2 cluster's version-``version``
        checkpoints; parity shards land round-robin on the member nodes.

        All members must have :meth:`save_local`-ed this version first (the
        protocol's pre-encoding barrier guarantees it). Returns the modeled
        encoding time (the real parity bytes are computed too).
        """
        members = [int(r) for r in self.clustering.l2_members(l2_cluster)]
        blobs = []
        for rank in members:
            key = self._ckpt_key(rank, version)
            ssd = self.machine.ssd_of_rank(rank)
            if key not in ssd:
                raise RestoreError(
                    f"rank {rank} has no local checkpoint v{version} to encode"
                )
            blob, _ = ssd.read(key)
            blobs.append(blob)
        shard_len = max(b.size for b in blobs)
        data = np.stack([pad_to(b, shard_len) for b in blobs])
        code = self.code_factory(len(members))
        parity = code.encode(data)
        nodes = [self.machine.node_of_rank(r) for r in members]
        for j in range(parity.shape[0]):
            node = nodes[j % len(nodes)]
            self.machine.node_ssds[node].write(
                self._parity_key(l2_cluster, version, j),
                parity[j],
                int(parity.shape[1]),
            )
        self._shard_len[(l2_cluster, version)] = shard_len
        self._encoded_versions.add((l2_cluster, version))
        cluster_gb = len(members) * shard_len / GiB
        seconds = self.time_model.seconds(cluster_gb, len(members))
        self.stats.encodings += 1
        self.stats.encoded_bytes += int(parity.size)
        self.stats.total_encode_time_s += seconds
        return seconds

    def flush_to_pfs(self, version: int) -> float:
        """L4: copy every rank's version-``version`` checkpoint to the PFS."""
        total_bytes = 0
        count = 0
        for rank in range(self.machine.nranks):
            key = self._ckpt_key(rank, version)
            ssd = self.machine.ssd_of_rank(rank)
            if key not in ssd:
                continue
            blob, _ = ssd.read(key)
            self.machine.pfs.write(key, blob, blob.size, concurrent=1)
            total_bytes += int(blob.size)
            count += 1
        if count == 0:
            raise RestoreError(f"no local checkpoints of version {version} to flush")
        self.stats.pfs_flushes += 1
        return self.machine.pfs.spec.write_time(total_bytes, concurrent=count)

    # -- read path ----------------------------------------------------------------

    def restore(self, rank: int, version: int) -> tuple[dict, float, str]:
        """Restore ``rank``'s state; returns ``(state, seconds, level)``.

        Fallback chain: node SSD (L1) → RS decode across the L2 cluster
        (L3) → PFS (L4). ``level`` names which one served the request.
        """
        meta = self._state_meta.get((rank, version))
        if meta is None:
            raise RestoreError(f"rank {rank} never checkpointed version {version}")
        key = self._ckpt_key(rank, version)
        ssd = self.machine.ssd_of_rank(rank)
        if key in ssd:
            blob, seconds = ssd.read(key)
            self.stats.restores_local += 1
            return bytes_to_state(blob, meta["nbytes"]), seconds, "local"

        l2 = self.clustering.l2_of(rank)
        if (l2, version) in self._encoded_versions:
            try:
                state, seconds = self._restore_decoded(rank, l2, version, meta)
                self.stats.restores_decoded += 1
                return state, seconds, "decoded"
            except DecodeError:
                pass
        if key in self.machine.pfs:
            blob, seconds = self.machine.pfs.read(key)
            self.stats.restores_pfs += 1
            return bytes_to_state(blob, meta["nbytes"]), seconds, "pfs"
        raise RestoreError(
            f"rank {rank} v{version}: local copy lost, decode impossible, "
            f"no PFS copy — catastrophic"
        )

    def _restore_decoded(
        self, rank: int, l2: int, version: int, meta: dict
    ) -> tuple[dict, float]:
        members = [int(r) for r in self.clustering.l2_members(l2)]
        code = self.code_factory(len(members))
        shard_len = self._shard_len[(l2, version)]
        shards: dict[int, np.ndarray] = {}
        read_time = 0.0
        for i, member in enumerate(members):
            ssd = self.machine.ssd_of_rank(member)
            key = self._ckpt_key(member, version)
            if key in ssd:
                blob, t = ssd.read(key)
                shards[i] = pad_to(blob, shard_len)
                read_time += t
        nodes = [self.machine.node_of_rank(r) for r in members]
        for j in range(code.m):
            node = nodes[j % len(nodes)]
            key = self._parity_key(l2, version, j)
            if key in self.machine.node_ssds[node]:
                blob, t = self.machine.node_ssds[node].read(key)
                shards[len(members) + j] = blob
                read_time += t
        my_index = members.index(rank)
        shard = code.reconstruct_shard(shards, my_index)
        decode_gb = len(members) * shard_len / GiB
        seconds = read_time + self.time_model.seconds(decode_gb, len(members))
        nbytes = self._state_meta[(rank, version)]["nbytes"]
        return bytes_to_state(shard, nbytes), seconds

    # -- queries ---------------------------------------------------------------

    def sidecar_meta(self, rank: int, version: int) -> dict:
        """Protocol sidecar stored with :meth:`save_local`."""
        entry = self._state_meta.get((rank, version))
        if entry is None:
            raise RestoreError(f"rank {rank} has no checkpoint v{version}")
        return entry["meta"]

    def versions_of(self, rank: int) -> list[int]:
        """Versions ever saved by ``rank`` (ascending), minus expired ones."""
        return list(self._versions_of_rank.get(rank, []))

    def latest_common_version(self, ranks) -> int:
        """Largest version every rank in ``ranks`` has saved."""
        common: set[int] | None = None
        for rank in ranks:
            versions = set(self._versions_of_rank.get(int(rank), []))
            common = versions if common is None else common & versions
        if not common:
            raise RestoreError("no common checkpoint version across the ranks")
        return max(common)

    # -- housekeeping -----------------------------------------------------------

    def _expire_old(self, rank: int) -> None:
        versions = self._versions_of_rank.get(rank, [])
        while len(versions) > self.keep_versions:
            old = versions.pop(0)
            ssd = self.machine.ssd_of_rank(rank)
            ssd.delete(self._ckpt_key(rank, old))
            self._state_meta.pop((rank, old), None)
            # Parity shards of fully-expired cluster versions.
            l2 = self.clustering.l2_of(rank)
            members = self.clustering.l2_members(l2)
            if all(old not in self._versions_of_rank.get(int(m), []) for m in members):
                if (l2, old) in self._encoded_versions:
                    code = self.code_factory(len(members))
                    nodes = [self.machine.node_of_rank(int(r)) for r in members]
                    for j in range(code.m):
                        node = nodes[j % len(nodes)]
                        self.machine.node_ssds[node].delete(
                            self._parity_key(l2, old, j)
                        )
                    self._encoded_versions.discard((l2, old))
                    self._shard_len.pop((l2, old), None)
