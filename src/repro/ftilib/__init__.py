"""FTI-style multilevel checkpointing: local SSD, Reed–Solomon encoding
across L2 clusters, PFS flush, and the dedicated encoder-process trace
programs of §V."""

from repro.ftilib.checkpointer import (
    CheckpointStats,
    MultilevelCheckpointer,
    RestoreError,
    fti_rs_code,
    half_parity_code,
)
from repro.ftilib.serialization import bytes_to_state, pad_to, state_to_bytes
from repro.ftilib.tracesim import FTITraceConfig, make_fti_world_programs

__all__ = [
    "CheckpointStats",
    "FTITraceConfig",
    "MultilevelCheckpointer",
    "RestoreError",
    "bytes_to_state",
    "fti_rs_code",
    "half_parity_code",
    "make_fti_world_programs",
    "pad_to",
    "state_to_bytes",
]
