"""The §V execution shape: application + FTI encoder processes, traced.

The paper's Fig. 5a/5b trace comes from launching 17 MPI processes per node
— 16 application ranks plus one dedicated FTI encoder (world ranks 0, 17,
34, 51 …). This module builds the world-level rank programs that reproduce
every structure the paper points out in the zoomed matrix:

* the stencil's **double diagonal** (app ghost exchange, never logged
  inside an L1 cluster);
* diagonals **interrupted** at the encoder ranks;
* **light horizontal lines** at encoder rows — the small "checkpoint ready"
  notifications each app rank sends its node encoder;
* **isolated points** where encoder rows and columns cross — the
  Reed–Solomon ring exchange between the encoders of an L1 cluster's nodes;
* **power-of-two diagonals** — ``MPI_Allgather`` during FTI initialization,
  run over the full 1088-rank world communicator.

The steady-state point-to-point loops are *wave-native* when the
application's ``use_waves`` flag is set (the default): each repeated
per-iteration pattern — the app's checkpoint-ready notification, the
encoder's per-round readiness gather, each ring hop of the Reed–Solomon
exchange — is compiled once into persistent requests and re-posted with
``start_all`` / drained with ``waitall``, so a matching-point window costs
two engine yields instead of one interaction per message. Posting order,
matching stamps, traces and clocks are identical to the per-message
reference (``use_waves=False`` on the simulation config pins it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.tsunami import TsunamiSimulation
from repro.machine.placement import FTIPlacement
from repro.simmpi.request import ANY_SOURCE
from repro.util.validation import check_positive

#: Tag space for FTI-internal control traffic.
_READY_TAG = 9_000_000
_RING_TAG = 9_000_001


@dataclass(frozen=True)
class FTITraceConfig:
    """Parameters of one traced §V-style execution."""

    checkpoint_every: int = 25
    ready_message_bytes: int = 64
    # Per-process checkpoint volume visible in the trace. Calibrated so the
    # encoder-ring exchanges render as *light* isolated points next to the
    # dark stencil diagonals, as in Fig. 5b (ring links stay below the
    # per-pair east-west halo volume of a ~50-iteration window).
    checkpoint_bytes_per_process: int = 64 << 10
    encoder_group_nodes: int = 4  # encoders of one L1 cluster form a ring

    def __post_init__(self) -> None:
        check_positive("checkpoint_every", self.checkpoint_every)
        check_positive("ready_message_bytes", self.ready_message_bytes)
        check_positive(
            "checkpoint_bytes_per_process", self.checkpoint_bytes_per_process
        )
        check_positive("encoder_group_nodes", self.encoder_group_nodes)


def make_fti_world_programs(
    sim: TsunamiSimulation,
    placement: FTIPlacement,
    *,
    iterations: int,
    trace_cfg: FTITraceConfig | None = None,
):
    """Per-world-rank programs for the full app+encoders execution.

    Returns a list of ``placement.nranks`` rank programs for
    :meth:`repro.simmpi.Engine.run`. Application ranks run the tsunami
    steps on an app-only sub-communicator; encoder ranks serve their node's
    checkpoint traffic.
    """
    cfg = trace_cfg or FTITraceConfig()
    if sim.grid.nranks != placement.nnodes * placement.app_per_node:
        raise ValueError(
            f"app uses {sim.grid.nranks} ranks, placement provides "
            f"{placement.nnodes * placement.app_per_node} app slots"
        )
    n_ckpts = len(
        [i for i in range(iterations) if i and i % cfg.checkpoint_every == 0]
    )
    # Wave-native steady-state loops follow the application's flag so app
    # halo waves and FTI control waves pin on/off together.
    use_waves = bool(getattr(sim.cfg, "use_waves", False))

    def app_program(ctx):
        comm = ctx.comm
        # FTI_Init: allgather over the *world* communicator (Fig. 5b's
        # power-of-two diagonals), then split off the application comm.
        yield from comm.allgather(ctx.rank)
        app_comm = yield from comm.split(color=0, key=ctx.rank)
        encoder_world = (
            placement.node_of_rank(ctx.rank) * placement.procs_per_node
        )
        if use_waves:
            # One persistent recipe for every checkpoint-ready message
            # this rank will ever send (restarted once per checkpoint).
            ready_start = comm.start_all_op(
                (
                    comm.send_init(
                        None,
                        dest=encoder_world,
                        tag=_READY_TAG,
                        nbytes=cfg.ready_message_bytes,
                        kind="fti-ready",
                    ),
                )
            )
        state = {"iteration": 0} if sim.cfg.synthetic else sim.make_rank_state(
            app_comm.rank
        )
        if (
            use_waves
            and sim.cfg.synthetic
            and getattr(sim.cfg, "use_kernels", False)
            and getattr(app_comm, "supports_waves", False)
        ):
            # Kernelized steady state: between checkpoint-ready sends the
            # app loop is the tsunami steady loop, so hand each segment to
            # its KernelLoop emitter (chunked further at allreduce
            # boundaries). Same messages, traces and clocks either way.
            while state["iteration"] < iterations:
                iteration = state["iteration"]
                if iteration and iteration % cfg.checkpoint_every == 0:
                    yield ready_start
                boundary = iteration + cfg.checkpoint_every - (
                    iteration % cfg.checkpoint_every
                )
                yield from sim._kernel_program(
                    app_comm, state, min(boundary, iterations)
                )
            return state
        while state["iteration"] < iterations:
            iteration = state["iteration"]
            if iteration and iteration % cfg.checkpoint_every == 0:
                # Notify the node's encoder process that the local
                # checkpoint is staged (small control message).
                if use_waves:
                    yield ready_start
                else:
                    yield from comm.isend(
                        None,
                        dest=encoder_world,
                        tag=_READY_TAG,
                        nbytes=cfg.ready_message_bytes,
                        kind="fti-ready",
                    )
            yield from sim.step(app_comm, state)
        return state

    def encoder_program(ctx):
        comm = ctx.comm
        yield from comm.allgather(ctx.rank)
        yield from comm.split(color=1, key=ctx.rank)  # not an app member
        node = placement.node_of_rank(ctx.rank)
        group = node // cfg.encoder_group_nodes
        group_nodes = [
            n
            for n in range(
                group * cfg.encoder_group_nodes,
                min((group + 1) * cfg.encoder_group_nodes, placement.nnodes),
            )
        ]
        ring_index = group_nodes.index(node)
        ring_size = len(group_nodes)
        enc_world = [n * placement.procs_per_node for n in group_nodes]
        # Per checkpoint round: collect readiness from the node's app ranks,
        # then run the RS reduce-scatter ring across the group's encoders.
        chunk = cfg.checkpoint_bytes_per_process * placement.app_per_node
        chunk //= max(1, ring_size)
        right = enc_world[(ring_index + 1) % ring_size]
        left = enc_world[(ring_index - 1) % ring_size]
        if use_waves and n_ckpts:
            # The readiness gather of one round, compiled once: the same
            # wildcard receives restart every checkpoint (posting order
            # and stamps identical to the sequential irecv loop below).
            ready_recvs = tuple(
                comm.recv_init(source=ANY_SOURCE, tag=_READY_TAG)
                for _ in range(placement.app_per_node)
            )
            ready_start = comm.start_all_op(ready_recvs)
            ready_drain = comm.waitall_op(ready_recvs)
            if ring_size > 1:
                # One ring hop (send right, receive left), restarted
                # ring_size - 1 times per round — the hop stays a
                # sequential pipeline stage exactly like the per-message
                # loop, so the modeled ring timing is unchanged.
                ring_recv = comm.recv_init(source=left, tag=_RING_TAG)
                ring_start = comm.start_all_op(
                    (
                        comm.send_init(
                            None,
                            dest=right,
                            tag=_RING_TAG,
                            nbytes=chunk,
                            kind="fti-encode",
                        ),
                        ring_recv,
                    )
                )
                ring_drain = comm.waitall_op((ring_recv,))
        for _ in range(n_ckpts):
            # Post the whole node's readiness receives up front, then drain:
            # the ready notifications arrive in whatever order the app ranks
            # reach the checkpoint, and batching the posts keeps the engine
            # on its O(1) per-channel matching instead of re-entering the
            # wildcard scan once per message.
            if use_waves:
                yield ready_start
                yield ready_drain
            else:
                ready = []
                for _ in range(placement.app_per_node):
                    req = yield from comm.irecv(
                        source=ANY_SOURCE, tag=_READY_TAG
                    )
                    ready.append(req)
                yield from comm.waitall(ready)
            if ring_size > 1:
                for _ in range(ring_size - 1):
                    if use_waves:
                        yield ring_start
                        yield ring_drain
                    else:
                        yield from comm.isend(
                            None,
                            dest=right,
                            tag=_RING_TAG,
                            nbytes=chunk,
                            kind="fti-encode",
                        )
                        yield from comm.recv(source=left, tag=_RING_TAG)
        return {"node": node, "checkpoints": n_ckpts}

    programs = []
    for world_rank in range(placement.nranks):
        if placement.is_encoder(world_rank):
            programs.append(encoder_program)
        else:
            programs.append(app_program)
    return programs
