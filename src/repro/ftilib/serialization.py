"""Checkpoint (de)serialization: rank states ↔ byte shards.

Checkpoints are pickled rank states (dicts of NumPy arrays + scalars); the
erasure layer works on equal-length ``uint8`` shards, so serialized states
are padded to a cluster-wide common length with the true length recorded.
Round-trip fidelity is bit-exact — the recovery tests depend on it.
"""

from __future__ import annotations

import pickle

import numpy as np


def state_to_bytes(state: dict) -> np.ndarray:
    """Serialize a rank state into a ``uint8`` array."""
    raw = pickle.dumps(state, protocol=4)
    return np.frombuffer(raw, dtype=np.uint8).copy()


def bytes_to_state(buf: np.ndarray, true_length: int | None = None) -> dict:
    """Inverse of :func:`state_to_bytes`; ``true_length`` strips padding."""
    arr = np.asarray(buf, dtype=np.uint8)
    if true_length is not None:
        if true_length > arr.size:
            raise ValueError(
                f"true_length {true_length} exceeds buffer size {arr.size}"
            )
        arr = arr[:true_length]
    return pickle.loads(arr.tobytes())


def pad_to(buf: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad a shard up to ``length`` bytes (no-op when already there)."""
    arr = np.asarray(buf, dtype=np.uint8)
    if arr.size > length:
        raise ValueError(f"buffer of {arr.size} B cannot be padded to {length} B")
    if arr.size == length:
        return arr
    out = np.zeros(length, dtype=np.uint8)
    out[: arr.size] = arr
    return out
