"""Command-line interface: regenerate any exhibit of the paper from a shell.

Examples::

    python -m repro table2                 # the four-strategy comparison
    python -m repro fig3 --sizes 4 8 32    # cluster-size study
    python -m repro fig4a                  # reliability distribution study
    python -m repro fig5 --nodes 16 --app-per-node 4   # traced heatmaps
    python -m repro radar                  # Fig. 5c normalized comparison
    python -m repro table1                 # platform parameters
"""

from __future__ import annotations

import argparse
import sys


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--iterations",
        type=int,
        default=100,
        help="trace length in application iterations (default 100)",
    )
    parser.add_argument(
        "--traced",
        action="store_true",
        help="run the discrete-event engine for the matrix instead of the "
        "closed-form synthesis (slower, byte-identical)",
    )


def _scenario(args):
    from repro.core import paper_scenario

    return paper_scenario(iterations=args.iterations, traced=args.traced)


def cmd_table1(args) -> int:
    from repro.core import experiment_table1

    print(experiment_table1())
    return 0


def cmd_table2(args) -> int:
    from repro.core import experiment_table2

    report = experiment_table2(_scenario(args))
    print(report.to_table())
    print(f"\nstrategies meeting the baseline: {report.satisfying()}")
    return 0


def cmd_fig3(args) -> int:
    from repro.core import experiment_fig3

    study = experiment_fig3(_scenario(args), sizes=tuple(args.sizes))
    print(study.render())
    print(f"\nFig. 3a sweet spot: {study.sweet_spot_3a()} processes")
    return 0


def cmd_fig4a(args) -> int:
    from repro.core import experiment_fig4a

    print(experiment_fig4a(sizes=tuple(args.sizes)).render())
    return 0


def cmd_fig4bc(args) -> int:
    from repro.core import experiment_fig4bc

    print(experiment_fig4bc(_scenario(args), sizes=tuple(args.sizes)).render())
    return 0


def cmd_fig5(args) -> int:
    from repro.core import experiment_fig5ab

    study = experiment_fig5ab(
        nodes=args.nodes,
        app_per_node=args.app_per_node,
        iterations=args.iterations,
        checkpoint_every=args.checkpoint_every,
    )
    print(study.render_full(max_size=args.max_size))
    print()
    print(study.render_zoom())
    return 0


def cmd_radar(args) -> int:
    from repro.core import experiment_fig5c

    print(experiment_fig5c(_scenario(args)))
    return 0


def cmd_montecarlo(args) -> int:
    from repro.core import experiment_montecarlo

    print(
        experiment_montecarlo(
            _scenario(args), n_samples=args.samples, rng=args.seed
        )
    )
    return 0


def cmd_campaign(args) -> int:
    from repro.clustering import (
        distributed_clustering,
        hierarchical_clustering,
        naive_clustering,
        size_guided_clustering,
    )
    from repro.core.query import query_for, run_query
    from repro.models import CampaignConfig
    from repro.util import AsciiTable

    scenario = _scenario(args)
    campaign = CampaignConfig(
        horizon_s=args.days * 24 * 3600.0,
        checkpoint_interval_s=args.checkpoint_minutes * 60.0,
        node_mtbf_s=args.node_mtbf_years * 365 * 24 * 3600.0,
    )
    strategies = [
        naive_clustering(scenario.placement.nranks, 32),
        size_guided_clustering(scenario.placement.nranks, 8),
        distributed_clustering(scenario.placement, 16),
        hierarchical_clustering(
            scenario.node_comm_graph(),
            scenario.placement,
            cost=scenario.partition_cost,
        ),
    ]
    table = AsciiTable(
        ["clustering", "failures", "catastrophic", "waste %", "efficiency %"],
        title=f"{args.days}-day failure campaign",
    )
    for i, clustering in enumerate(strategies):
        query = query_for(
            scenario,
            clustering,
            metric="campaign",
            campaign=campaign,
            seed=args.seed + i,
        )
        result = run_query(query)
        table.add_row(
            [
                clustering.name,
                int(result.value("n_failures")),
                int(result.value("n_catastrophic")),
                f"{100 * result.value('waste_fraction'):.2f}",
                f"{100 * result.value('efficiency'):.2f}",
            ]
        )
    print(table.render())
    return 0


def cmd_serve(args) -> int:
    from repro.service import ReliabilityService, run_self_test

    if args.self_test:
        return run_self_test(workers=args.workers)

    import asyncio

    async def _serve() -> None:
        service = ReliabilityService(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_bytes=args.cache_mb << 20,
        )
        await service.start()
        print(
            f"reliability service on http://{service.host}:{service.port} "
            f"({args.workers} worker(s), {args.cache_mb} MiB cache/shard)"
        )
        print("POST ReliabilityQuery JSON to /query (Ctrl-C to stop)")
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_sim(args) -> int:
    import time

    import numpy as np

    from repro.apps.workload import fig5_workload
    from repro.simmpi import (
        Engine,
        ShardedEngine,
        SparseTraceRecorder,
        TraceRecorder,
    )

    if args.workload == "fig5":
        workload = fig5_workload(
            nodes=args.nodes,
            app_per_node=args.app_per_node,
            iterations=args.iterations,
            checkpoint_every=args.checkpoint_every,
        )
    elif args.workload == "heat":
        from repro.apps import HeatConfig
        from repro.apps.workload import HeatWorkload

        workload = HeatWorkload(
            HeatConfig(
                px=args.px,
                py=args.py,
                nx=8 * args.px,
                ny=8 * args.py,
                iterations=args.iterations,
            )
        )
    elif args.workload == "tsunami":
        from repro.apps import TsunamiConfig
        from repro.apps.workload import TsunamiWorkload

        workload = TsunamiWorkload(
            TsunamiConfig(
                px=args.px,
                py=args.py,
                nx=8 * args.px,
                ny=8 * args.py,
                iterations=args.iterations,
                synthetic=True,
                allreduce_every=4,
            )
        )
    else:  # spectral
        from repro.apps import SpectralConfig
        from repro.apps.workload import SpectralWorkload

        workload = SpectralWorkload(
            SpectralConfig(
                nranks=args.nranks,
                n=2 * args.nranks,
                iterations=args.iterations,
                synthetic=True,
            )
        )

    nranks = workload.nranks
    recorder_cls = SparseTraceRecorder if args.sparse else TraceRecorder
    tracer = None if args.no_trace else recorder_cls(nranks, by_kind=True)
    engine = ShardedEngine(
        args.shards, workers=args.workers, tracer=tracer
    )
    t0 = time.perf_counter()
    engine.run(workload)
    elapsed = time.perf_counter() - t0
    clocks = engine.rank_times()

    rank_iters = nranks * args.iterations
    print(f"workload: {args.workload} ({nranks} ranks)")
    hosts = min(args.workers, args.shards)
    print(
        f"shards: {args.shards} on "
        f"{f'{hosts} worker process(es)' if hosts else 'the coordinator'}, "
        f"{engine.windows_run} sync window(s), "
        f"{engine.fast_collectives_run} fast collective(s)"
    )
    print(
        f"elapsed: {elapsed:.2f} s wall "
        f"({rank_iters / elapsed:,.0f} rank-iterations/s), "
        f"virtual time {max(clocks):.6f} s"
    )
    if tracer is not None:
        print(
            f"traced: {int(tracer.total_messages):,} messages, "
            f"{int(tracer.total_bytes):,} bytes"
        )

    if args.verify:
        ref_tracer = None if args.no_trace else recorder_cls(
            nranks, by_kind=True
        )
        ref_engine = Engine(nranks, tracer=ref_tracer)
        ref_engine.run(workload.build_programs())
        ok = clocks == ref_engine.rank_times()
        if tracer is not None:
            dense, ref_dense = tracer, ref_tracer
            if args.sparse:
                dense, ref_dense = tracer.to_dense(), ref_tracer.to_dense()
            ok = ok and bool(
                np.array_equal(dense.bytes_matrix, ref_dense.bytes_matrix)
                and np.array_equal(dense.count_matrix, ref_dense.count_matrix)
            )
        if not ok:
            print("VERIFY FAILED: sharded run diverged from single-process")
            return 1
        print("verified: traces byte-identical, clocks bit-identical")
    return 0


def cmd_fuzz(args) -> int:
    import json
    from pathlib import Path

    from repro.fuzz import (
        ACTOR_NAMES,
        FuzzCampaignConfig,
        execute_scenario,
        load_repro,
        run_campaign,
        save_repro,
    )

    if args.replay is not None:
        data = json.loads(Path(args.replay).read_text())
        if data.get("kind") == "interleaving":
            from repro.fuzz import replay_interleaving

            observed, expected = replay_interleaving(data)
            print(
                f"replay {args.replay}: interleaving seed "
                f"{data.get('seed')} ({data['spec']['workload']})"
            )
            print(f"classification: {observed or 'equivalent'}")
            if observed != expected:
                print(f"MISMATCH: repro file recorded {expected!r}")
                return 1
            return 0
        scenario, expected = load_repro(args.replay)
        result = execute_scenario(scenario)
        print(f"replay {args.replay}: {scenario.describe()}")
        print(f"classification: {result.classification}")
        if result.detail:
            print(f"detail: {result.detail}")
        if expected is not None and result.classification != expected:
            print(f"MISMATCH: repro file recorded {expected!r}")
            return 1
        return 0

    if args.schedules is not None:
        from repro.fuzz import InterleavingSpec, sweep
        from repro.fuzz.interleave import finding_to_dict

        spec = InterleavingSpec(workload=args.workload)
        report = sweep(
            spec,
            n_schedules=args.schedules,
            seed_start=args.seed_start,
        )
        print(report.summary())
        if args.out_dir is not None:
            out = Path(args.out_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / "BENCH_interleaving.json").write_text(
                json.dumps(report.to_record(), indent=2) + "\n"
            )
            for finding in report.findings:
                path = out / (
                    f"schedule_repro_{finding.seed}_{finding.kind}.json"
                )
                path.write_text(
                    json.dumps(finding_to_dict(spec, finding), indent=2)
                    + "\n"
                )
            print(f"artifacts written to {out}")
        # Report-only, like the campaign: divergences are findings.
        return 0

    config = FuzzCampaignConfig(
        budget=args.budget,
        seed=args.seed,
        actors=tuple(args.actors) if args.actors else ACTOR_NAMES,
        workers=args.workers,
        shrink_limit=args.shrink,
        max_seconds=args.max_seconds,
    )
    report = run_campaign(config)
    print(report.summary())
    if args.out_dir is not None:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "BENCH_fuzzer.json").write_text(
            json.dumps(report.to_record(), indent=2) + "\n"
        )
        for i, outcome in enumerate(report.shrunken):
            save_repro(
                out / f"repro_{i}_{outcome.classification}.json",
                outcome.scenario,
                outcome.classification,
            )
        print(f"artifacts written to {out}")
    # Report-only: disagreements are findings to study, not failures.
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of 'Hierarchical "
        "Clustering Strategies for Fault Tolerance in Large Scale HPC "
        "Systems' (CLUSTER 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table I — platform parameters")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="Table II — clustering comparison")
    _add_scenario_args(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("fig3", help="Fig. 3 — cluster-size study")
    _add_scenario_args(p)
    p.add_argument(
        "--sizes", type=int, nargs="+",
        default=[2, 4, 8, 16, 32, 64, 128, 256],
    )
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("fig4a", help="Fig. 4a — reliability (128x8)")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 8, 16])
    p.set_defaults(func=cmd_fig4a)

    p = sub.add_parser("fig4bc", help="Fig. 4b/4c — logging & restart (64x16)")
    _add_scenario_args(p)
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 8, 16, 32])
    p.set_defaults(func=cmd_fig4bc)

    p = sub.add_parser("fig5", help="Fig. 5a/5b — traced heat maps")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--app-per-node", type=int, default=4)
    p.add_argument("--iterations", type=int, default=24)
    p.add_argument("--checkpoint-every", type=int, default=8)
    p.add_argument("--max-size", type=int, default=64)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("radar", help="Fig. 5c — normalized comparison")
    _add_scenario_args(p)
    p.set_defaults(func=cmd_radar)

    p = sub.add_parser(
        "montecarlo",
        help="Monte-Carlo cross-validation of Table II (batched sampling)",
    )
    _add_scenario_args(p)
    p.add_argument(
        "--samples", type=int, default=2000,
        help="failure events sampled per strategy (default 2000)",
    )
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(func=cmd_montecarlo)

    p = sub.add_parser(
        "campaign", help="long-run failure campaign (4 dims composed)"
    )
    _add_scenario_args(p)
    p.add_argument("--days", type=float, default=30.0)
    p.add_argument("--checkpoint-minutes", type=float, default=30.0)
    p.add_argument("--node-mtbf-years", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="reliability-planning HTTP service (ReliabilityQuery JSON)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks a free one; default 8642)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="worker processes holding table-cache shards (0 = answer "
        "in-process; results are invariant to this knob)",
    )
    p.add_argument(
        "--cache-mb", type=int, default=256,
        help="table-cache byte budget per shard in MiB (default 256)",
    )
    p.add_argument(
        "--self-test", action="store_true",
        help="start a private server, run the equivalence + load smoke "
        "against it, shut down, and exit (the CI service check)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "sim",
        help="run a workload on the sharded multi-process trace engine",
    )
    p.add_argument(
        "--workload", choices=["fig5", "heat", "tsunami", "spectral"],
        default="fig5",
        help="workload to simulate (default fig5: the §V control traffic)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="subworlds to partition the rank set into (default 1)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="worker processes hosting the shards (0 = in-process; "
        "results are invariant to this knob)",
    )
    p.add_argument("--iterations", type=int, default=24)
    p.add_argument("--nodes", type=int, default=16, help="fig5: node count")
    p.add_argument(
        "--app-per-node", type=int, default=4,
        help="fig5: application ranks per node",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="fig5: iterations between checkpoints",
    )
    p.add_argument("--px", type=int, default=4, help="heat/tsunami: grid px")
    p.add_argument("--py", type=int, default=4, help="heat/tsunami: grid py")
    p.add_argument(
        "--nranks", type=int, default=8, help="spectral: world size"
    )
    p.add_argument(
        "--sparse", action="store_true",
        help="record the trace sparsely (COO) — for 10k-rank worlds where "
        "a dense nranks² matrix would dominate memory",
    )
    p.add_argument(
        "--no-trace", action="store_true",
        help="skip trace recording entirely (timing-only run)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="also run the single-process engine and assert byte-identical "
        "traces and bit-identical clocks",
    )
    p.set_defaults(func=cmd_sim)

    p = sub.add_parser(
        "fuzz",
        help="adversarial scenario fuzzing against the reliability model",
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--budget", type=int, default=200,
        help="scenarios to generate and execute (default 200)",
    )
    p.add_argument(
        "--actors", nargs="+", default=None,
        help="restrict generation to these adversary actors",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="pool workers for execution (0 = in-process; the scenario "
        "stream is identical either way)",
    )
    p.add_argument(
        "--shrink", type=int, default=4,
        help="max disagreeing scenarios to shrink to minimal repros",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None,
        help="time-box the campaign (checked at round boundaries)",
    )
    p.add_argument(
        "--out-dir", default=None,
        help="write BENCH_fuzzer.json and shrunken repro files here",
    )
    p.add_argument(
        "--replay", default=None, metavar="REPRO_FILE",
        help="re-execute a saved repro file (scenario or interleaving) "
        "and check its classification",
    )
    p.add_argument(
        "--schedules", type=int, default=None, metavar="N",
        help="instead of a campaign, sweep N seeded schedule "
        "interleavings of a fixed workload and report divergences",
    )
    p.add_argument(
        "--workload", choices=["fti", "race-demo"], default="fti",
        help="workload for --schedules (default fti: the fig5 control "
        "traffic)",
    )
    p.add_argument(
        "--seed-start", type=int, default=0,
        help="first schedule seed of the --schedules sweep (the sweep "
        "covers the contiguous range [seed-start, seed-start+N))",
    )
    p.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
