"""Erasure codes for diskless checkpointing: GF(2^8), Reed–Solomon, XOR."""

from repro.erasure.gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    PRIMITIVE_POLY,
    cauchy_matrix,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    gf_mul_scalar_vec,
    gf_pow,
)
from repro.erasure.reed_solomon import DecodeError, ReedSolomonCode
from repro.erasure.xor_code import XorCode, XorDecodeError

__all__ = [
    "DecodeError",
    "EXP_TABLE",
    "LOG_TABLE",
    "PRIMITIVE_POLY",
    "ReedSolomonCode",
    "XorCode",
    "XorDecodeError",
    "cauchy_matrix",
    "gf_div",
    "gf_inv",
    "gf_mat_inv",
    "gf_matmul",
    "gf_mul",
    "gf_mul_scalar_vec",
    "gf_pow",
]
