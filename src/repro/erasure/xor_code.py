"""Single-parity XOR erasure code — the cheap alternative to Reed–Solomon.

§II-B1 lists "bit-wise XOR or Reed-Solomon" as the two encoding options
with different complexity/reliability trade-offs. XOR parity costs one pass
over the data and tolerates exactly one lost shard per cluster; it is the
natural L2 level between plain local checkpoints and full RS, and the
XOR-vs-RS ablation benchmark compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class XorDecodeError(Exception):
    """Raised when XOR reconstruction is impossible."""


@dataclass(frozen=True)
class XorCode:
    """A ``(k + 1, k)`` single-parity code: parity = XOR of all data shards."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"need k >= 1, got {self.k}")

    @property
    def n(self) -> int:
        """Total shard count ``k + 1``."""
        return self.k + 1

    @property
    def m(self) -> int:
        """Parity shard count (always 1)."""
        return 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Parity shard (shape ``(L,)``) of ``(k, L)`` data shards."""
        data = self._check_data(data)
        out = np.zeros(data.shape[1], dtype=np.uint8)
        for row in data:
            out ^= row
        return out

    def decode(self, shards: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the full data given at most one missing shard.

        ``shards`` maps shard index (``k`` = parity) to bytes; all data
        shards present → returned directly; one missing → rebuilt from
        parity; more missing → :class:`XorDecodeError`.
        """
        present_data = [i for i in range(self.k) if i in shards]
        missing = [i for i in range(self.k) if i not in shards]
        if not missing:
            return np.stack(
                [np.asarray(shards[i], dtype=np.uint8) for i in range(self.k)]
            )
        if len(missing) > 1:
            raise XorDecodeError(
                f"XOR parity can rebuild 1 shard, {len(missing)} are missing"
            )
        if self.k not in shards:
            raise XorDecodeError("missing data shard and no parity available")
        lengths = {np.asarray(shards[i]).shape[-1] for i in shards}
        if len(lengths) != 1:
            raise XorDecodeError(f"shards have inconsistent lengths: {lengths}")
        rebuilt = np.asarray(shards[self.k], dtype=np.uint8).copy()
        for i in present_data:
            rebuilt ^= np.asarray(shards[i], dtype=np.uint8)
        out = np.empty((self.k, rebuilt.size), dtype=np.uint8)
        for i in range(self.k):
            out[i] = rebuilt if i == missing[0] else np.asarray(shards[i], dtype=np.uint8)
        return out

    def encoding_byte_ops(self, shard_bytes: int) -> int:
        """XOR byte operations per encode: one pass over all data."""
        return self.k * shard_bytes

    def _check_data(self, data: np.ndarray) -> np.ndarray:
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data shards, got {data.shape[0]}")
        return data
