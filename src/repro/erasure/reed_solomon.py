"""Systematic Reed–Solomon erasure code over GF(2^8).

FTI's L3 checkpoint level encodes the checkpoints of an encoding cluster
with Reed–Solomon so the cluster survives up to ``m`` member losses
(§II-B1: "several encoding techniques, such as bit-wise XOR or
Reed-Solomon, exist and provide different encoding complexities and
different reliability levels").

The code is *systematic*: the ``k`` data shards are stored as-is and ``m``
parity shards are appended, generated with a Cauchy matrix — every square
submatrix of which is invertible, so **any** ``k`` surviving shards
reconstruct the data regardless of which ``m`` were lost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.erasure.gf256 import cauchy_matrix, gf_mat_inv, gf_matmul


class DecodeError(Exception):
    """Raised when reconstruction is impossible (too few shards, bad input)."""


@dataclass(frozen=True)
class ReedSolomonCode:
    """An ``(k + m, k)`` systematic Reed–Solomon erasure code.

    Parameters
    ----------
    k:
        Number of data shards (checkpoints in the encoding cluster).
    m:
        Number of parity shards; the code tolerates any ``m`` erasures.
    """

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k < 1 or self.m < 0:
            raise ValueError(f"need k >= 1 and m >= 0, got k={self.k}, m={self.m}")
        if self.k + self.m > 256:
            raise ValueError(
                f"k + m = {self.k + self.m} exceeds the GF(2^8) limit of 256"
            )

    @property
    def n(self) -> int:
        """Total shard count ``k + m``."""
        return self.k + self.m

    def parity_matrix(self) -> np.ndarray:
        """The ``(m, k)`` Cauchy generator of the parity shards."""
        xs = np.arange(self.k, self.k + self.m, dtype=np.uint8)
        ys = np.arange(self.k, dtype=np.uint8)
        return cauchy_matrix(xs, ys)

    # -- encoding ------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compute the ``(m, L)`` parity shards of ``(k, L)`` data shards."""
        data = self._check_data(data)
        if self.m == 0:
            return np.zeros((0, data.shape[1]), dtype=np.uint8)
        return gf_matmul(self.parity_matrix(), data)

    def encode_shards(self, data: np.ndarray) -> np.ndarray:
        """Full ``(k + m, L)`` shard array: data stacked over parity."""
        data = self._check_data(data)
        return np.concatenate([data, self.encode(data)], axis=0)

    # -- decoding ---------------------------------------------------------------

    def decode(self, shards: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct the ``(k, L)`` data from any ``k`` surviving shards.

        ``shards`` maps shard index (0 … n-1; < k data, ≥ k parity) to its
        bytes. Extra shards beyond ``k`` are allowed — the lowest-index
        ``k`` are used.
        """
        if len(shards) < self.k:
            raise DecodeError(
                f"need at least k={self.k} shards, got {len(shards)}"
            )
        indices = sorted(shards)[: self.k]
        if indices and (indices[0] < 0 or indices[-1] >= self.n):
            raise DecodeError(f"shard indices must be in [0, {self.n})")
        lengths = {shards[i].shape[-1] for i in indices}
        if len(lengths) != 1:
            raise DecodeError(f"shards have inconsistent lengths: {lengths}")

        # Fast path: all data shards survived.
        if indices == list(range(self.k)):
            return np.stack([np.asarray(shards[i], dtype=np.uint8) for i in indices])

        parity = self.parity_matrix()
        rows = np.zeros((self.k, self.k), dtype=np.uint8)
        collected = np.zeros((self.k, next(iter(lengths))), dtype=np.uint8)
        for out_row, idx in enumerate(indices):
            if idx < self.k:
                rows[out_row, idx] = 1
            else:
                rows[out_row] = parity[idx - self.k]
            collected[out_row] = np.asarray(shards[idx], dtype=np.uint8)
        try:
            inverse = gf_mat_inv(rows)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - Cauchy
            raise DecodeError("survivor matrix is singular") from exc
        return gf_matmul(inverse, collected)

    def reconstruct_shard(self, shards: dict[int, np.ndarray], index: int) -> np.ndarray:
        """Rebuild one specific shard (data or parity) from survivors."""
        data = self.decode(shards)
        if index < 0 or index >= self.n:
            raise DecodeError(f"shard index {index} out of range [0, {self.n})")
        if index < self.k:
            return data[index]
        return gf_matmul(self.parity_matrix()[index - self.k : index - self.k + 1], data)[0]

    # -- helpers ---------------------------------------------------------------

    def _check_data(self, data: np.ndarray) -> np.ndarray:
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.shape[0] != self.k:
            raise ValueError(
                f"expected {self.k} data shards, got {data.shape[0]}"
            )
        return data

    def encoding_byte_ops(self, shard_bytes: int) -> int:
        """Number of GF multiply-accumulate byte operations per encode.

        ``m·k`` coefficient applications over ``shard_bytes`` — the quantity
        the analytic encoding-time model (and Fig. 3b's linear-in-k shape)
        is built on.
        """
        return self.m * self.k * shard_bytes
