"""Vectorized GF(2^8) arithmetic — the substrate of Reed–Solomon encoding.

FTI encodes checkpoints with Reed–Solomon over the byte field GF(2^8)
(§II-B1). This module implements the field with the classic log/antilog
tables over the AES-adjacent primitive polynomial ``x^8+x^4+x^3+x^2+1``
(0x11d), fully vectorized with NumPy so encoding throughput is measured in
hundreds of MB/s rather than bytes/s — the guides' "vectorize the hot loop"
rule applied to the innermost kernel of the library.

All public functions accept scalars or ``uint8`` arrays and broadcast like
normal NumPy ufuncs. Addition in GF(2^8) is XOR; use ``^`` directly.
"""

from __future__ import annotations

import numpy as np

#: The primitive polynomial generating the field (0x11d).
PRIMITIVE_POLY: int = 0x11D

# Build exp/log tables. EXP is doubled so EXP[LOG[a] + LOG[b]] never needs a
# modulo — the index stays below 510.
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= PRIMITIVE_POLY
_EXP[255:510] = _EXP[:255]
_LOG[0] = 0  # convention; multiplication masks zeros explicitly

EXP_TABLE = _EXP
LOG_TABLE = _LOG


def _as_u8(a) -> np.ndarray:
    arr = np.asarray(a)
    if arr.dtype != np.uint8:
        in_range = arr.min(initial=0) >= 0 and arr.max(initial=0) <= 255
        if np.issubdtype(arr.dtype, np.integer) and in_range:
            arr = arr.astype(np.uint8)
        else:
            raise ValueError("GF(2^8) elements must be integers in [0, 255]")
    return arr


def gf_mul(a, b) -> np.ndarray:
    """Elementwise product in GF(2^8) (broadcasts like ``np.multiply``)."""
    a = _as_u8(a)
    b = _as_u8(b)
    result = EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]]
    zero = (a == 0) | (b == 0)
    return np.where(zero, np.uint8(0), result)


def gf_inv(a) -> np.ndarray:
    """Elementwise multiplicative inverse; raises on zero."""
    a = _as_u8(a)
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return EXP_TABLE[255 - LOG_TABLE[a]]


def gf_div(a, b) -> np.ndarray:
    """Elementwise ``a / b``; raises when ``b`` has zeros."""
    b = _as_u8(b)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(2^8)")
    a = _as_u8(a)
    result = EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + 255]
    return np.where(a == 0, np.uint8(0), result)


def gf_pow(a, n: int) -> np.ndarray:
    """Elementwise ``a ** n`` (``n`` may be negative for nonzero bases)."""
    a = _as_u8(a)
    if n == 0:
        return np.ones_like(a)
    if np.any(a == 0) and n < 0:
        raise ZeroDivisionError("0 cannot be raised to a negative power")
    exponent = (LOG_TABLE[a] * n) % 255
    result = EXP_TABLE[exponent]
    if n > 0:
        return np.where(a == 0, np.uint8(0), result)
    return result


def gf_mul_scalar_vec(c: int, v: np.ndarray) -> np.ndarray:
    """Scalar × vector product — the encoding hot path, one table gather."""
    v = _as_u8(v)
    if c == 0:
        return np.zeros_like(v)
    lc = LOG_TABLE[c]
    out = EXP_TABLE[lc + LOG_TABLE[v]]
    out[v == 0] = 0
    return out


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8): ``(m,k) @ (k,L) -> (m,L)``.

    Row-accumulation with XOR; each coefficient costs one vectorized gather
    over the data row, so the work is ``O(m·k·L)`` byte ops.
    """
    a = _as_u8(np.atleast_2d(a))
    b = _as_u8(np.atleast_2d(b))
    m, k = a.shape
    k2, ell = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch: ({m},{k}) @ ({k2},{ell})")
    out = np.zeros((m, ell), dtype=np.uint8)
    for i in range(m):
        acc = out[i]
        row = a[i]
        for j in range(k):
            c = int(row[j])
            if c:
                acc ^= gf_mul_scalar_vec(c, b[j])
    return out


def gf_mat_inv(a: np.ndarray) -> np.ndarray:
    """Matrix inverse over GF(2^8) by Gauss–Jordan elimination.

    Raises ``np.linalg.LinAlgError`` on singular input.
    """
    a = _as_u8(np.atleast_2d(a))
    n, n2 = a.shape
    if n != n2:
        raise ValueError(f"matrix must be square, got {a.shape}")
    aug = np.concatenate([a.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot_rows = np.flatnonzero(aug[col:, col]) + col
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(2^8)")
        pivot = pivot_rows[0]
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = int(gf_inv(aug[col, col]))
        aug[col] = gf_mul_scalar_vec(inv_p, aug[col])
        for row in range(n):
            if row != col and aug[row, col]:
                aug[row] ^= gf_mul_scalar_vec(int(aug[row, col]), aug[col])
    return aug[:, n:].copy()


def cauchy_matrix(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Cauchy matrix ``C[i,j] = 1 / (x_i ^ y_j)`` over GF(2^8).

    ``xs`` and ``ys`` must be disjoint element sets; every square submatrix
    of a Cauchy matrix is invertible, which is exactly the property that
    makes any-k-of-n Reed–Solomon recovery work.
    """
    xs = _as_u8(np.asarray(xs))
    ys = _as_u8(np.asarray(ys))
    if np.intersect1d(xs, ys).size:
        raise ValueError("xs and ys must be disjoint for a Cauchy matrix")
    denom = xs[:, None] ^ ys[None, :]
    return gf_inv(denom)
