"""Optimal checkpoint-interval model (Young/Daly) — extension material.

The paper motivates fast checkpointing with the classic waste argument
([21], [10]): at extreme scale, the MTBF shrinks while checkpoint cost
grows, so the optimal interval — and the achievable efficiency — collapse
unless checkpoints get cheap. This module provides that baseline math; the
ablation benchmark uses it to translate the encoding-time dimension into
end-to-end application efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's first-order optimum: ``sqrt(2 · C · MTBF)``."""
    check_positive("checkpoint_cost_s", checkpoint_cost_s)
    check_positive("mtbf_s", mtbf_s)
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Daly's higher-order refinement of the optimal interval."""
    check_positive("checkpoint_cost_s", checkpoint_cost_s)
    check_positive("mtbf_s", mtbf_s)
    c, mtbf = checkpoint_cost_s, mtbf_s
    if c < 2.0 * mtbf:
        root = math.sqrt(2.0 * c * mtbf)
        return root * (1.0 + math.sqrt(c / (2.0 * mtbf)) / 3.0 + (c / (2.0 * mtbf)) / 9.0) - c
    return mtbf


@dataclass(frozen=True)
class WasteModel:
    """First-order execution-waste model under periodic checkpointing.

    ``waste`` = fraction of machine time not spent on useful computation:
    checkpoint overhead + expected rework + restart cost per failure.
    """

    checkpoint_cost_s: float
    restart_cost_s: float
    mtbf_s: float

    def __post_init__(self) -> None:
        check_positive("checkpoint_cost_s", self.checkpoint_cost_s)
        check_positive("restart_cost_s", self.restart_cost_s, strict=False)
        check_positive("mtbf_s", self.mtbf_s)

    def waste(self, interval_s: float) -> float:
        """Waste fraction for a given checkpoint interval (clamped to 1)."""
        check_positive("interval_s", interval_s)
        tau, c = interval_s, self.checkpoint_cost_s
        ckpt_overhead = c / (tau + c)
        # Expected lost work per failure: half a period plus the restart.
        per_failure = (tau + c) / 2.0 + self.restart_cost_s
        rework = per_failure / self.mtbf_s
        return min(1.0, ckpt_overhead + rework)

    def optimal_interval(self) -> float:
        """Young-optimal interval for this configuration."""
        return young_interval(self.checkpoint_cost_s, self.mtbf_s)

    def optimal_waste(self) -> float:
        """Waste at the Young-optimal interval."""
        return self.waste(self.optimal_interval())
