"""PFS checkpoint-scheduling model — why HydEE needs FTI (§II-C).

The paper argues that a hybrid protocol relying only on the PFS must
stagger cluster checkpoints to dodge the I/O bottleneck, which "prevents
from taking advantage of application-level checkpointing" and injects
noise into tightly-coupled applications; combining with FTI lets all
clusters checkpoint "at the same time" on node-local SSDs instead.

This module quantifies that argument with three analytic strategies:

* ``simultaneous_pfs`` — all clusters hit the shared PFS together: each
  write sees ``1/n_clusters`` of the bandwidth; everyone finishes at the
  same (late) time;
* ``staggered_pfs`` — clusters take turns at full bandwidth: individual
  writes are fast, but the *last* cluster finishes just as late **and**
  every earlier cluster has perturbed a tightly-coupled application for
  the duration (the noise term);
* ``local_ssd`` — the FTI path: every node writes its own SSD in parallel,
  plus the L2 encoding charge.

All three report the checkpoint makespan and the cross-cluster noise
window; the ablation bench shows the SSD path winning by the bandwidth
ratio, which is the quantitative version of §II-C's argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.storage import StorageSpec
from repro.models.encoding_time import EncodingTimeModel
from repro.util.units import GiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of one checkpointing strategy."""

    name: str
    makespan_s: float  # time until the last checkpoint is durable
    noise_window_s: float  # total time some (but not all) clusters are busy

    @property
    def is_coordinated(self) -> bool:
        """Whether all clusters checkpoint over the same window (no skew)."""
        return self.noise_window_s == 0.0


@dataclass(frozen=True)
class PfsSchedulingModel:
    """Checkpoint-scheduling cost model for one machine configuration.

    Parameters
    ----------
    n_clusters:
        Number of L1 clusters checkpointing.
    bytes_per_cluster:
        Checkpoint volume each cluster writes.
    pfs:
        Shared parallel-file-system characteristics.
    ssd:
        Node-local storage characteristics (per-node, private).
    nodes_per_cluster:
        Node count per cluster (each node writes its share to its own SSD).
    """

    n_clusters: int
    bytes_per_cluster: int
    pfs: StorageSpec
    ssd: StorageSpec
    nodes_per_cluster: int = 4

    def __post_init__(self) -> None:
        check_positive("n_clusters", self.n_clusters)
        check_positive("bytes_per_cluster", self.bytes_per_cluster)
        check_positive("nodes_per_cluster", self.nodes_per_cluster)

    def simultaneous_pfs(self) -> ScheduleOutcome:
        """Everyone writes the PFS at once; bandwidth divides evenly."""
        per_cluster = self.pfs.write_time(
            self.bytes_per_cluster, concurrent=self.n_clusters
        )
        return ScheduleOutcome("simultaneous-pfs", per_cluster, 0.0)

    def staggered_pfs(self) -> ScheduleOutcome:
        """Clusters take turns at full bandwidth (the scheduling strategy
        §II-C says hybrid-over-PFS protocols are forced into)."""
        single = self.pfs.write_time(self.bytes_per_cluster, concurrent=1)
        makespan = self.n_clusters * single
        # During all but one slot, part of the machine is checkpointing
        # while the rest computes — noise for tightly-coupled apps.
        noise = (self.n_clusters - 1) * single
        return ScheduleOutcome("staggered-pfs", makespan, noise)

    def local_ssd(
        self, *, l2_cluster_size: int = 4, time_model: EncodingTimeModel | None = None
    ) -> ScheduleOutcome:
        """The FTI path: parallel SSD writes + Reed–Solomon encoding."""
        model = time_model or EncodingTimeModel()
        per_node = self.bytes_per_cluster / self.nodes_per_cluster
        write = self.ssd.write_time(int(per_node))
        encode = model.seconds(
            self.bytes_per_cluster / GiB, l2_cluster_size
        ) / self.nodes_per_cluster
        return ScheduleOutcome("local-ssd+rs", write + encode, 0.0)

    def compare(self, **ssd_kwargs) -> list[ScheduleOutcome]:
        """All three strategies, sorted by makespan."""
        outcomes = [
            self.simultaneous_pfs(),
            self.staggered_pfs(),
            self.local_ssd(**ssd_kwargs),
        ]
        return sorted(outcomes, key=lambda o: o.makespan_s)
