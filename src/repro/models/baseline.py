"""The paper's baseline requirements (§III) and the four-dimensional score.

"We start by defining a baseline of requirements that a clustering should
reach in order to be efficiently used for large scale HPC systems":

1. log no more than **20 %** of the messages;
2. encode 1 GB in less than **one minute**;
3. at most one in several thousand failures unrecoverable
   (**P[catastrophic] ≤ 1e-3**);
4. restart no more than **20 %** of processes after a failure.

A clustering whose four-dimensional score stays inside this polygon is
"suitable for FT in future large scale HPC systems" (Fig. 5c); the paper's
headline claim is that only the hierarchical clustering qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import format_duration, format_probability
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class FourDimScore:
    """One clustering's score along the paper's four dimensions."""

    name: str
    logging_fraction: float
    recovery_fraction: float
    encoding_s_per_gb: float
    prob_catastrophic: float

    def __post_init__(self) -> None:
        check_probability("logging_fraction", self.logging_fraction)
        check_probability("recovery_fraction", self.recovery_fraction)
        check_positive("encoding_s_per_gb", self.encoding_s_per_gb, strict=False)
        check_probability("prob_catastrophic", self.prob_catastrophic)

    def as_row(self) -> list[str]:
        """Table II-style formatted row."""
        return [
            self.name,
            f"{100 * self.logging_fraction:.1f}%",
            f"{100 * self.recovery_fraction:.2f}%",
            format_duration(self.encoding_s_per_gb),
            format_probability(self.prob_catastrophic),
        ]


@dataclass(frozen=True)
class BaselineRequirements:
    """§III's acceptance thresholds for large-scale deployability."""

    max_logging_fraction: float = 0.20
    max_encoding_s_per_gb: float = 60.0
    max_prob_catastrophic: float = 1.0e-3
    max_recovery_fraction: float = 0.20

    def __post_init__(self) -> None:
        check_probability("max_logging_fraction", self.max_logging_fraction)
        check_positive("max_encoding_s_per_gb", self.max_encoding_s_per_gb)
        check_probability("max_prob_catastrophic", self.max_prob_catastrophic)
        check_probability("max_recovery_fraction", self.max_recovery_fraction)

    def check(self, score: FourDimScore) -> dict[str, bool]:
        """Per-dimension pass/fail for one score."""
        return {
            "logging": score.logging_fraction <= self.max_logging_fraction,
            "recovery": score.recovery_fraction <= self.max_recovery_fraction,
            "encoding": score.encoding_s_per_gb <= self.max_encoding_s_per_gb,
            "reliability": score.prob_catastrophic <= self.max_prob_catastrophic,
        }

    def satisfied(self, score: FourDimScore) -> bool:
        """Whether the score is inside the baseline polygon on all axes."""
        return all(self.check(score).values())

    def normalized(self, score: FourDimScore) -> dict[str, float]:
        """Score/baseline ratios (≤ 1 on every axis ⇔ inside the polygon).

        This is Fig. 5c's radar normalization: "the baseline is the
        normalized maximum overhead in all four dimensions". The
        reliability axis is normalized in log-space relative to the
        baseline probability, since the quantity spans 14 orders of
        magnitude (ratio = log P / log P_max for P < 1, > 1 when worse).
        """
        import math

        if score.prob_catastrophic <= 0.0:
            rel = 0.0
        elif score.prob_catastrophic >= 1.0:
            rel = float("inf")
        else:
            rel = math.log(self.max_prob_catastrophic) / math.log(
                score.prob_catastrophic
            )
        return {
            "logging": score.logging_fraction / self.max_logging_fraction,
            "recovery": score.recovery_fraction / self.max_recovery_fraction,
            "encoding": score.encoding_s_per_gb / self.max_encoding_s_per_gb,
            "reliability": rel,
        }


#: The paper's baseline instance.
PAPER_BASELINE = BaselineRequirements()
