"""Long-run failure-campaign model: the four dimensions, composed.

Table II scores each clustering along four separate axes. This model
composes them into the quantity an operator actually cares about — the
fraction of machine time lost to fault tolerance over a long execution —
by simulating a campaign of MTBF-distributed failures against a
clustering's concrete costs:

* steady-state **checkpoint overhead** (write + encode every interval);
* per-failure **rework** (restarted fraction × work since the cluster's
  last checkpoint) plus **restore time** (local reads or erasure decode);
* **catastrophic events** (beyond the L2 tolerance): full-machine rollback
  to the last PFS flush plus the PFS read;
* sender-side **log memory** is tracked against the per-process budget as
  a feasibility check (the §III requirement behind the 20 % logging cap).

The event loop is analytic (no discrete-event execution) *and batched*:
every failure event of a campaign is drawn in one vectorized call and
scored against the precomputed lookup tables of :mod:`repro.core.tables`,
so whole campaigns across clusterings and scales run in milliseconds and
the benchmark can sweep them; every ingredient is the corresponding
already-tested model.
"""

from __future__ import annotations

import math
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.clustering.base import Clustering
from repro.failures.catastrophic import CatastrophicModel, MonteCarloEstimator
from repro.failures.events import PAPER_TAXONOMY, FailureTaxonomy
from repro.failures.mtbf import MTBFModel
from repro.machine.machine import Machine
from repro.models.encoding_time import EncodingTimeModel
from repro.util.rng import resolve_rng, spawn_rngs
from repro.util.units import GiB
from repro.util.validation import check_finite, check_positive


def _run_campaign_task(args) -> "CampaignResult":
    """Worker entry point for the process-pool sweep (module-level so it
    pickles): one (simulator, clustering, child-rng) triple → one result."""
    simulator, clustering, rng = args
    return simulator.run(clustering, rng=rng)


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one long-run campaign."""

    horizon_s: float = 30 * 24 * 3600.0  # one month of execution
    checkpoint_interval_s: float = 3600.0
    pfs_flush_every: int = 24  # PFS flush every Nth checkpoint
    checkpoint_gb_per_node: float = 1.0
    node_mtbf_s: float = 5 * 365 * 24 * 3600.0  # five node-years

    def __post_init__(self) -> None:
        for name in (
            "horizon_s",
            "checkpoint_interval_s",
            "checkpoint_gb_per_node",
            "node_mtbf_s",
        ):
            value = getattr(self, name)
            check_finite(name, value)
            check_positive(name, value)
        if not math.isfinite(self.pfs_flush_every) or self.pfs_flush_every < 1:
            raise ValueError(
                f"pfs_flush_every must be >= 1, got {self.pfs_flush_every!r}"
            )


@dataclass
class CampaignResult:
    """Outcome of one simulated campaign."""

    clustering: str
    horizon_s: float
    n_failures: int
    n_catastrophic: int
    checkpoint_overhead_s: float
    rework_s: float
    restore_s: float
    catastrophic_penalty_s: float

    @property
    def total_waste_s(self) -> float:
        """All machine time lost to fault tolerance."""
        return (
            self.checkpoint_overhead_s
            + self.rework_s
            + self.restore_s
            + self.catastrophic_penalty_s
        )

    @property
    def waste_fraction(self) -> float:
        """Waste as a fraction of the horizon (lower is better)."""
        return min(1.0, self.total_waste_s / self.horizon_s)

    @property
    def efficiency(self) -> float:
        """Useful-work fraction of the campaign."""
        return 1.0 - self.waste_fraction


class CampaignSimulator:
    """Samples failure campaigns against one machine + clustering."""

    def __init__(
        self,
        machine: Machine,
        config: CampaignConfig = CampaignConfig(),
        *,
        taxonomy: FailureTaxonomy = PAPER_TAXONOMY,
        encoding_model: EncodingTimeModel | None = None,
    ):
        self.machine = machine
        self.config = config
        self.taxonomy = taxonomy
        self.encoding_model = encoding_model or EncodingTimeModel()

    # -- per-clustering cost ingredients ------------------------------------

    def checkpoint_cost_s(self, clustering: Clustering) -> float:
        """One coordinated checkpoint: SSD write + L2 encode (per node)."""
        cfg = self.config
        write = self.machine.ssd_spec.write_time(
            int(cfg.checkpoint_gb_per_node * GiB)
        )
        l2 = int(np.median(clustering.l2_sizes()))
        encode = self.encoding_model.seconds(cfg.checkpoint_gb_per_node, l2)
        return write + encode

    def _decode_cost_s(self, clustering: Clustering) -> float:
        """One erasure decode of a lost rank's checkpoint slice."""
        cfg = self.config
        per_rank_gb = cfg.checkpoint_gb_per_node / self.machine.procs_per_node
        l2 = int(np.median(clustering.l2_sizes()))
        return self.encoding_model.seconds(per_rank_gb * l2, l2)

    def _restore_cost_s(self, clustering: Clustering, n_decoded: int) -> float:
        """Restore after a node loss: reads + one decode per lost rank."""
        cfg = self.config
        per_rank_gb = cfg.checkpoint_gb_per_node / self.machine.procs_per_node
        read = self.machine.ssd_spec.read_time(int(per_rank_gb * GiB))
        return read + n_decoded * self._decode_cost_s(clustering)

    def _catastrophic_penalty_s(self) -> float:
        """Full rollback to the last PFS flush + machine-wide PFS read."""
        cfg = self.config
        mean_rollback = (
            cfg.pfs_flush_every * cfg.checkpoint_interval_s / 2.0
        )
        total_bytes = int(
            cfg.checkpoint_gb_per_node * GiB * self.machine.nnodes
        )
        read = self.machine.pfs_spec.read_time(
            total_bytes, concurrent=self.machine.nnodes
        )
        return mean_rollback + read

    # -- campaign --------------------------------------------------------------

    def run(self, clustering: Clustering, *, rng=None) -> CampaignResult:
        """Simulate one campaign; deterministic under a seeded ``rng``.

        All failure events of the campaign are drawn in one batched call
        and scored against the precomputed per-(clustering, placement)
        tables (:mod:`repro.core.tables`) — the loop over events is a
        handful of masked array reductions.
        """
        if clustering.n != self.machine.nranks:
            raise ValueError(
                f"clustering covers {clustering.n} processes, machine "
                f"hosts {self.machine.nranks}"
            )
        # Imported lazily: repro.core's package init imports back into
        # repro.models, so a module-level import would cycle.
        from repro.core.tables import restart_tables

        gen = resolve_rng(rng)
        cfg = self.config
        mtbf = MTBFModel(cfg.node_mtbf_s, self.machine.nnodes)
        failure_times = mtbf.failure_times(cfg.horizon_s, rng=gen)

        model = CatastrophicModel(
            self.machine.placement, taxonomy=self.taxonomy
        )
        sampler = MonteCarloEstimator(model, rng=gen)

        ckpt_cost = self.checkpoint_cost_s(clustering)
        n_ckpts = int(cfg.horizon_s // cfg.checkpoint_interval_s)
        checkpoint_overhead = n_ckpts * ckpt_cost

        rework = 0.0
        restore = 0.0
        n_catastrophic = 0
        n_events = len(failure_times)
        if n_events:
            batch = sampler.sample_events(n_events)
            catastrophic = model.events_are_catastrophic(clustering, batch)
            n_catastrophic = int(catastrophic.sum())

            tables = restart_tables(clustering, self.machine.placement)
            survived = ~catastrophic
            fractions = tables.batch_restart_fractions(batch)
            since_ckpt = np.asarray(failure_times) % cfg.checkpoint_interval_s
            rework = float((fractions * since_ckpt)[survived].sum())

            # Restore = one SSD read per surviving failure + one erasure
            # decode per rank hosted on the failed nodes (0 for soft errors).
            decoded = np.zeros(n_events, dtype=np.int64)
            node_events = ~batch.is_soft
            decoded[node_events] = tables.ranks_on_runs(
                batch.run_start[node_events], batch.run_length[node_events]
            )
            restore = float(
                int(survived.sum()) * self._restore_cost_s(clustering, 0)
                + int(decoded[survived].sum()) * self._decode_cost_s(clustering)
            )
        catastrophic_penalty = n_catastrophic * self._catastrophic_penalty_s()

        return CampaignResult(
            clustering=clustering.name,
            horizon_s=cfg.horizon_s,
            n_failures=n_events,
            n_catastrophic=n_catastrophic,
            checkpoint_overhead_s=checkpoint_overhead,
            rework_s=rework,
            restore_s=restore,
            catastrophic_penalty_s=catastrophic_penalty,
        )

    def sweep(
        self,
        clusterings: list[Clustering],
        *,
        n_campaigns: int = 5,
        rng=None,
        workers: int = 1,
    ) -> dict[str, list[CampaignResult]]:
        """Run ``n_campaigns`` campaigns per clustering, optionally in parallel.

        Campaigns are embarrassingly parallel across (clustering, seed)
        pairs: each pair gets an independent child stream spawned from
        ``rng`` (:func:`repro.util.rng.spawn_rngs`), so results are
        deterministic under a fixed seed *regardless of worker count or
        completion order*, and ``workers > 1`` fans the pairs out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`. Returns the
        aggregated :class:`CampaignResult` lists keyed by clustering name,
        campaign-index order preserved.
        """
        if n_campaigns < 1:
            raise ValueError("n_campaigns must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        names = [c.name for c in clusterings]
        if len(set(names)) != len(names):
            raise ValueError(
                f"clustering names must be unique to key the sweep, got {names}"
            )
        streams = spawn_rngs(rng, len(clusterings) * n_campaigns)
        tasks = [
            (self, clustering, streams[i * n_campaigns + k])
            for i, clustering in enumerate(clusterings)
            for k in range(n_campaigns)
        ]
        if workers == 1:
            results = [_run_campaign_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_run_campaign_task, tasks))
        return {
            clustering.name: results[i * n_campaigns : (i + 1) * n_campaigns]
            for i, clustering in enumerate(clusterings)
        }

    def expected_waste(
        self,
        clustering: Clustering,
        *,
        n_campaigns: int = 5,
        rng=None,
        workers: int = 1,
    ) -> float:
        """Mean waste fraction over several sampled campaigns.

        .. deprecated::
            Construct a :class:`repro.core.query.ReliabilityQuery` with
            ``metric="expected_waste"`` and call
            :func:`repro.core.query.run_query` instead; the query path is
            seed-for-seed identical to ``workers=1`` here. This loose-kwarg
            form survives one release as a shim. Parallel multi-campaign
            sweeps stay on :meth:`sweep` (not deprecated).

        ``workers=1`` keeps the historical serial path (campaigns drawn
        sequentially from one shared generator, seed-for-seed identical to
        earlier releases); ``workers > 1`` delegates to :meth:`sweep`,
        which spawns one child stream per campaign and scores them in a
        process pool (statistically equivalent, different draws).
        """
        warnings.warn(
            "CampaignSimulator.expected_waste(...) is deprecated; build a "
            "ReliabilityQuery(metric='expected_waste') and call "
            "repro.core.query.run_query (seed-for-seed identical)",
            DeprecationWarning,
            stacklevel=2,
        )
        if n_campaigns < 1:
            raise ValueError("n_campaigns must be >= 1")
        if workers > 1:
            results = self.sweep(
                [clustering], n_campaigns=n_campaigns, rng=rng, workers=workers
            )[clustering.name]
            return float(np.mean([r.waste_fraction for r in results]))
        gen = resolve_rng(rng)
        return float(
            np.mean(
                [
                    self.run(clustering, rng=gen).waste_fraction
                    for _ in range(n_campaigns)
                ]
            )
        )
