"""Long-run failure-campaign model: the four dimensions, composed.

Table II scores each clustering along four separate axes. This model
composes them into the quantity an operator actually cares about — the
fraction of machine time lost to fault tolerance over a long execution —
by simulating a campaign of MTBF-distributed failures against a
clustering's concrete costs:

* steady-state **checkpoint overhead** (write + encode every interval);
* per-failure **rework** (restarted fraction × work since the cluster's
  last checkpoint) plus **restore time** (local reads or erasure decode);
* **catastrophic events** (beyond the L2 tolerance): full-machine rollback
  to the last PFS flush plus the PFS read;
* sender-side **log memory** is tracked against the per-process budget as
  a feasibility check (the §III requirement behind the 20 % logging cap).

The event loop is analytic (no discrete-event execution), so whole
campaigns across clusterings and scales run in milliseconds and the
benchmark can sweep them; every ingredient is the corresponding
already-tested model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.base import Clustering
from repro.failures.catastrophic import CatastrophicModel, MonteCarloEstimator
from repro.failures.events import PAPER_TAXONOMY, FailureTaxonomy
from repro.failures.mtbf import MTBFModel
from repro.machine.machine import Machine
from repro.models.encoding_time import EncodingTimeModel
from repro.models.recovery_cost import restart_set_for_nodes
from repro.util.rng import resolve_rng
from repro.util.units import GiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one long-run campaign."""

    horizon_s: float = 30 * 24 * 3600.0  # one month of execution
    checkpoint_interval_s: float = 3600.0
    pfs_flush_every: int = 24  # PFS flush every Nth checkpoint
    checkpoint_gb_per_node: float = 1.0
    node_mtbf_s: float = 5 * 365 * 24 * 3600.0  # five node-years

    def __post_init__(self) -> None:
        check_positive("horizon_s", self.horizon_s)
        check_positive("checkpoint_interval_s", self.checkpoint_interval_s)
        check_positive("checkpoint_gb_per_node", self.checkpoint_gb_per_node)
        check_positive("node_mtbf_s", self.node_mtbf_s)
        if self.pfs_flush_every < 1:
            raise ValueError("pfs_flush_every must be >= 1")


@dataclass
class CampaignResult:
    """Outcome of one simulated campaign."""

    clustering: str
    horizon_s: float
    n_failures: int
    n_catastrophic: int
    checkpoint_overhead_s: float
    rework_s: float
    restore_s: float
    catastrophic_penalty_s: float

    @property
    def total_waste_s(self) -> float:
        """All machine time lost to fault tolerance."""
        return (
            self.checkpoint_overhead_s
            + self.rework_s
            + self.restore_s
            + self.catastrophic_penalty_s
        )

    @property
    def waste_fraction(self) -> float:
        """Waste as a fraction of the horizon (lower is better)."""
        return min(1.0, self.total_waste_s / self.horizon_s)

    @property
    def efficiency(self) -> float:
        """Useful-work fraction of the campaign."""
        return 1.0 - self.waste_fraction


class CampaignSimulator:
    """Samples failure campaigns against one machine + clustering."""

    def __init__(
        self,
        machine: Machine,
        config: CampaignConfig = CampaignConfig(),
        *,
        taxonomy: FailureTaxonomy = PAPER_TAXONOMY,
        encoding_model: EncodingTimeModel | None = None,
    ):
        self.machine = machine
        self.config = config
        self.taxonomy = taxonomy
        self.encoding_model = encoding_model or EncodingTimeModel()

    # -- per-clustering cost ingredients ------------------------------------

    def checkpoint_cost_s(self, clustering: Clustering) -> float:
        """One coordinated checkpoint: SSD write + L2 encode (per node)."""
        cfg = self.config
        write = self.machine.ssd_spec.write_time(
            int(cfg.checkpoint_gb_per_node * GiB)
        )
        l2 = int(np.median(clustering.l2_sizes()))
        encode = self.encoding_model.seconds(cfg.checkpoint_gb_per_node, l2)
        return write + encode

    def _restore_cost_s(self, clustering: Clustering, n_decoded: int) -> float:
        """Restore after a node loss: reads + one decode per lost rank."""
        cfg = self.config
        per_rank_gb = cfg.checkpoint_gb_per_node / self.machine.procs_per_node
        read = self.machine.ssd_spec.read_time(int(per_rank_gb * GiB))
        l2 = int(np.median(clustering.l2_sizes()))
        decode = self.encoding_model.seconds(per_rank_gb * l2, l2)
        return read + n_decoded * decode

    def _catastrophic_penalty_s(self) -> float:
        """Full rollback to the last PFS flush + machine-wide PFS read."""
        cfg = self.config
        mean_rollback = (
            cfg.pfs_flush_every * cfg.checkpoint_interval_s / 2.0
        )
        total_bytes = int(
            cfg.checkpoint_gb_per_node * GiB * self.machine.nnodes
        )
        read = self.machine.pfs_spec.read_time(
            total_bytes, concurrent=self.machine.nnodes
        )
        return mean_rollback + read

    # -- campaign --------------------------------------------------------------

    def run(self, clustering: Clustering, *, rng=None) -> CampaignResult:
        """Simulate one campaign; deterministic under a seeded ``rng``."""
        if clustering.n != self.machine.nranks:
            raise ValueError(
                f"clustering covers {clustering.n} processes, machine "
                f"hosts {self.machine.nranks}"
            )
        gen = resolve_rng(rng)
        cfg = self.config
        mtbf = MTBFModel(cfg.node_mtbf_s, self.machine.nnodes)
        failure_times = mtbf.failure_times(cfg.horizon_s, rng=gen)

        model = CatastrophicModel(
            self.machine.placement, taxonomy=self.taxonomy
        )
        sampler = MonteCarloEstimator(model, rng=gen)

        ckpt_cost = self.checkpoint_cost_s(clustering)
        n_ckpts = int(cfg.horizon_s // cfg.checkpoint_interval_s)
        checkpoint_overhead = n_ckpts * ckpt_cost

        rework = 0.0
        restore = 0.0
        catastrophic_penalty = 0.0
        n_catastrophic = 0
        for t in failure_times:
            event = sampler.sample_event()
            if model.event_is_catastrophic(clustering, event):
                n_catastrophic += 1
                catastrophic_penalty += self._catastrophic_penalty_s()
                continue
            since_ckpt = float(t % cfg.checkpoint_interval_s)
            if event.kind == "soft":
                members = clustering.l1_members(
                    clustering.l1_of(event.process)
                )
                fraction = members.size / clustering.n
                n_decoded = 0
            else:
                restarted = restart_set_for_nodes(
                    clustering, self.machine.placement, event.nodes
                )
                fraction = restarted.size / clustering.n
                n_decoded = sum(
                    len(self.machine.ranks_of_node(node))
                    for node in event.nodes
                )
            rework += fraction * since_ckpt
            restore += self._restore_cost_s(clustering, n_decoded)

        return CampaignResult(
            clustering=clustering.name,
            horizon_s=cfg.horizon_s,
            n_failures=len(failure_times),
            n_catastrophic=n_catastrophic,
            checkpoint_overhead_s=checkpoint_overhead,
            rework_s=rework,
            restore_s=restore,
            catastrophic_penalty_s=catastrophic_penalty,
        )

    def expected_waste(
        self, clustering: Clustering, *, n_campaigns: int = 5, rng=None
    ) -> float:
        """Mean waste fraction over several sampled campaigns."""
        if n_campaigns < 1:
            raise ValueError("n_campaigns must be >= 1")
        gen = resolve_rng(rng)
        return float(
            np.mean(
                [
                    self.run(clustering, rng=gen).waste_fraction
                    for _ in range(n_campaigns)
                ]
            )
        )
