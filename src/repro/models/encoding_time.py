"""Encoding-time model: seconds per GB as a function of L2 cluster size.

§III-B measures Reed–Solomon encoding on TSUBAME2 and finds the time per GB
growing linearly with the encoding-cluster size (Fig. 3b, log scale; Table
II: 25 s at 4, 51 s at 8, 102 s at 16, 204 s at 32 — exactly 6.375 s/GB per
member). The mechanism: with FTI's half-parity RS, every member's data
receives ``m = k/2`` coefficient applications and traverses the encoder
ring, so work per byte ∝ k.

The model exposes the calibrated linear law and a mechanistic decomposition
from machine parameters; the *measured* path (`measure_throughput`) runs the
real :class:`~repro.erasure.ReedSolomonCode` so benchmarks can show the same
linear shape on this machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.erasure.reed_solomon import ReedSolomonCode
from repro.util.units import GiB
from repro.util.validation import check_positive

#: Calibrated slope on TSUBAME2 (Table II): seconds per GB per cluster member.
TSUBAME2_SECONDS_PER_GB_PER_MEMBER: float = 6.375


@dataclass(frozen=True)
class EncodingTimeModel:
    """Linear encoding-cost law ``t(GB, k) = (intercept + slope · k) · GB``."""

    slope_s_per_gb: float = TSUBAME2_SECONDS_PER_GB_PER_MEMBER
    intercept_s_per_gb: float = 0.0

    def __post_init__(self) -> None:
        check_positive("slope_s_per_gb", self.slope_s_per_gb)
        check_positive("intercept_s_per_gb", self.intercept_s_per_gb, strict=False)

    def seconds_per_gb(self, cluster_size: int) -> float:
        """Encoding time of 1 GB within a cluster of ``cluster_size``."""
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        return self.intercept_s_per_gb + self.slope_s_per_gb * cluster_size

    def seconds(self, data_gb: float, cluster_size: int) -> float:
        """Encoding time of ``data_gb`` GB within a cluster."""
        check_positive("data_gb", data_gb, strict=False)
        return data_gb * self.seconds_per_gb(cluster_size)

    def max_cluster_for_budget(self, budget_s_per_gb: float) -> int:
        """Largest cluster size meeting an encoding-rate requirement."""
        check_positive("budget_s_per_gb", budget_s_per_gb)
        k = int((budget_s_per_gb - self.intercept_s_per_gb) // self.slope_s_per_gb)
        return max(k, 0)


def measure_throughput(
    cluster_size: int,
    *,
    shard_bytes: int = 1 << 20,
    parity_fraction: float = 0.5,
    repeats: int = 1,
    rng=None,
) -> dict[str, float]:
    """Measure real RS encoding on this host; returns rate and model shape.

    Encodes ``cluster_size`` shards of ``shard_bytes`` with
    ``m = parity_fraction · k`` parity (FTI's half-parity default) and
    reports wall-clock seconds per GB of protected data. The paper's claim
    under test is the *linear growth with k*, not the absolute rate.
    """
    from repro.util.rng import resolve_rng

    if cluster_size < 2:
        raise ValueError("encoding needs at least 2 members")
    gen = resolve_rng(rng)
    k = cluster_size
    m = max(1, int(round(parity_fraction * k)))
    code = ReedSolomonCode(k=k, m=m)
    data = gen.integers(0, 256, size=(k, shard_bytes), dtype=np.uint8)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        code.encode(data)
        best = min(best, time.perf_counter() - t0)
    data_gb = k * shard_bytes / GiB
    return {
        "cluster_size": float(k),
        "parity_shards": float(m),
        "seconds": best,
        "seconds_per_gb": best / data_gb,
        "byte_ops": float(code.encoding_byte_ops(shard_bytes)),
    }
