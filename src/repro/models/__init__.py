"""Analytic models of the paper's four optimization dimensions.

* :mod:`repro.models.logging_overhead` — % of bytes crossing L1 boundaries;
* :mod:`repro.models.recovery_cost` — % of processes rolled back per failure;
* :mod:`repro.models.encoding_time` — s/GB as a function of L2 cluster size;
* reliability lives in :mod:`repro.failures.catastrophic`;
* :mod:`repro.models.baseline` — §III's requirements and Fig. 5c scoring;
* :mod:`repro.models.daly` — checkpoint-interval/waste extension.
"""

from repro.models.baseline import (
    PAPER_BASELINE,
    BaselineRequirements,
    FourDimScore,
)
from repro.models.campaign import (
    CampaignConfig,
    CampaignResult,
    CampaignSimulator,
)
from repro.models.daly import WasteModel, daly_interval, young_interval
from repro.models.encoding_time import (
    TSUBAME2_SECONDS_PER_GB_PER_MEMBER,
    EncodingTimeModel,
    measure_throughput,
)
from repro.models.pfs_scheduling import PfsSchedulingModel, ScheduleOutcome
from repro.models.logging_overhead import (
    LogMemoryModel,
    logged_bytes,
    logged_fraction,
)
from repro.models.recovery_cost import (
    expected_restart_fraction,
    restart_fraction_for_node,
    restart_set_for_nodes,
    worst_case_restart_fraction,
)

__all__ = [
    "BaselineRequirements",
    "CampaignConfig",
    "CampaignResult",
    "CampaignSimulator",
    "EncodingTimeModel",
    "FourDimScore",
    "LogMemoryModel",
    "PAPER_BASELINE",
    "PfsSchedulingModel",
    "ScheduleOutcome",
    "TSUBAME2_SECONDS_PER_GB_PER_MEMBER",
    "WasteModel",
    "daly_interval",
    "expected_restart_fraction",
    "logged_bytes",
    "logged_fraction",
    "measure_throughput",
    "restart_fraction_for_node",
    "restart_set_for_nodes",
    "worst_case_restart_fraction",
    "young_interval",
]
