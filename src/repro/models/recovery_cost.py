"""Recovery-cost model: fraction of processes restarted after a failure.

Under a hybrid protocol, a failure rolls back every L1 cluster containing a
failed process (§II-B2). For a *node* failure the restarted set is the
union of the L1 clusters of all processes on that node — which is why
distributed clustering explodes this dimension (Fig. 4c: one node touches
16 clusters → half the machine restarts) while node-aligned clusterings
restart exactly one cluster.

Everything here is a single vectorized pass over the precomputed
per-(clustering, placement) tables (:mod:`repro.core.tables`): a node set
becomes a boolean mask over the rank → node vector, the touched clusters a
``bincount``-style label mask — no per-rank Python, no per-node set unions.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clustering
from repro.machine.placement import Placement


def _restart_tables(clustering: Clustering, placement: Placement):
    # Imported lazily: repro.core's package init imports back into
    # repro.models, so a module-level import would cycle.
    from repro.core.tables import restart_tables

    return restart_tables(clustering, placement)


def restart_set_for_nodes(
    clustering: Clustering, placement: Placement, nodes
) -> np.ndarray:
    """Process indices rolled back when ``nodes`` fail simultaneously."""
    nodes = np.asarray(list(nodes), dtype=np.int64)
    if nodes.size == 0:
        return np.array([], dtype=np.int64)
    if ((nodes < 0) | (nodes >= placement.nnodes)).any():
        raise ValueError(
            f"nodes {nodes.tolist()} out of range [0, {placement.nnodes})"
        )
    tables = _restart_tables(clustering, placement)
    touched = np.zeros(clustering.n_l1_clusters, dtype=bool)
    touched[clustering.l1_labels[np.isin(tables.node_of_rank, nodes)]] = True
    return np.flatnonzero(touched[clustering.l1_labels])


def restart_fraction_for_node(
    clustering: Clustering, placement: Placement, node: int
) -> float:
    """Fraction of all processes restarted by a single-node failure."""
    placement._check_node(node)
    tables = _restart_tables(clustering, placement)
    return float(tables.node_restart_fraction[node])


def expected_restart_fraction(
    clustering: Clustering, placement: Placement
) -> float:
    """Mean restart fraction over a uniformly random single-node failure.

    This is the paper's *recovery cost* dimension (Table II column 3):
    naive-32 → 3.1 %, size-guided-8 → 0.7 %, distributed-16 → 25 %,
    hierarchical 64-proc L1 → 6.25 %.
    """
    tables = _restart_tables(clustering, placement)
    return float(tables.node_restart_fraction.mean())


def worst_case_restart_fraction(
    clustering: Clustering, placement: Placement
) -> float:
    """Max restart fraction over single-node failures."""
    tables = _restart_tables(clustering, placement)
    return float(tables.node_restart_fraction.max())
