"""Recovery-cost model: fraction of processes restarted after a failure.

Under a hybrid protocol, a failure rolls back every L1 cluster containing a
failed process (§II-B2). For a *node* failure the restarted set is the
union of the L1 clusters of all processes on that node — which is why
distributed clustering explodes this dimension (Fig. 4c: one node touches
16 clusters → half the machine restarts) while node-aligned clusterings
restart exactly one cluster.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clustering
from repro.machine.placement import Placement


def restart_set_for_nodes(
    clustering: Clustering, placement: Placement, nodes
) -> np.ndarray:
    """Process indices rolled back when ``nodes`` fail simultaneously."""
    touched: set[int] = set()
    for node in nodes:
        for rank in placement.ranks_of_node(node):
            touched.add(clustering.l1_of(rank))
    if not touched:
        return np.array([], dtype=np.int64)
    mask = np.isin(clustering.l1_labels, sorted(touched))
    return np.flatnonzero(mask)


def restart_fraction_for_node(
    clustering: Clustering, placement: Placement, node: int
) -> float:
    """Fraction of all processes restarted by a single-node failure."""
    return restart_set_for_nodes(clustering, placement, [node]).size / clustering.n


def expected_restart_fraction(
    clustering: Clustering, placement: Placement
) -> float:
    """Mean restart fraction over a uniformly random single-node failure.

    This is the paper's *recovery cost* dimension (Table II column 3):
    naive-32 → 3.1 %, size-guided-8 → 0.7 %, distributed-16 → 25 %,
    hierarchical 64-proc L1 → 6.25 %.
    """
    if clustering.n != placement.nranks:
        raise ValueError(
            f"clustering covers {clustering.n} processes, placement "
            f"{placement.nranks}"
        )
    fractions = [
        restart_fraction_for_node(clustering, placement, node)
        for node in range(placement.nnodes)
    ]
    return float(np.mean(fractions))


def worst_case_restart_fraction(
    clustering: Clustering, placement: Placement
) -> float:
    """Max restart fraction over single-node failures."""
    return max(
        restart_fraction_for_node(clustering, placement, node)
        for node in range(placement.nnodes)
    )
