"""Message-logging overhead model.

The hybrid protocol logs exactly the payloads crossing L1 cluster
boundaries, in sender memory (§II-B2, sender-based logging [14]). The
fraction-of-bytes-logged comes straight from the communication graph; this
module adds the *memory footprint* view the paper worries about ("it
imposes a high memory footprint that increases with the communication rate
of the application").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.base import Clustering
from repro.commgraph.graph import CommGraph


def logged_fraction(graph: CommGraph, clustering: Clustering) -> float:
    """Fraction of communicated bytes that must be logged (Table II col. 2)."""
    if graph.n != clustering.n:
        raise ValueError(
            f"graph covers {graph.n} endpoints, clustering {clustering.n}"
        )
    return graph.logged_fraction(clustering.l1_labels)


def logged_bytes(graph: CommGraph, clustering: Clustering) -> float:
    """Absolute logged volume over the traced window."""
    if graph.n != clustering.n:
        raise ValueError(
            f"graph covers {graph.n} endpoints, clustering {clustering.n}"
        )
    return graph.cut_bytes(clustering.l1_labels)


@dataclass(frozen=True)
class LogMemoryModel:
    """Sender-side log memory growth between checkpoints.

    ``window_s`` is the time between coordinated checkpoints of a cluster —
    logs can be truncated once every potential receiver has checkpointed
    past the logged message.
    """

    memory_per_process_bytes: float

    def peak_log_bytes_per_process(
        self,
        graph: CommGraph,
        clustering: Clustering,
        *,
        trace_duration_s: float,
        window_s: float,
    ) -> np.ndarray:
        """Per-process peak log footprint over one checkpoint window."""
        if trace_duration_s <= 0 or window_s <= 0:
            raise ValueError("durations must be positive")
        labels = clustering.l1_labels
        cross = labels[:, None] != labels[None, :]
        logged_per_sender = (graph.matrix * cross).sum(axis=0)  # by src column
        rate = logged_per_sender / trace_duration_s
        return rate * window_s

    def fits(self, peak_bytes: np.ndarray) -> bool:
        """Whether every process's log fits in its memory budget."""
        return bool((peak_bytes <= self.memory_per_process_bytes).all())
