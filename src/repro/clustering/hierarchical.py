"""The paper's contribution: two-level hierarchical clustering (§IV-B).

Construction steps, exactly as the paper lists them:

1. obtain the application's communication matrix (done upstream:
   :mod:`repro.commgraph`);
2. collapse it to a **node-based** graph, so all processes of a node land in
   the same L1 cluster and at most one cluster restarts per node failure;
3. partition the node graph with the [24]-style algorithm and cost function
   (:mod:`repro.clustering.partition`), with ≥ ``min_nodes_per_l1`` nodes
   per cluster so failure distribution is possible inside each;
4. inside each L1 cluster, chop the node list into groups of
   ``l2_group_nodes`` (4 by default, "or more" for remainders) and make the
   *i*-th process of every node in a group an L2 encoding cluster — small,
   homogeneous, and spread over distinct nodes.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clustering
from repro.clustering.partition import PartitionCost, partition_node_graph
from repro.commgraph.graph import CommGraph
from repro.machine.placement import Placement


def l2_striping(
    l1_node_lists: list[list[int]],
    placement: Placement,
    *,
    l2_group_nodes: int = 4,
) -> np.ndarray:
    """Build L2 labels by striping processes across node groups.

    For every L1 cluster (given as its node list), nodes are chopped into
    groups of ``l2_group_nodes``; a remainder short of a full group is
    absorbed by the last group ("groups of 4 nodes (or more)", §IV-B).
    Within a group, slot *i* of every node joins L2 cluster *i* of that
    group, giving ``procs_per_node`` clusters per group whose members all
    live on different nodes.
    """
    if l2_group_nodes < 1:
        raise ValueError(f"l2_group_nodes must be >= 1, got {l2_group_nodes}")
    l2_labels = np.full(placement.nranks, -1, dtype=np.int64)
    next_l2 = 0
    for nodes in l1_node_lists:
        nodes = list(nodes)
        n_groups = max(1, len(nodes) // l2_group_nodes)
        groups = [
            nodes[g * l2_group_nodes : (g + 1) * l2_group_nodes]
            for g in range(n_groups)
        ]
        # Remainder nodes join the last group ("or more").
        leftover = nodes[n_groups * l2_group_nodes :]
        groups[-1].extend(leftover)
        for group in groups:
            slots = [placement.ranks_of_node(node) for node in group]
            ppn = max(len(s) for s in slots)
            for slot_index in range(ppn):
                members = [s[slot_index] for s in slots if slot_index < len(s)]
                for rank in members:
                    l2_labels[rank] = next_l2
                next_l2 += 1
    if (l2_labels < 0).any():
        missing = np.flatnonzero(l2_labels < 0)
        raise ValueError(
            f"L1 node lists do not cover every process (missing ranks "
            f"{missing[:8].tolist()}…)"
        )
    return l2_labels


def hierarchical_clustering(
    node_graph: CommGraph,
    placement: Placement,
    *,
    min_nodes_per_l1: int = 4,
    max_nodes_per_l1: int | None = None,
    l2_group_nodes: int = 4,
    cost: PartitionCost | None = None,
    name: str | None = None,
) -> Clustering:
    """Build the full hierarchical clustering for one application/machine.

    Parameters
    ----------
    node_graph:
        Node-level communication graph (``node_graph.n`` must equal
        ``placement.nnodes``); build it with
        :func:`repro.commgraph.node_graph`.
    placement:
        rank↔node mapping of the application processes.
    min_nodes_per_l1 / max_nodes_per_l1 / cost:
        Passed to :func:`partition_node_graph` (§IV-B fixes the minimum
        at 4).
    l2_group_nodes:
        Width of the L2 striping groups (4 in the paper: "clusters of 4 or
        8 processes are already highly reliable if distributed").
    """
    if node_graph.n != placement.nnodes:
        raise ValueError(
            f"node graph has {node_graph.n} nodes, placement {placement.nnodes}"
        )
    node_labels = partition_node_graph(
        node_graph,
        min_cluster_nodes=min_nodes_per_l1,
        max_cluster_nodes=max_nodes_per_l1,
        cost=cost,
    )
    n_l1 = int(node_labels.max()) + 1
    l1_node_lists: list[list[int]] = [[] for _ in range(n_l1)]
    for node, lab in enumerate(node_labels):
        l1_node_lists[int(lab)].append(node)

    l1_labels = np.empty(placement.nranks, dtype=np.int64)
    for node in range(placement.nnodes):
        for rank in placement.ranks_of_node(node):
            l1_labels[rank] = node_labels[node]

    l2_labels = l2_striping(
        l1_node_lists, placement, l2_group_nodes=l2_group_nodes
    )
    typical_l1 = int(np.median([len(v) for v in l1_node_lists]) * placement.procs_per_node)
    label = name or f"hierarchical-{typical_l1}-{l2_group_nodes}"
    return Clustering(label, l1_labels, l2_labels)
