"""Clustering strategies for coupled fast-checkpointing + failure containment.

Implements all four strategies the paper studies — naïve, size-guided,
distributed (§III) and the contributed hierarchical clustering (§IV) — plus
the node-graph partitioner with the [24]-style cost function they build on.
"""

from repro.clustering.alternatives import modularity_partition, spectral_partition
from repro.clustering.base import Clustering
from repro.clustering.hierarchical import hierarchical_clustering, l2_striping
from repro.clustering.partition import PartitionCost, partition_node_graph
from repro.clustering.strategies import (
    consecutive_clustering,
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.clustering.validate import ValidationReport, validate_clustering

__all__ = [
    "Clustering",
    "PartitionCost",
    "ValidationReport",
    "consecutive_clustering",
    "distributed_clustering",
    "hierarchical_clustering",
    "modularity_partition",
    "l2_striping",
    "naive_clustering",
    "partition_node_graph",
    "size_guided_clustering",
    "spectral_partition",
    "validate_clustering",
]
