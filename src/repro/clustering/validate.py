"""Structural validation of clusterings against the paper's requirements.

The constraints come straight from §III/§IV: encoding clusters must nest
inside containment clusters (enforced at construction), hierarchical L1
clusters must be node-aligned and ≥ 4 nodes, L2 members must sit on
pairwise-distinct nodes for the erasure code to survive node failures, and
L2 sizes should be small and homogeneous for fast, balanced encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.base import Clustering
from repro.machine.placement import Placement


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_clustering`."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise ``ValueError`` listing all violations, if any."""
        if self.violations:
            raise ValueError(
                "clustering validation failed:\n- " + "\n- ".join(self.violations)
            )


def validate_clustering(
    clustering: Clustering,
    placement: Placement | None = None,
    *,
    require_node_aligned_l1: bool = False,
    require_l2_distinct_nodes: bool = False,
    min_nodes_per_l1: int | None = None,
    max_l2_size: int | None = None,
    homogeneous_l2: bool = False,
) -> ValidationReport:
    """Check structural invariants; returns a report (never raises itself).

    Placement-dependent checks require ``placement``; asking for one
    without it is reported as a violation (misconfigured call sites should
    not silently pass).
    """
    report = ValidationReport()
    need_placement = (
        require_node_aligned_l1
        or require_l2_distinct_nodes
        or min_nodes_per_l1 is not None
    )
    if need_placement and placement is None:
        report.violations.append("placement required for the requested checks")
        return report
    if placement is not None and clustering.n != placement.nranks:
        report.violations.append(
            f"clustering covers {clustering.n} processes, placement "
            f"{placement.nranks}"
        )
        return report

    if require_node_aligned_l1:
        for node in range(placement.nnodes):
            ranks = placement.ranks_of_node(node)
            owners = {clustering.l1_of(r) for r in ranks}
            if len(owners) > 1:
                report.violations.append(
                    f"node {node} split across L1 clusters {sorted(owners)}"
                )

    if min_nodes_per_l1 is not None:
        for c in range(clustering.n_l1_clusters):
            nodes = {
                placement.node_of_rank(int(r)) for r in clustering.l1_members(c)
            }
            if len(nodes) < min_nodes_per_l1:
                report.violations.append(
                    f"L1 cluster {c} spans {len(nodes)} nodes "
                    f"(minimum {min_nodes_per_l1})"
                )

    if require_l2_distinct_nodes:
        for c in range(clustering.n_l2_clusters):
            members = clustering.l2_members(c)
            nodes = [placement.node_of_rank(int(r)) for r in members]
            if len(set(nodes)) != len(nodes):
                report.violations.append(
                    f"L2 cluster {c} has co-located members (nodes {nodes})"
                )

    if max_l2_size is not None:
        sizes = clustering.l2_sizes()
        for c in np.flatnonzero(sizes > max_l2_size):
            report.violations.append(
                f"L2 cluster {int(c)} has {int(sizes[c])} members "
                f"(maximum {max_l2_size})"
            )

    if homogeneous_l2:
        sizes = clustering.l2_sizes()
        if sizes.size and sizes.max() - sizes.min() > 1:
            report.violations.append(
                f"L2 sizes not homogeneous: min {int(sizes.min())}, "
                f"max {int(sizes.max())}"
            )

    return report
