"""Alternative L1 partitioners: spectral bisection and Newman modularity.

DESIGN.md flags the partitioner as a design choice worth ablating. Both
alternatives here target the same objective family as the greedy
agglomerative default (:mod:`repro.clustering.partition`) from different
angles:

* **recursive spectral bisection** — split at the Fiedler vector of the
  graph Laplacian (balanced minimum-cut flavor), recursing until clusters
  would drop below twice the minimum size;
* **greedy modularity (CNM)** — §IV-A's community detection: merge the
  pair of communities with the best modularity gain until no gain remains,
  then force mergers up to the minimum size.

Both return the same dense node-label arrays as ``partition_node_graph``
and are compared head-to-head in ``benchmarks/bench_ablation_partitioner_
alternatives.py``.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph


def _dense_relabel(labels: np.ndarray) -> np.ndarray:
    order: dict[int, int] = {}
    out = np.empty(labels.size, dtype=np.int64)
    for i, lab in enumerate(labels):
        if lab not in order:
            order[int(lab)] = len(order)
        out[i] = order[int(lab)]
    return out


def spectral_partition(
    graph: CommGraph,
    *,
    min_cluster_nodes: int = 4,
    max_cluster_nodes: int = 4,
) -> np.ndarray:
    """Recursive spectral bisection of the node communication graph.

    Pieces larger than ``max_cluster_nodes`` are split along the Fiedler
    vector (second-smallest eigenvector of the weighted Laplacian) at the
    balanced median, recursively, until every piece fits; every resulting
    piece is guaranteed ≥ ``min_cluster_nodes`` when
    ``max_cluster_nodes >= 2 · min_cluster_nodes - 1`` or the sizes divide
    evenly (the balanced split keeps halves within one node of each other).
    """
    if min_cluster_nodes < 1:
        raise ValueError("min_cluster_nodes must be >= 1")
    n = graph.n
    if min_cluster_nodes > n:
        raise ValueError(f"min_cluster_nodes {min_cluster_nodes} > n {n}")
    cap = max_cluster_nodes
    if cap < min_cluster_nodes:
        raise ValueError("max_cluster_nodes < min_cluster_nodes")
    weights = graph.symmetric().astype(np.float64).copy()
    np.fill_diagonal(weights, 0.0)

    labels = np.zeros(n, dtype=np.int64)
    next_label = 1
    work = [np.arange(n)]
    while work:
        indices = work.pop()
        if indices.size <= cap:
            continue
        sub = weights[np.ix_(indices, indices)]
        degree = sub.sum(axis=0)
        half = indices.size // 2
        if degree.sum() == 0:
            order = np.arange(indices.size)
        else:
            laplacian = np.diag(degree) - sub
            _, eigvecs = np.linalg.eigh(laplacian)
            order = np.argsort(eigvecs[:, 1], kind="stable")
        left = indices[order[:half]]
        right = indices[order[half:]]
        labels[right] = next_label
        next_label += 1
        work.append(left)
        work.append(right)

    labels = _dense_relabel(labels)
    sizes = np.bincount(labels)
    if (sizes < min_cluster_nodes).any():
        return _force_min_size(labels, min_cluster_nodes, cap, graph=graph)
    return labels


def modularity_partition(
    graph: CommGraph,
    *,
    min_cluster_nodes: int = 1,
    max_cluster_nodes: int | None = None,
) -> np.ndarray:
    """Greedy modularity maximization (Clauset–Newman–Moore flavor).

    §IV-A's segregation procedure: start from singletons, repeatedly merge
    the community pair with the largest modularity gain; stop when no merge
    improves Q (then force mergers to satisfy ``min_cluster_nodes``).
    """
    n = graph.n
    if min_cluster_nodes > n:
        raise ValueError(f"min_cluster_nodes {min_cluster_nodes} > n {n}")
    cap = max_cluster_nodes if max_cluster_nodes is not None else n
    # Full symmetric adjacency A; m2 = Σ A = 2m in Newman's notation.
    adj = graph.symmetric().astype(np.float64).copy()
    np.fill_diagonal(adj, 0.0)
    m2 = adj.sum()
    labels = np.arange(n, dtype=np.int64)
    if m2 == 0:
        return _force_min_size(labels, min_cluster_nodes, cap)

    # Community-level weights and degree sums.
    e = adj.copy()  # e[c1, c2]: adjacency weight between communities
    k = adj.sum(axis=0)  # degree sum per community
    sizes = np.ones(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)

    while alive.sum() > 1:
        best_gain, best_pair = 0.0, None
        alive_ids = np.flatnonzero(alive)
        for i_pos, c1 in enumerate(alive_ids):
            for c2 in alive_ids[i_pos + 1 :]:
                if sizes[c1] + sizes[c2] > cap:
                    continue
                # Standard CNM delta-Q for merging communities c1, c2.
                gain = 2.0 * (e[c1, c2] / m2 - (k[c1] * k[c2]) / (m2 * m2))
                if gain > best_gain + 1e-15:
                    best_gain, best_pair = gain, (c1, c2)
        if best_pair is None:
            break
        c1, c2 = best_pair
        e[c1, :] += e[c2, :]
        e[:, c1] += e[:, c2]
        e[c1, c1] = 0.0
        e[c2, :] = 0.0
        e[:, c2] = 0.0
        k[c1] += k[c2]
        sizes[c1] += sizes[c2]
        alive[c2] = False
        labels[labels == c2] = c1

    labels = _dense_relabel(labels)
    return _force_min_size(labels, min_cluster_nodes, cap, graph=graph)


def _force_min_size(
    labels: np.ndarray,
    min_size: int,
    cap: int,
    *,
    graph: CommGraph | None = None,
) -> np.ndarray:
    """Merge undersized clusters into their best-connected neighbors."""
    labels = labels.copy()
    while True:
        sizes = np.bincount(labels)
        small = [c for c in range(sizes.size) if 0 < sizes[c] < min_size]
        if not small:
            break
        c = small[0]
        members = np.flatnonzero(labels == c)
        candidates = [
            d
            for d in range(sizes.size)
            if d != c and sizes[d] > 0 and sizes[d] + sizes[c] <= cap
        ]
        if not candidates:
            raise ValueError(
                f"cannot satisfy min size {min_size} under cap {cap}"
            )
        if graph is not None:
            sym = graph.symmetric()
            weight_to = {
                d: sym[np.ix_(members, np.flatnonzero(labels == d))].sum()
                for d in candidates
            }
            target = max(candidates, key=lambda d: (weight_to[d], -d))
        else:
            target = candidates[0]
        labels[members] = target
    return _dense_relabel(labels)
