"""The paper's three flat clustering strategies (§III-A..C).

* **naïve** — clusters of consecutive ranks sized to optimize the
  logging/recovery trade-off alone (sweet spot: 32, Fig. 3a);
* **size-guided** — the same consecutive-rank construction at the size that
  also keeps encoding fast (8, Fig. 3b);
* **distributed** — every member of a cluster on a different node, the
  erasure-code-friendly layout of Fig. 1.

All three use one cluster set for containment and encoding alike; their
failures along one dimension or another are what motivates the hierarchical
scheme (:mod:`repro.clustering.hierarchical`).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clustering
from repro.machine.placement import Placement


def consecutive_clustering(
    n: int, cluster_size: int, *, name: str | None = None
) -> Clustering:
    """Clusters of ``cluster_size`` consecutive process ranks.

    "each cluster gathers a set of consecutive process ranks" (§III-A).
    ``n`` need not divide evenly; the last cluster absorbs the remainder's
    worth of processes (sizes never exceed ``cluster_size``).
    """
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    labels = np.arange(n) // cluster_size
    return Clustering(name or f"consecutive-{cluster_size}", labels)


def naive_clustering(n: int, cluster_size: int = 32) -> Clustering:
    """§III-A naïve clustering: consecutive ranks, default sweet-spot size 32."""
    return consecutive_clustering(n, cluster_size, name=f"naive-{cluster_size}")


def size_guided_clustering(n: int, cluster_size: int = 8) -> Clustering:
    """§III-B size-guided clustering: consecutive ranks sized for encoding
    speed as well (default 8: 13 % logged, 1 GB in ~51 s)."""
    return consecutive_clustering(n, cluster_size, name=f"size-guided-{cluster_size}")


def distributed_clustering(
    placement: Placement, cluster_size: int, *, name: str | None = None
) -> Clustering:
    """§III-C distributed clustering: cluster members on pairwise-distinct nodes.

    Nodes are taken in bands of ``cluster_size`` consecutive nodes; within a
    band, the *i*-th process of each node forms cluster *i* of that band
    (Fig. 1's striping, applied machine-wide). Every cluster has exactly
    ``cluster_size`` members on ``cluster_size`` different nodes, which is
    what erasure codes need — and what destroys locality for the logging and
    recovery dimensions (Fig. 4b/4c).

    Requires ``cluster_size`` to divide the node count so bands are exact.
    """
    nnodes, ppn = placement.nnodes, placement.procs_per_node
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
    if cluster_size > nnodes:
        raise ValueError(
            f"distributed clusters of {cluster_size} need at least that many "
            f"nodes, machine has {nnodes}"
        )
    if nnodes % cluster_size:
        raise ValueError(
            f"cluster_size {cluster_size} must divide node count {nnodes}"
        )
    labels = np.empty(placement.nranks, dtype=np.int64)
    clusters_per_band = ppn
    for node in range(nnodes):
        band = node // cluster_size
        for slot, rank in enumerate(placement.ranks_of_node(node)):
            labels[rank] = band * clusters_per_band + slot
    return Clustering(name or f"distributed-{cluster_size}", labels)
