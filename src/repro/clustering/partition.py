"""Node-graph partitioner with the cost function of Ropars et al. [24].

§IV-B builds L1 clusters by applying "the partitioning algorithm and cost
function presented in [24] over the node-based communication graph". [24]
trades the volume of logged messages against the number of processes to
roll back; we implement that trade-off as

    J(P) = w_log · L(P) + w_rb · R(P)

where ``L`` is the fraction of traffic crossing cluster boundaries (what
must be logged) and ``R = Σ_c (|c|/N)²`` is the expected fraction of the
system rolled back by a uniformly random node failure (the failing cluster
restarts in full). Small clusters drive ``L`` up; large clusters drive
``R`` up.

The optimizer is greedy agglomerative merging (start from singleton nodes,
repeatedly apply the best-improving merge) followed by a boundary-refinement
pass (move single nodes between neighboring clusters while it helps) —
the standard heuristic family for this NP-hard problem, deterministic and
fast at the paper's scales (64–128 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.commgraph.graph import CommGraph


@dataclass(frozen=True)
class PartitionCost:
    """Weights of the two terms of the [24]-style objective."""

    w_logging: float = 1.0
    w_restart: float = 1.0

    def evaluate(self, graph: CommGraph, labels: np.ndarray) -> float:
        """Objective value of a complete assignment (used by tests/refine)."""
        labels = np.asarray(labels)
        n = graph.n
        logged = graph.logged_fraction(labels)
        sizes = np.bincount(labels)
        restart = float(((sizes / n) ** 2).sum())
        return self.w_logging * logged + self.w_restart * restart


class _MergeState:
    """Incremental bookkeeping for greedy agglomeration."""

    def __init__(self, graph: CommGraph, cost: PartitionCost):
        self.n = graph.n
        self.cost = cost
        sym = graph.symmetric().astype(np.float64).copy()
        np.fill_diagonal(sym, 0.0)
        # Total undirected weight; the logged fraction of a partition is
        # cut/total in this symmetric accounting (same ratio as directed).
        self.total = float(sym.sum())
        self.weights = sym  # inter-cluster weights, updated in place
        self.sizes = np.ones(self.n, dtype=np.int64)
        self.alive = np.ones(self.n, dtype=bool)
        self.member_of = np.arange(self.n)

    def merge_gain(self, a: int, b: int) -> float:
        """Change of J when merging clusters a and b (negative = better)."""
        d_logged = (
            -2.0 * self.weights[a, b] / self.total if self.total > 0 else 0.0
        )
        sa, sb = self.sizes[a], self.sizes[b]
        d_restart = (2.0 * sa * sb) / (self.n * self.n)
        return self.cost.w_logging * d_logged + self.cost.w_restart * d_restart

    def merge(self, a: int, b: int) -> int:
        """Merge cluster ``b`` into ``a``; returns the surviving id."""
        self.weights[a, :] += self.weights[b, :]
        self.weights[:, a] += self.weights[:, b]
        self.weights[a, a] = 0.0
        self.weights[b, :] = 0.0
        self.weights[:, b] = 0.0
        self.sizes[a] += self.sizes[b]
        self.sizes[b] = 0
        self.alive[b] = False
        self.member_of[self.member_of == b] = a
        return a

    def labels(self) -> np.ndarray:
        """Dense cluster labels ordered by each cluster's first node."""
        _, dense = np.unique(self.member_of, return_inverse=True)
        # np.unique sorts by cluster id; re-map so labels follow the first
        # occurrence order (deterministic, node-order aligned).
        order: dict[int, int] = {}
        out = np.empty(self.n, dtype=np.int64)
        for i, d in enumerate(dense):
            if d not in order:
                order[d] = len(order)
            out[i] = order[d]
        return out


def partition_node_graph(
    graph: CommGraph,
    *,
    min_cluster_nodes: int = 4,
    max_cluster_nodes: int | None = None,
    cost: PartitionCost | None = None,
    refine: bool = True,
) -> np.ndarray:
    """Partition a node communication graph; returns per-node cluster labels.

    Parameters
    ----------
    min_cluster_nodes:
        Hard floor on cluster size (§IV-B sets it to 4 so L2 striping has
        enough nodes for failure distribution).
    max_cluster_nodes:
        Optional hard cap.
    cost:
        Objective weights; default equal weighting.
    refine:
        Run the boundary-move refinement pass after agglomeration.
    """
    n = graph.n
    if min_cluster_nodes < 1:
        raise ValueError(f"min_cluster_nodes must be >= 1, got {min_cluster_nodes}")
    if max_cluster_nodes is not None:
        if max_cluster_nodes < min_cluster_nodes:
            raise ValueError("max_cluster_nodes < min_cluster_nodes")
        if max_cluster_nodes > n:
            max_cluster_nodes = n
    if min_cluster_nodes > n:
        raise ValueError(
            f"min_cluster_nodes {min_cluster_nodes} exceeds node count {n}"
        )
    cost = cost or PartitionCost()
    state = _MergeState(graph, cost)
    cap = max_cluster_nodes if max_cluster_nodes is not None else n

    while True:
        alive = np.flatnonzero(state.alive)
        if alive.size == 1:
            break
        undersized = [c for c in alive if state.sizes[c] < min_cluster_nodes]
        best: tuple[float, int, int] | None = None
        # When some cluster is below the floor, only merges fixing that are
        # admissible (and one will be forced even at positive cost).
        candidates_a = undersized if undersized else alive
        for a in candidates_a:
            for b in alive:
                if b == a:
                    continue
                if state.sizes[a] + state.sizes[b] > cap:
                    continue
                gain = state.merge_gain(min(a, b), max(a, b))
                key = (gain, min(a, b), max(a, b))
                if best is None or key < best:
                    best = key
        if best is None:
            if undersized:
                raise ValueError(
                    f"cannot satisfy min_cluster_nodes={min_cluster_nodes} "
                    f"with max_cluster_nodes={max_cluster_nodes}"
                )
            break
        gain, a, b = best
        if gain >= 0 and not undersized:
            break
        state.merge(a, b)

    labels = state.labels()
    if refine:
        labels = _refine(graph, labels, cost, min_cluster_nodes, cap)
    return labels


def _refine(
    graph: CommGraph,
    labels: np.ndarray,
    cost: PartitionCost,
    min_size: int,
    max_size: int,
) -> np.ndarray:
    """Greedy single-node moves between clusters while the objective improves."""
    labels = labels.copy()
    n = graph.n
    sym = graph.symmetric().astype(np.float64).copy()
    np.fill_diagonal(sym, 0.0)
    total = float(sym.sum())
    sizes = np.bincount(labels).astype(np.int64)
    k = sizes.size

    improved = True
    sweeps = 0
    while improved and sweeps < 10:
        improved = False
        sweeps += 1
        for v in range(n):
            src = labels[v]
            if sizes[src] <= min_size:
                continue
            # Weight of v toward each cluster.
            w_to = np.zeros(k)
            np.add.at(w_to, labels, sym[v])
            best_gain, best_dst = 0.0, -1
            for dst in range(k):
                if dst == src or sizes[dst] + 1 > max_size or sizes[dst] == 0:
                    continue
                d_logged = (
                    2.0 * (w_to[src] - w_to[dst]) / total if total > 0 else 0.0
                )
                d_restart = (
                    2.0 * (sizes[dst] - sizes[src] + 1.0) / (n * n)
                )
                gain = cost.w_logging * d_logged + cost.w_restart * d_restart
                if gain < best_gain - 1e-15:
                    best_gain, best_dst = gain, dst
            if best_dst >= 0:
                sizes[src] -= 1
                sizes[best_dst] += 1
                labels[v] = best_dst
                improved = True
    # Re-densify in first-occurrence order (moves may empty a cluster).
    order: dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    for i, lab in enumerate(labels):
        if lab not in order:
            order[lab] = len(order)
        out[i] = order[lab]
    return out
