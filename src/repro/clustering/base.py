"""Clustering representation shared by all four strategies.

A :class:`Clustering` assigns every application process to

* an **L1 cluster** — the failure-containment unit: checkpoints are
  coordinated inside it, messages leaving it are logged, and a failure of
  any member rolls the whole cluster back; and
* an **L2 cluster** — the erasure-encoding unit: its members checkpoint
  together and their checkpoint data is Reed–Solomon-encoded across them.

The paper's flat strategies (naïve, size-guided, distributed) use the same
clusters for both roles ("we use the same clustering for both", §III); the
hierarchical strategy nests small L2 clusters inside large L1 clusters
(§IV-B). Nesting — every L2 cluster fully contained in one L1 cluster — is
an invariant validated at construction, because members of an encoding
cluster must checkpoint and restart together (§III).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import ClassVar

import numpy as np


def _normalize_labels(labels: np.ndarray, what: str) -> np.ndarray:
    """Validate and densify a label vector (ids become 0 … k-1, stable order)."""
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.size == 0:
        raise ValueError(f"{what} labels must be a non-empty 1-D array")
    if not np.issubdtype(labels.dtype, np.integer):
        raise ValueError(f"{what} labels must be integers, got {labels.dtype}")
    if (labels < 0).any():
        raise ValueError(f"{what} labels must be non-negative")
    uniq, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)


@dataclass(frozen=True)
class Clustering:
    """Two-level cluster assignment over ``n`` application processes."""

    name: str
    l1_labels: np.ndarray
    l2_labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        l1 = _normalize_labels(self.l1_labels, "L1")
        object.__setattr__(self, "l1_labels", l1)
        if self.l2_labels is None:
            object.__setattr__(self, "l2_labels", l1.copy())
        else:
            l2 = _normalize_labels(self.l2_labels, "L2")
            if l2.shape != l1.shape:
                raise ValueError(
                    f"L2 labels cover {l2.size} processes, L1 covers {l1.size}"
                )
            object.__setattr__(self, "l2_labels", l2)
            self._check_nesting()
        # Memoization slot for derived lookup structures (sizes, label
        # matrices, per-placement evaluation tables). The labels are frozen,
        # so anything derived from them can be computed exactly once.
        object.__setattr__(self, "_derived", OrderedDict())

    def _check_nesting(self) -> None:
        """Every L2 cluster must live inside exactly one L1 cluster."""
        pairs = np.unique(
            np.stack([self.l2_labels, self.l1_labels], axis=0), axis=1
        )
        owners_per_l2 = np.bincount(pairs[0], minlength=self.n_l2_clusters)
        split = np.flatnonzero(owners_per_l2 > 1)
        if split.size:
            l2_id = int(split[0])
            owners = pairs[1, pairs[0] == l2_id]
            raise ValueError(
                f"L2 cluster {l2_id} spans L1 clusters {owners.tolist()}: "
                "encoding clusters must checkpoint/restart as one unit"
            )

    # -- derived-structure cache ---------------------------------------------

    #: Bound on memoized derived structures per clustering. Each placement
    #: (× tolerance) pairing contributes a table set, so a sweep pairing one
    #: long-lived clustering with very many placements stays at a bounded
    #: footprint: least-recently-used table sets are evicted and rebuilt on
    #: demand (building is microseconds at paper scale). ``ClassVar`` keeps
    #: it out of the dataclass fields (it is not a constructor parameter).
    CACHE_LIMIT: ClassVar[int] = 64

    def cached(self, key, build):
        """Memoize ``build()`` under ``key``, LRU-bounded by ``CACHE_LIMIT``.

        The hook the evaluation tables (:mod:`repro.core.tables`) use to
        attach per-(clustering, placement) lookup structures; cached values
        must be treated as read-only by every consumer. A hit refreshes the
        entry's recency; once more than ``CACHE_LIMIT`` entries accumulate,
        the least recently used are dropped (and simply rebuilt if asked
        for again).
        """
        cache = self._derived
        try:
            value = cache[key]
        except KeyError:
            value = build()
            cache[key] = value
            while len(cache) > self.CACHE_LIMIT:
                cache.popitem(last=False)
            return value
        cache.move_to_end(key)
        return value

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        """Ship labels, not caches: derived tables hold placement references
        and can dwarf the labels; workers rebuild what they touch."""
        state = dict(self.__dict__)
        state["_derived"] = OrderedDict()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- shape ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes covered."""
        return self.l1_labels.size

    @property
    def n_l1_clusters(self) -> int:
        """Number of L1 (containment) clusters."""
        return int(self.l1_labels.max()) + 1

    @property
    def n_l2_clusters(self) -> int:
        """Number of L2 (encoding) clusters."""
        return int(self.l2_labels.max()) + 1

    @property
    def is_hierarchical(self) -> bool:
        """True when L2 is a strict refinement of L1."""
        return self.n_l2_clusters > self.n_l1_clusters

    # -- membership ----------------------------------------------------------

    def l1_members(self, cluster: int) -> np.ndarray:
        """Process indices of L1 cluster ``cluster``."""
        self._check_cluster(cluster, self.n_l1_clusters)
        return np.flatnonzero(self.l1_labels == cluster)

    def l2_members(self, cluster: int) -> np.ndarray:
        """Process indices of L2 cluster ``cluster``."""
        self._check_cluster(cluster, self.n_l2_clusters)
        return np.flatnonzero(self.l2_labels == cluster)

    def l1_clusters(self) -> list[np.ndarray]:
        """All L1 clusters as member arrays (ordered by cluster id)."""
        return [self.l1_members(c) for c in range(self.n_l1_clusters)]

    def l2_clusters(self) -> list[np.ndarray]:
        """All L2 clusters as member arrays (ordered by cluster id)."""
        return [self.l2_members(c) for c in range(self.n_l2_clusters)]

    def l1_of(self, process: int) -> int:
        """L1 cluster of ``process``."""
        return int(self.l1_labels[self._check_proc(process)])

    def l2_of(self, process: int) -> int:
        """L2 cluster of ``process``."""
        return int(self.l2_labels[self._check_proc(process)])

    def l2_within_l1(self, l1_cluster: int) -> list[int]:
        """L2 cluster ids nested inside ``l1_cluster``."""
        members = self.l1_members(l1_cluster)
        return sorted(int(c) for c in np.unique(self.l2_labels[members]))

    # -- statistics -------------------------------------------------------------

    def l1_sizes(self) -> np.ndarray:
        """Member counts per L1 cluster (cached; treat as read-only)."""
        return self.cached(
            "l1_sizes",
            lambda: np.bincount(self.l1_labels, minlength=self.n_l1_clusters),
        )

    def l2_sizes(self) -> np.ndarray:
        """Member counts per L2 cluster (cached; treat as read-only)."""
        return self.cached(
            "l2_sizes",
            lambda: np.bincount(self.l2_labels, minlength=self.n_l2_clusters),
        )

    def l2_node_spread(self, node_of) -> np.ndarray:
        """Distinct node count per L2 cluster under mapping ``node_of``.

        ``node_of`` maps a process index to its node; the reliability of the
        erasure code is entirely determined by this spread (§II-C1).
        """
        nodes = np.fromiter(
            (node_of(int(p)) for p in range(self.n)), dtype=np.int64, count=self.n
        )
        pairs = np.unique(np.stack([self.l2_labels, nodes], axis=0), axis=1)
        return np.bincount(pairs[0], minlength=self.n_l2_clusters)

    # -- internals -----------------------------------------------------------

    def _check_proc(self, process: int) -> int:
        if not 0 <= process < self.n:
            raise ValueError(f"process {process} out of range [0, {self.n})")
        return process

    @staticmethod
    def _check_cluster(cluster: int, count: int) -> None:
        if not 0 <= cluster < count:
            raise ValueError(f"cluster {cluster} out of range [0, {count})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Clustering({self.name!r}, n={self.n}, "
            f"L1={self.n_l1_clusters}, L2={self.n_l2_clusters})"
        )
