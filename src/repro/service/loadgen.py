"""Load generator + equivalence harness behind ``BENCH_service.json``.

Every benchmark and smoke run follows the same discipline as the rest of
``benchmarks/``: *prove the fast path equals the reference, then time
it*. :func:`verify_equivalence` asserts, for every distinct query in the
mix, that the service's answer is bit-equal to a direct in-process
:func:`repro.core.query.run_query` — and, for the metrics the deprecated
loose-kwarg forms cover, bit-equal to direct ``montecarlo_scores`` /
``expected_waste`` calls. Only then does :func:`run_load` hammer the
server from concurrent threads and record queries/s with p50/p99
latency and the cache hit rate.
"""

from __future__ import annotations

import statistics
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.query import (
    ClusteringSpec,
    MachineSpec,
    ReliabilityQuery,
    run_query,
)
from repro.service.client import ServiceClient
from repro.service.http import ServiceThread


def default_query_mix(
    *,
    nnodes: int = 128,
    procs_per_node: int = 8,
    n_samples: int = 2000,
    seeds: int = 8,
) -> list[ReliabilityQuery]:
    """The benchmark's standing query mix: Monte-Carlo sweeps over the
    paper's strategies (coalescible by table), campaign questions, and a
    deterministic survival curve — the traffic a planning dashboard
    would generate."""
    machine = MachineSpec(
        preset="tsubame2", nnodes=nnodes, procs_per_node=procs_per_node
    )
    strategies = [
        ClusteringSpec(strategy="naive", cluster_size=32),
        ClusteringSpec(strategy="size-guided", cluster_size=8),
        ClusteringSpec(strategy="distributed", cluster_size=16),
        ClusteringSpec(strategy="consecutive", cluster_size=64),
    ]
    mix: list[ReliabilityQuery] = []
    for clustering in strategies:
        for seed in range(seeds):
            mix.append(
                ReliabilityQuery(
                    metric="montecarlo",
                    machine=machine,
                    clustering=clustering,
                    n_samples=n_samples,
                    seed=seed,
                )
            )
    for i, clustering in enumerate(strategies):
        mix.append(
            ReliabilityQuery(
                metric="expected_waste",
                machine=machine,
                clustering=clustering,
                n_campaigns=3,
                seed=100 + i,
            )
        )
        mix.append(
            ReliabilityQuery(
                metric="campaign",
                machine=machine,
                clustering=clustering,
                seed=200 + i,
            )
        )
    mix.append(
        ReliabilityQuery(
            metric="survival", machine=machine, clustering=strategies[0]
        )
    )
    return mix


def sweep_query(
    *, nnodes: int = 128, procs_per_node: int = 8, points: int = 12
) -> ReliabilityQuery:
    """A checkpoint-interval sweep sized for the streaming endpoint."""
    return ReliabilityQuery(
        metric="waste_curve",
        machine=MachineSpec(
            preset="tsubame2", nnodes=nnodes, procs_per_node=procs_per_node
        ),
        clustering=ClusteringSpec(strategy="naive", cluster_size=32),
        sweep=tuple(900.0 * (i + 1) for i in range(points)),
        n_campaigns=2,
        seed=7,
    )


def _legacy_reference(query: ReliabilityQuery):
    """Answer ``query`` through the *deprecated* loose-kwarg entry points
    (warnings suppressed) — the independent pre-redesign path the service must
    reproduce bit for bit. Returns None for metrics the legacy API never
    covered."""
    from repro.core.montecarlo import montecarlo_scores
    from repro.core.scenario import Scenario
    from repro.models.campaign import CampaignSimulator

    machine = query.machine.build()
    clustering = query.clustering.build(machine)
    if query.metric == "montecarlo":
        scenario = Scenario.__new__(Scenario)  # graph-free shell
        object.__setattr__(scenario, "machine", machine)
        object.__setattr__(scenario, "taxonomy", query.taxonomy)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            mc = montecarlo_scores(
                scenario,
                clustering,
                n_samples=query.n_samples,
                rng=query.seed,
            )
        return {
            "restart_fraction_mean": mc.restart_fraction_mean,
            "restart_fraction_p95": mc.restart_fraction_p95,
            "catastrophic_rate": mc.catastrophic_rate,
            "soft_error_share": mc.soft_error_share,
        }
    if query.metric == "expected_waste":
        simulator = CampaignSimulator(
            machine, query.campaign, taxonomy=query.taxonomy
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            waste = simulator.expected_waste(
                clustering, n_campaigns=query.n_campaigns, rng=query.seed
            )
        return {"expected_waste": waste}
    return None


def verify_equivalence(
    client: ServiceClient, queries, *, stream: ReliabilityQuery | None = None
) -> int:
    """Assert the service answers ``queries`` bit-equal to direct calls.

    Three-way check per query: service == in-process ``run_query`` ==
    (where the old API reaches) the deprecated loose-kwarg functions.
    Raises ``AssertionError`` on the first mismatch; returns the number
    of checks performed.
    """
    checks = 0
    for query in queries:
        served = client.query(query)
        direct = run_query(query)
        assert served == direct, (
            f"service diverged from in-process run_query for {query.metric} "
            f"({query.clustering.key()}, seed {query.seed})"
        )
        legacy = _legacy_reference(query)
        if legacy is not None:
            for name, expected in legacy.items():
                got = served.value(name)
                assert got == expected, (
                    f"service {query.metric}.{name}={got!r} != legacy "
                    f"loose-kwarg result {expected!r}"
                )
        checks += 1
    if stream is not None:
        partials, final = client.query_streamed(stream)
        direct = run_query(stream)
        assert final == direct, "streamed final result != in-process run_query"
        flattened = [tuple(point) for chunk in partials for point in chunk]
        assert flattened == list(direct.curve), (
            "streamed partial chunks do not concatenate to the full curve"
        )
        assert len(partials) > 1, (
            f"sweep of {len(stream.sweep)} points arrived in "
            f"{len(partials)} chunk(s); expected a genuine stream"
        )
        checks += 1
    return checks


@dataclass(frozen=True)
class LoadReport:
    """One load-generator run, as recorded into ``BENCH_service.json``."""

    queries: int
    errors: int
    concurrency: int
    workers: int
    seconds: float
    queries_per_s: float
    p50_ms: float
    p99_ms: float
    cache_hit_rate: float
    coalesced: int
    scoring_passes: int

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "errors": self.errors,
            "concurrency": self.concurrency,
            "workers": self.workers,
            "seconds": round(self.seconds, 4),
            "queries_per_s": round(self.queries_per_s, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "coalesced": self.coalesced,
            "scoring_passes": self.scoring_passes,
        }

    def summary(self) -> str:
        return (
            f"{self.queries_per_s:,.0f} queries/s over {self.queries} "
            f"queries ({self.concurrency} clients, {self.workers} workers): "
            f"p50 {self.p50_ms:.1f} ms, p99 {self.p99_ms:.1f} ms, "
            f"cache hit rate {100 * self.cache_hit_rate:.0f}%, "
            f"{self.coalesced} coalesced into {self.scoring_passes} passes"
        )


def run_load(
    host: str,
    port: int,
    queries,
    *,
    concurrency: int = 8,
    repeat: int = 1,
) -> LoadReport:
    """Drive the service from ``concurrency`` threads and measure.

    Each thread owns a client and walks its round-robin slice of the
    (repeated) query list, timing every request wall-clock. Rates come
    from one shared wall-clock window; percentiles from the per-request
    samples; cache/coalescing counters from the server's ``/stats``.
    """
    work = [query for _ in range(repeat) for query in queries]
    slices: list[list[ReliabilityQuery]] = [[] for _ in range(concurrency)]
    for i, query in enumerate(work):
        slices[i % concurrency].append(query)

    def _client_run(batch):
        client = ServiceClient(host, port)
        latencies, errors = [], 0
        for query in batch:
            t0 = time.perf_counter()
            try:
                client.query(query)
            except Exception:  # noqa: BLE001 - counted, not raised
                errors += 1
                continue
            latencies.append(time.perf_counter() - t0)
        return latencies, errors

    stats_client = ServiceClient(host, port)
    before = stats_client.stats()
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        outcomes = list(pool.map(_client_run, slices))
    elapsed = time.perf_counter() - t0
    after = stats_client.stats()

    latencies = sorted(s for lat, _ in outcomes for s in lat)
    errors = sum(e for _, e in outcomes)
    n = len(latencies)
    if not n:
        raise RuntimeError(f"all {len(work)} queries failed")
    p50 = statistics.median(latencies)
    p99 = latencies[min(n - 1, int(0.99 * n))]
    hits = after["cache"]["hits"] - before["cache"]["hits"]
    misses = after["cache"]["misses"] - before["cache"]["misses"]
    return LoadReport(
        queries=n,
        errors=errors,
        concurrency=concurrency,
        workers=after["workers"],
        seconds=elapsed,
        queries_per_s=n / elapsed,
        p50_ms=1e3 * p50,
        p99_ms=1e3 * p99,
        cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
        coalesced=after["coalesced"] - before["coalesced"],
        scoring_passes=after["scoring_passes"] - before["scoring_passes"],
    )


def run_self_test(*, workers: int = 0, verbose: bool = True) -> int:
    """Start a server, drive it, assert equivalence, shut down cleanly.

    The CI service smoke (`python -m repro serve --self-test`): a handful
    of queries across every metric, one streamed sweep, three-way
    bit-equality (service == run_query == deprecated direct calls), and a
    short concurrent burst to confirm batching/caching engage. Returns 0
    on success.
    """
    mix = default_query_mix(n_samples=500, seeds=2)
    stream = sweep_query(points=6)
    with ServiceThread(workers=workers) as running:
        client = ServiceClient(running.host, running.port)
        assert client.healthz().get("ok") is True
        checks = verify_equivalence(client, mix, stream=stream)
        report = run_load(
            running.host, running.port, mix, concurrency=4, repeat=2
        )
        if report.errors:
            raise AssertionError(f"{report.errors} queries failed under load")
        stats = client.stats()
        if verbose:
            print(
                f"self-test ok: {checks} equivalence checks "
                f"(workers={workers})"
            )
            print(f"load: {report.summary()}")
            print(
                f"dispatcher: {stats['dispatcher']['batches']} batches, "
                f"largest {stats['dispatcher']['largest_batch']}"
            )
    return 0
