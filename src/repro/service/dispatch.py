"""Micro-batching dispatcher: concurrent requests share scoring passes.

Requests enqueue ``(query, future)`` pairs; a single drain task pulls
everything queued, hands it to the engine as one batch (off the event
loop, in an executor thread), and resolves the futures. While a batch is
scoring, new arrivals pile up in the queue — so under concurrency the
next batch is automatically larger, and same-table Monte-Carlo queries
inside it coalesce into one vectorized pass
(:func:`repro.core.query.run_query_batch`). Under light load a query
simply rides alone: micro-batching adds no artificial delay.
"""

from __future__ import annotations

import asyncio
from collections import deque
from functools import partial

from repro.service.engine import QueryEngine

#: Upper bound on one micro-batch (keeps worst-case latency of a single
#: drain bounded under a flood; the remainder goes to the next batch).
DEFAULT_MAX_BATCH = 256


class Dispatcher:
    """Funnels concurrent ``submit`` calls into engine micro-batches."""

    def __init__(self, engine: QueryEngine, *, max_batch: int = DEFAULT_MAX_BATCH):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.max_batch = max_batch
        self._pending: deque = deque()
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self.batches = 0
        self.largest_batch = 0

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for _, future in self._pending:
            if not future.done():
                future.cancel()
        self._pending.clear()

    async def submit(self, query):
        """Queue one query; resolves to its :class:`QueryResult` (or
        raises the query's error)."""
        if self._task is None:
            raise RuntimeError("dispatcher is not running")
        future = asyncio.get_running_loop().create_future()
        self._pending.append((query, future))
        self._wakeup.set()
        return await future

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._pending:
                items = []
                while self._pending and len(items) < self.max_batch:
                    items.append(self._pending.popleft())
                self.batches += 1
                self.largest_batch = max(self.largest_batch, len(items))
                queries = [query for query, _ in items]
                try:
                    results = await loop.run_in_executor(
                        None,
                        partial(
                            self.engine.execute,
                            queries,
                            return_exceptions=True,
                        ),
                    )
                except Exception as err:  # noqa: BLE001 - engine-wide failure
                    results = [err] * len(items)
                for (_, future), result in zip(items, results):
                    if future.cancelled():
                        continue
                    if isinstance(result, Exception):
                        future.set_exception(result)
                    else:
                        future.set_result(result)

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "pending": len(self._pending),
        }
