"""Blocking HTTP client for the reliability service (stdlib only).

One short-lived connection per request — the service closes connections
after each response, which keeps both ends trivially correct; on
localhost the setup cost is well under the scoring cost of any real
query. The streaming endpoint is consumed line by line
(:mod:`http.client` de-chunks transparently).
"""

from __future__ import annotations

import http.client
import json

from repro.core.query import QueryResult, ReliabilityQuery


class ServiceError(RuntimeError):
    """Non-200 response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talks :class:`ReliabilityQuery` JSON to a running service."""

    def __init__(self, host: str, port: int, *, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _get(self, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            payload = json.loads(resp.read() or b"{}")
            if resp.status != 200:
                raise ServiceError(resp.status, payload.get("error", "?"))
            return payload
        finally:
            conn.close()

    def healthz(self) -> dict:
        return self._get("/healthz")

    def stats(self) -> dict:
        return self._get("/stats")

    def query(self, query: ReliabilityQuery) -> QueryResult:
        """POST one query, return its result (raises :class:`ServiceError`
        with the server's message on rejection)."""
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/query",
                body=query.to_json(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read() or b"{}")
            if resp.status != 200:
                raise ServiceError(resp.status, payload.get("error", "?"))
            return QueryResult.from_dict(payload)
        finally:
            conn.close()

    def query_stream(self, query: ReliabilityQuery):
        """POST to ``/query/stream``; yield each JSON line as a dict.

        Partials arrive as ``{"curve": [...]}``, the final message as
        ``{"result": {...}}`` (or ``{"error": ...}``, raised here).
        """
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/query/stream",
                body=query.to_json(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                payload = json.loads(resp.read() or b"{}")
                raise ServiceError(resp.status, payload.get("error", "?"))
            while True:
                line = resp.readline()
                if not line:
                    break
                message = json.loads(line)
                if "error" in message:
                    raise ServiceError(500, message["error"])
                yield message
        finally:
            conn.close()

    def query_streamed(
        self, query: ReliabilityQuery
    ) -> tuple[list[list], QueryResult]:
        """Consume a stream fully: (partial curve chunks, final result)."""
        partials: list[list] = []
        final: QueryResult | None = None
        for message in self.query_stream(query):
            if "curve" in message:
                partials.append(message["curve"])
            if "result" in message:
                final = QueryResult.from_dict(message["result"])
        if final is None:
            raise ServiceError(500, "stream ended without a final result")
        return partials, final
