"""Query execution engine: sharded table cache across a worker pool.

``workers=0`` answers queries on the calling thread against one
:class:`~repro.service.cache.TableCache`. ``workers=N`` spawns ``N``
long-lived worker processes (same duplex-pipe idiom as the sharded trace
engine, :mod:`repro.simmpi.shard`), each owning one cache shard. A query
is routed to shard ``crc32(table_key) % N`` — a *cross-process-stable*
hash (Python's ``hash()`` is salted per process), so every query against
one table configuration lands on the same worker and the table is built
exactly once pool-wide.

Results are invariant to the worker count by construction: workers run
the very same :func:`repro.core.query.run_query_batch` the in-process
path runs, queries carry their own integer seeds, and coalescing is
bit-exact — so ``workers=0/1/4`` return identical results (asserted by
the service tests).
"""

from __future__ import annotations

import multiprocessing as mp
import zlib
from threading import Lock

from repro.core.query import BatchStats, ReliabilityQuery, run_query_batch
from repro.service.cache import DEFAULT_CACHE_BYTES, TableCache


def _shard_of(query: ReliabilityQuery, shards: int) -> int:
    """Deterministic, process-stable shard routing by table identity."""
    return zlib.crc32(query.table_key().encode()) % shards


def _worker_main(conn, cache_bytes: int) -> None:
    """Worker-process loop: one cache shard behind one pipe."""
    cache = TableCache(max_bytes=cache_bytes)
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "batch":
                indices, queries = zip(*msg[1])
                results, stats = run_query_batch(
                    list(queries), resolver=cache.get, return_exceptions=True
                )
                # Exceptions travel as markers: tracebacks of arbitrary
                # model errors may not pickle, their messages always do.
                payload = [
                    (i, ("error", f"{type(r).__name__}: {r}"))
                    if isinstance(r, Exception)
                    else (i, ("ok", r))
                    for i, r in zip(indices, results)
                ]
                conn.send(("ok", (payload, stats, cache.stats())))
            elif op == "stats":
                conn.send(("ok", cache.stats()))
            elif op == "stop":
                return
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass


class QueryError(RuntimeError):
    """A query failed inside a worker (message-only; workers survive)."""


class QueryEngine:
    """Executes query batches against the sharded table cache."""

    def __init__(
        self,
        *,
        workers: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.cache_bytes = cache_bytes
        self._lock = Lock()
        self._closed = False
        self.batches = 0
        self.queries = 0
        self.scoring_passes = 0
        self.coalesced = 0
        self._cache = None
        self._conns: list = []
        self._procs: list = []
        self._worker_cache_stats: list[dict] = []
        if workers == 0:
            self._cache = TableCache(max_bytes=cache_bytes)
        else:
            ctx = mp.get_context()
            for _ in range(workers):
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main, args=(child, cache_bytes), daemon=True
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            self._worker_cache_stats = [
                {"entries": 0, "bytes": 0, "hits": 0, "misses": 0,
                 "evictions": 0, "max_bytes": cache_bytes}
                for _ in range(workers)
            ]

    # -- execution ---------------------------------------------------------

    def execute(self, queries, *, return_exceptions: bool = False) -> list:
        """Answer ``queries`` (one micro-batch), preserving input order.

        With ``return_exceptions`` a failed query yields an exception
        object in its slot instead of aborting the batch — the dispatcher
        maps those onto per-request HTTP errors.
        """
        queries = list(queries)
        if not queries:
            return []
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self.batches += 1
            if self.workers == 0:
                results, stats = run_query_batch(
                    queries,
                    resolver=self._cache.get,
                    return_exceptions=return_exceptions,
                )
                self._account(stats)
            else:
                results = self._execute_sharded(queries)
            if not return_exceptions:
                for result in results:
                    if isinstance(result, Exception):
                        raise result
            return results

    def _execute_sharded(self, queries) -> list:
        by_shard: dict[int, list[int]] = {}
        for i, query in enumerate(queries):
            by_shard.setdefault(_shard_of(query, self.workers), []).append(i)
        # Fan the shard batches out before gathering any reply: shards
        # score their slices concurrently.
        for shard, indices in by_shard.items():
            self._conns[shard].send(
                ("batch", [(i, queries[i]) for i in indices])
            )
        results: list = [None] * len(queries)
        for shard in by_shard:
            status, payload = self._conns[shard].recv()
            if status != "ok":  # pragma: no cover - worker-internal bug
                raise RuntimeError(f"worker {shard} failed: {payload}")
            entries, stats, cache_stats = payload
            self._account(stats)
            self._worker_cache_stats[shard] = cache_stats
            for i, (kind, value) in entries:
                results[i] = QueryError(value) if kind == "error" else value
        return results

    def _account(self, stats: BatchStats) -> None:
        self.queries += stats.queries
        self.scoring_passes += stats.scoring_passes
        self.coalesced += stats.coalesced

    # -- stats / lifecycle -------------------------------------------------

    def cache_stats(self) -> dict:
        """Aggregated cache counters across all shards."""
        if self.workers == 0:
            shards = [self._cache.stats()]
        else:
            shards = list(self._worker_cache_stats)
        total = {
            key: sum(s[key] for s in shards)
            for key in ("entries", "bytes", "hits", "misses", "evictions")
        }
        total["shards"] = max(1, self.workers)
        return total

    def stats(self) -> dict:
        cache = self.cache_stats()
        lookups = cache["hits"] + cache["misses"]
        return {
            "workers": self.workers,
            "batches": self.batches,
            "queries": self.queries,
            "scoring_passes": self.scoring_passes,
            "coalesced": self.coalesced,
            "cache": cache,
            "cache_hit_rate": cache["hits"] / lookups if lookups else 0.0,
        }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                    conn.close()
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            for proc in self._procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
