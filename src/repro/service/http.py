"""Asyncio HTTP front end of the reliability-planning service.

A deliberately minimal HTTP/1.1 layer on ``asyncio`` streams — request
line, headers, ``Content-Length`` body, one request per connection — so
the service carries no framework dependency. The wire format *is* the
query API: request bodies are :meth:`ReliabilityQuery.to_json` payloads,
responses are :meth:`QueryResult.to_dict` JSON.

Routes:

* ``GET /healthz`` — liveness;
* ``GET /stats`` — engine / dispatcher / cache counters;
* ``POST /query`` — one query, one JSON result;
* ``POST /query/stream`` — survival / waste-curve sweeps answered as a
  chunked (``Transfer-Encoding: chunked``) stream of JSON lines: one
  ``{"curve": [...]}`` partial per completed chunk of the sweep, then a
  final ``{"result": {...}}`` that is bit-identical to what ``/query``
  would have returned (curve points are seed-independent per point, so
  chunking cannot change them).
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import replace

from repro.core.query import (
    ReliabilityQuery,
    STREAMABLE_METRICS,
    assemble_streamed,
)
from repro.service.cache import DEFAULT_CACHE_BYTES
from repro.service.dispatch import DEFAULT_MAX_BATCH, Dispatcher
from repro.service.engine import QueryEngine, QueryError

#: Sweep points scored per streamed chunk.
DEFAULT_STREAM_CHUNK = 4

_MAX_BODY = 16 << 20  # queries with explicit 10k-rank label vectors fit


def _response(status: int, reason: str, payload: dict) -> bytes:
    body = (json.dumps(payload) + "\n").encode()
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


def _chunk(payload: dict) -> bytes:
    body = (json.dumps(payload) + "\n").encode()
    return f"{len(body):x}\r\n".encode() + body + b"\r\n"


class ReliabilityService:
    """The long-running service: engine + dispatcher + HTTP server."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_batch: int = DEFAULT_MAX_BATCH,
        stream_chunk: int = DEFAULT_STREAM_CHUNK,
    ):
        if stream_chunk < 1:
            raise ValueError(f"stream_chunk must be >= 1, got {stream_chunk}")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_bytes = cache_bytes
        self.max_batch = max_batch
        self.stream_chunk = stream_chunk
        self.engine: QueryEngine | None = None
        self.dispatcher: Dispatcher | None = None
        self._server: asyncio.AbstractServer | None = None
        self.requests = 0
        self.streamed = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self.engine = QueryEngine(
            workers=self.workers, cache_bytes=self.cache_bytes
        )
        self.dispatcher = Dispatcher(self.engine, max_batch=self.max_batch)
        await self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.dispatcher is not None:
            await self.dispatcher.stop()
            self.dispatcher = None
        if self.engine is not None:
            self.engine.close()
            self.engine = None

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "streamed": self.streamed,
            "dispatcher": self.dispatcher.stats() if self.dispatcher else {},
            **(self.engine.stats() if self.engine else {}),
        }

    # -- request handling -------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            await self._handle_inner(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):  # pragma: no cover - client went away mid-request
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_inner(self, reader, writer) -> None:
        request_line = await reader.readline()
        if not request_line.strip():
            return
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            writer.write(_response(400, "Bad Request", {"error": "bad request line"}))
            return
        method, path = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            writer.write(
                _response(413, "Payload Too Large", {"error": "body too large"})
            )
            return
        body = await reader.readexactly(length) if length else b""

        self.requests += 1
        if method == "GET" and path == "/healthz":
            writer.write(_response(200, "OK", {"ok": True}))
        elif method == "GET" and path == "/stats":
            writer.write(_response(200, "OK", self.stats()))
        elif method == "POST" and path == "/query":
            await self._handle_query(writer, body)
        elif method == "POST" and path == "/query/stream":
            await self._handle_stream(writer, body)
        else:
            writer.write(
                _response(404, "Not Found", {"error": f"no route {method} {path}"})
            )
        await writer.drain()

    def _parse(self, body: bytes) -> ReliabilityQuery:
        return ReliabilityQuery.from_json(body)

    async def _handle_query(self, writer, body: bytes) -> None:
        try:
            query = self._parse(body)
        except ValueError as err:
            writer.write(_response(400, "Bad Request", {"error": str(err)}))
            return
        try:
            result = await self.dispatcher.submit(query)
        except (ValueError, QueryError) as err:
            writer.write(_response(400, "Bad Request", {"error": str(err)}))
            return
        except Exception as err:  # noqa: BLE001 - surface, don't crash
            writer.write(
                _response(500, "Internal Server Error", {"error": str(err)})
            )
            return
        writer.write(_response(200, "OK", result.to_dict()))

    async def _handle_stream(self, writer, body: bytes) -> None:
        try:
            query = self._parse(body)
            if query.metric not in STREAMABLE_METRICS:
                raise ValueError(
                    f"metric {query.metric!r} does not stream "
                    f"(streamable: {STREAMABLE_METRICS})"
                )
        except ValueError as err:
            writer.write(_response(400, "Bad Request", {"error": str(err)}))
            return
        self.streamed += 1
        sweep = query.sweep
        if not sweep:  # survival defaults to 1..max_simultaneous
            sweep = tuple(
                float(f)
                for f in range(1, query.taxonomy.max_simultaneous + 1)
            )
        chunks = [
            sweep[i : i + self.stream_chunk]
            for i in range(0, len(sweep), self.stream_chunk)
        ]
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        parts = []
        try:
            for piece in chunks:
                part = await self.dispatcher.submit(
                    replace(query, sweep=piece)
                )
                parts.append(part)
                writer.write(
                    _chunk({"curve": [[x, y] for x, y in part.curve]})
                )
                await writer.drain()
        except Exception as err:  # noqa: BLE001 - mid-stream failure
            writer.write(_chunk({"error": str(err)}))
            writer.write(b"0\r\n\r\n")
            return
        final = assemble_streamed(replace(query, sweep=sweep), parts)
        writer.write(_chunk({"result": final.to_dict()}))
        writer.write(b"0\r\n\r\n")


class ServiceThread:
    """A running service on a background thread (its own event loop).

    The synchronous world's handle on the async service: benchmarks,
    tests and the CLI self-test enter the context, talk to
    ``self.host:self.port`` with the blocking
    :class:`~repro.service.client.ServiceClient`, and leave.
    """

    def __init__(self, **service_kwargs):
        self._kwargs = service_kwargs
        self.service: ReliabilityService | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="reliability-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=60):  # pragma: no cover - hang
            raise RuntimeError("service failed to start within 60s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = ReliabilityService(**self._kwargs)
        try:
            await self.service.start()
        except BaseException as err:  # pragma: no cover - startup failure
            self._startup_error = err
            self._started.set()
            return
        self.host, self.port = self.service.host, self.service.port
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()
