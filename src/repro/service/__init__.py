"""Reliability-planning service: campaign-as-a-service.

The Monte-Carlo/campaign evaluation layer wrapped in a long-running
asyncio HTTP service (stdlib only, no framework): clients POST
:class:`~repro.core.query.ReliabilityQuery` JSON and receive
expected-waste / survival-curve / Monte-Carlo results at interactive
latency. The moving parts:

* :class:`~repro.service.cache.TableCache` — byte-budget LRU over
  resolved lookup-table bundles, keyed by the query's canonical
  ``table_key`` (clustering × placement × encoding × taxonomy);
* :class:`~repro.service.engine.QueryEngine` — executes query batches
  against the cache, in-process (``workers=0``) or sharded across a
  worker process pool, each worker owning one cache shard (queries are
  routed by a cross-process-stable hash of the table key, so a table is
  built at most once, in exactly one worker);
* :class:`~repro.service.dispatch.Dispatcher` — micro-batches concurrent
  requests: everything that arrives while a batch is scoring joins the
  next batch, and same-table Monte-Carlo queries coalesce into one
  vectorized pass (bit-identical to running alone);
* :class:`~repro.service.http.ReliabilityService` — the asyncio HTTP
  front end, with chunked streaming for large sweep queries;
* :mod:`~repro.service.loadgen` — the load generator behind
  ``BENCH_service.json``, which asserts service results bit-equal to
  direct in-process calls before recording any rate.

Run it with ``python -m repro serve`` (``--self-test`` starts a server,
drives it, checks equivalence and shuts down — the CI smoke).
"""

from repro.service.cache import TableCache
from repro.service.dispatch import Dispatcher
from repro.service.engine import QueryEngine
from repro.service.http import ReliabilityService, ServiceThread
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import LoadReport, run_load, run_self_test

__all__ = [
    "Dispatcher",
    "LoadReport",
    "QueryEngine",
    "ReliabilityService",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "TableCache",
    "run_load",
    "run_self_test",
]
