"""Byte-budget LRU cache of resolved query-table bundles.

One entry per canonical ``table_key`` — the per-(clustering, placement,
encoding, taxonomy) lookup tables every query against that configuration
shares. Entries are *live* objects whose footprint grows as queries touch
new cascade lengths (the per-``f`` run caches fill in), so the budget is
enforced against a fresh :meth:`~repro.core.query.QueryTables.nbytes`
measurement on every insertion, not a size recorded at build time.

The service runs one cache per worker process (a shard of the logical
cache — queries are routed to workers by table key, so shards never
duplicate a table); ``workers=0`` runs a single in-process instance.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

from repro.core.query import QueryTables, ReliabilityQuery, build_tables

#: Default byte budget per cache shard (plenty for dozens of paper-scale
#: table bundles; a 1024-rank bundle is a few hundred KiB).
DEFAULT_CACHE_BYTES = 256 << 20


class TableCache:
    """LRU of :class:`QueryTables`, evicted by byte budget."""

    def __init__(self, *, max_bytes: int = DEFAULT_CACHE_BYTES):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, QueryTables] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, query: ReliabilityQuery) -> QueryTables:
        """The table bundle for ``query`` — served from cache or built.

        Usable directly as the ``resolver`` of
        :func:`repro.core.query.run_query_batch`.
        """
        key = query.table_key()
        with self._lock:
            tables = self._entries.get(key)
            if tables is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return tables
        # Build outside the lock: table construction is the slow part and
        # concurrent misses for *different* keys shouldn't serialize. Two
        # racing misses for the same key both build; last insert wins.
        tables = build_tables(query)
        with self._lock:
            self.misses += 1
            self._entries[key] = tables
            self._entries.move_to_end(key)
            self._trim()
        return self._entries.get(key, tables)

    def _trim(self) -> None:
        """Drop least-recently-used entries until under budget (the
        most-recent entry always stays, even when it alone exceeds the
        budget — a cache that cannot hold the working query is still more
        useful than one that thrashes it)."""
        while len(self._entries) > 1 and self.total_bytes() > self.max_bytes:
            self._entries.popitem(last=False)
            self.evictions += 1

    def total_bytes(self) -> int:
        """Current footprint (remeasured — run caches grow after insert)."""
        return sum(entry.nbytes() for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query: ReliabilityQuery) -> bool:
        return query.table_key() in self._entries

    def stats(self) -> dict:
        """Counters for the service's ``/stats`` endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes(),
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
