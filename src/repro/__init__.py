"""repro — reproduction of *Hierarchical Clustering Strategies for Fault
Tolerance in Large Scale HPC Systems* (Bautista-Gomez et al., CLUSTER 2012).

The package provides:

* :mod:`repro.simmpi` — a deterministic discrete-event MPI simulator;
* :mod:`repro.machine` — machine/topology models (TSUBAME2 preset);
* :mod:`repro.apps` — the tsunami shallow-water stencil and other workloads;
* :mod:`repro.commgraph` — communication graphs and matrices;
* :mod:`repro.clustering` — the paper's four clustering strategies and the
  node-graph partitioner;
* :mod:`repro.erasure` — GF(2^8) Reed–Solomon and XOR erasure codes;
* :mod:`repro.ftilib` — FTI-style multilevel checkpointing;
* :mod:`repro.hydee` — HydEE-style hybrid protocol (cluster-coordinated
  checkpointing + inter-cluster message logging + contained recovery);
* :mod:`repro.failures` — failure and reliability models;
* :mod:`repro.models` — the four-dimensional analytic evaluation;
* :mod:`repro.core` — the high-level framework, evaluator and experiment
  drivers reproducing every figure and table of the paper.

Quickstart::

    from repro.core import ClusteringEvaluator, default_tsunami_scenario

    scenario = default_tsunami_scenario(nodes=64, procs_per_node=16)
    evaluator = ClusteringEvaluator.from_scenario(scenario)
    report = evaluator.evaluate_all()
    print(report.to_table())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
