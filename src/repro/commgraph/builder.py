"""Builders turning execution traces into communication graphs.

The evaluation pipeline is: run the application under the tracer → extract
the *application* communication graph (encoder processes removed and ranks
re-indexed densely, since clustering decisions concern app processes) →
collapse to the node graph for L1 partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph
from repro.machine.placement import FTIPlacement, Placement
from repro.simmpi.tracing import TraceRecorder


def graph_from_trace(tracer: TraceRecorder) -> CommGraph:
    """Whole-world communication graph straight from a trace."""
    return CommGraph(tracer.bytes_matrix.copy())


def app_graph_from_trace(
    tracer: TraceRecorder, placement: FTIPlacement
) -> CommGraph:
    """Application-process graph: drop encoder ranks, re-index densely.

    App process *i* of the result corresponds to world rank
    ``placement.world_rank_of_app(i)``; FTI-internal traffic (to, from and
    between encoder processes) is excluded, mirroring the paper's decision
    to cluster application processes and quarantine encoders separately.
    """
    if tracer.nranks != placement.nranks:
        raise ValueError(
            f"trace covers {tracer.nranks} ranks, placement expects "
            f"{placement.nranks}"
        )
    app_world = np.array(placement.app_ranks())
    sub = tracer.bytes_matrix[np.ix_(app_world, app_world)]
    return CommGraph(sub)


def node_graph(graph: CommGraph, placement: Placement, *, app_level: bool = False) -> CommGraph:
    """Collapse a process graph to the node level using ``placement``.

    With ``app_level=True`` the graph's endpoints are dense app indices of
    an :class:`FTIPlacement` (output of :func:`app_graph_from_trace`);
    otherwise they are world ranks.
    """
    node_of = placement.node_array()
    if app_level:
        if not isinstance(placement, FTIPlacement):
            raise TypeError("app_level collapse requires an FTIPlacement")
        app_world = np.asarray(placement.app_ranks(), dtype=np.int64)
        if graph.n != app_world.size:
            raise ValueError(
                f"graph has {graph.n} endpoints, placement hosts "
                f"{app_world.size} app processes"
            )
        group_of = node_of[app_world]
    else:
        if graph.n != placement.nranks:
            raise ValueError(
                f"graph has {graph.n} endpoints, placement {placement.nranks} ranks"
            )
        group_of = node_of[:placement.nranks]
    return graph.collapse(group_of, placement.nnodes)
