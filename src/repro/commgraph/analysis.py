"""Network-analysis measures from §IV-A's neuroscience framing.

The paper motivates hierarchical clustering with brain-network findings:
*functional segregation* (densely interconnected communities revealed by
partitions that "maximize the number of intra-cluster links and minimize
the number of inter-cluster links" — exactly Newman's modularity), the
*degree distribution* as "an important marker of network evolution and
resilience", and *hierarchical modularity*. This module computes those
measures for communication graphs, so the analogy the paper draws is
checkable on the actual workloads: stencil graphs are strongly modular
(hierarchical clustering exploits it), all-to-all graphs are not (the §V
caveat).
"""

from __future__ import annotations

import numpy as np

from repro.commgraph.graph import CommGraph


def modularity(graph: CommGraph, labels: np.ndarray) -> float:
    """Newman modularity Q of a partition over the weighted undirected graph.

    ``Q = (1/2m) Σ_ij [w_ij − k_i k_j / 2m] δ(c_i, c_j)`` with
    ``w = (B + Bᵀ)/2`` and self-traffic excluded. Q near 0: no community
    structure beyond chance; Q ≳ 0.3: strong segregation (the brain-network
    literature's rule of thumb the paper leans on).
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.n,):
        raise ValueError(f"labels must have shape ({graph.n},)")
    w = graph.symmetric() / 2.0
    np.fill_diagonal(w, 0.0)
    two_m = w.sum()
    if two_m == 0:
        return 0.0
    degrees = w.sum(axis=0)
    same = labels[:, None] == labels[None, :]
    expected = np.outer(degrees, degrees) / two_m
    return float(((w - expected) * same).sum() / two_m)


def degree_statistics(graph: CommGraph) -> dict[str, float]:
    """Degree-distribution summary (§IV-A's resilience marker)."""
    degrees = graph.degree_distribution().astype(float)
    return {
        "min": float(degrees.min()),
        "max": float(degrees.max()),
        "mean": float(degrees.mean()),
        "std": float(degrees.std()),
        "total": float(degrees.sum()),
    }


def weighted_clustering_coefficient(graph: CommGraph) -> float:
    """Mean (binary) clustering coefficient over the undirected skeleton.

    Brain networks combine high clustering with short paths; 2-D stencil
    graphs have clustering 0 (their neighborhoods are cycles-free grids),
    which is precisely why *explicit* cluster construction — rather than
    emergent community detection — is needed for HPC topologies.
    """
    adj = (graph.symmetric() > 0).astype(float)
    np.fill_diagonal(adj, 0.0)
    triangles = np.diag(adj @ adj @ adj) / 2.0
    degrees = adj.sum(axis=0)
    possible = degrees * (degrees - 1) / 2.0
    mask = possible > 0
    if not mask.any():
        return 0.0
    return float((triangles[mask] / possible[mask]).mean())


def hierarchical_modularity_profile(
    graph: CommGraph, l1_labels: np.ndarray, l2_labels: np.ndarray
) -> dict[str, float]:
    """Modularity at both levels of a hierarchical clustering.

    "Hierarchical modularity allows systems to combine densely
    interconnected regions with resilient distribution" (§IV-A): a good
    hierarchical clustering shows high Q at L1 (segregation for logging)
    while the L2 refinement deliberately *sacrifices* modularity inside L1
    clusters (distribution for resilience).
    """
    return {
        "l1_modularity": modularity(graph, l1_labels),
        "l2_modularity": modularity(graph, l2_labels),
    }
