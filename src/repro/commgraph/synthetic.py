"""Closed-form communication matrices for stencil workloads.

Running the 1024-rank tsunami app through the discrete-event engine gives
the ground-truth trace, but the parameter sweeps of Fig. 3/4 evaluate many
clusterings against *one fixed* application matrix — rebuilding it
analytically is exact for a stencil (every iteration sends the same
messages) and keeps the sweep benchmarks fast.

``synthetic_stencil_matrix`` must agree byte-for-byte with the traced app;
a test asserts exactly that (``tests/commgraph/test_synthetic.py``).
"""

from __future__ import annotations

import numpy as np

from repro.apps.stencil import ProcessGrid
from repro.commgraph.graph import CommGraph


def synthetic_stencil_matrix(
    grid: ProcessGrid,
    *,
    iterations: int,
    nfields: int = 3,
    itemsize: int = 8,
) -> CommGraph:
    """Halo-exchange byte matrix of ``iterations`` stencil steps.

    East/west messages carry ``nfields · tile_ny`` items, north/south
    messages ``nfields · tile_nx`` items, matching
    :func:`repro.apps.stencil.halo_exchange`. Collectives (the periodic
    ``allreduce``) are *not* included — their volume is negligible (8-byte
    scalars) and the sweeps in the paper reason about the stencil traffic.
    """
    n = grid.nranks
    m = np.zeros((n, n))
    ew_bytes = nfields * grid.tile_ny * itemsize * iterations
    ns_bytes = nfields * grid.tile_nx * itemsize * iterations
    for rank in range(n):
        north, east, south, west = grid.neighbors_of(rank)
        if north is not None:
            m[north, rank] += ns_bytes
        if south is not None:
            m[south, rank] += ns_bytes
        if east is not None:
            m[east, rank] += ew_bytes
        if west is not None:
            m[west, rank] += ew_bytes
    return CommGraph(m)


def paper_tsunami_matrix(*, iterations: int = 100) -> CommGraph:
    """The §V 1024-process tsunami matrix (32×32 grid, 32×768 tiles)."""
    from repro.apps.tsunami import paper_tsunami_config

    cfg = paper_tsunami_config(iterations=iterations)
    return synthetic_stencil_matrix(cfg.grid, iterations=iterations, nfields=3)


def random_sparse_matrix(
    n: int,
    *,
    degree: int = 4,
    rng=None,
    max_bytes: int = 10**6,
) -> CommGraph:
    """Random low-degree communication graph (for partitioner stress tests).

    Mirrors the observation [15] that HPC communication graphs have a low
    degree of connectivity: each endpoint talks to ~``degree`` partners.
    """
    from repro.util.rng import resolve_rng

    gen = resolve_rng(rng)
    m = np.zeros((n, n))
    for src in range(n):
        partners = gen.choice(n, size=min(degree, n - 1), replace=False)
        for dst in partners:
            if dst != src:
                m[dst, src] += float(gen.integers(1, max_bytes))
    return CommGraph(m)
