"""Communication graphs: construction from traces, synthesis, analysis.

The bridge between application execution (:mod:`repro.apps` on
:mod:`repro.simmpi`) and clustering decisions (:mod:`repro.clustering`).
"""

from repro.commgraph.analysis import (
    degree_statistics,
    hierarchical_modularity_profile,
    modularity,
    weighted_clustering_coefficient,
)
from repro.commgraph.builder import (
    app_graph_from_trace,
    graph_from_trace,
    node_graph,
)
from repro.commgraph.graph import CommGraph
from repro.commgraph.synthetic import (
    paper_tsunami_matrix,
    random_sparse_matrix,
    synthetic_stencil_matrix,
)

__all__ = [
    "CommGraph",
    "app_graph_from_trace",
    "degree_statistics",
    "graph_from_trace",
    "hierarchical_modularity_profile",
    "modularity",
    "node_graph",
    "paper_tsunami_matrix",
    "random_sparse_matrix",
    "synthetic_stencil_matrix",
    "weighted_clustering_coefficient",
]
