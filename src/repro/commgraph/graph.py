"""Communication graphs/matrices and the quantities the paper derives from them.

A :class:`CommGraph` wraps a dense directed byte matrix ``B`` where
``B[dst, src]`` is the number of bytes ``src`` sent to ``dst`` — the object
"obtained by executing a tsunami simulation application" that §III's whole
study runs on. It answers the two questions every clustering is scored on:

* **logged fraction** — given a cluster assignment, which share of bytes
  crosses cluster boundaries (must be message-logged)?
* **node graph** — the node-level collapse the hierarchical L1 partitioner
  runs on (§IV-B: "from the obtained process communication graph, it is
  simple to construct a node-based communication graph").
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


class CommGraph:
    """Dense directed communication matrix over ``n`` endpoints.

    ``matrix[dst, src]`` = bytes sent from ``src`` to ``dst`` (Fig. 5's
    orientation). Endpoints are application-process indices or node indices
    depending on the level.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("byte counts cannot be negative")
        self.matrix = matrix

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges) -> "CommGraph":
        """Build from an iterable of ``(src, dst, nbytes)`` triples."""
        m = np.zeros((n, n))
        for src, dst, nbytes in edges:
            m[dst, src] += nbytes
        return cls(m)

    # -- basic views --------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of endpoints."""
        return self.matrix.shape[0]

    @property
    def total_bytes(self) -> float:
        """Total directed traffic, self-traffic excluded."""
        return float(self.matrix.sum() - np.trace(self.matrix))

    def symmetric(self) -> np.ndarray:
        """Undirected weights ``B + B.T`` (diagonal preserved)."""
        return self.matrix + self.matrix.T

    def degree_distribution(self) -> np.ndarray:
        """Number of distinct communication partners per endpoint.

        §IV-A motivates the hierarchical design with the degree distribution
        of brain networks; HPC stencil graphs have low, uniform degree [15].
        """
        sym = self.symmetric().copy()
        np.fill_diagonal(sym, 0.0)
        return (sym > 0).sum(axis=0)

    # -- clustering-dependent quantities ------------------------------------

    def _check_labels(self, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        if labels.shape != (self.n,):
            raise ValueError(
                f"labels must have shape ({self.n},), got {labels.shape}"
            )
        return labels

    def cut_bytes(self, labels: np.ndarray) -> float:
        """Bytes crossing cluster boundaries under assignment ``labels``."""
        labels = self._check_labels(labels)
        cross = labels[:, None] != labels[None, :]
        return float(self.matrix[cross].sum())

    def logged_fraction(self, labels: np.ndarray) -> float:
        """Share of (off-diagonal) traffic that is inter-cluster.

        This is the paper's *message logging overhead* dimension: a hybrid
        protocol logs exactly the inter-cluster messages.
        """
        total = self.total_bytes
        if total == 0:
            return 0.0
        return self.cut_bytes(labels) / total

    def intra_fraction(self, labels: np.ndarray) -> float:
        """Complement of :meth:`logged_fraction` (ignoring self-traffic)."""
        return 1.0 - self.logged_fraction(labels)

    def cluster_traffic(self, labels: np.ndarray) -> dict[int, float]:
        """Per-cluster outbound logged bytes (diagnostics for cost models)."""
        labels = self._check_labels(labels)
        out: dict[int, float] = {}
        for cluster in np.unique(labels):
            src_in = labels == cluster
            dst_out = ~src_in
            out[int(cluster)] = float(self.matrix[np.ix_(dst_out, src_in)].sum())
        return out

    # -- level collapse --------------------------------------------------------

    def collapse(self, group_of: np.ndarray, n_groups: int | None = None) -> "CommGraph":
        """Collapse endpoints into groups (e.g. processes → nodes).

        ``group_of[i]`` is the group of endpoint ``i``; traffic between
        members of one group lands on the diagonal of the collapsed matrix
        (it is intra-group and can never be cut by a group-level partition).
        """
        group_of = np.asarray(group_of)
        if group_of.shape != (self.n,):
            raise ValueError(
                f"group_of must have shape ({self.n},), got {group_of.shape}"
            )
        k = int(group_of.max()) + 1 if n_groups is None else n_groups
        if (group_of < 0).any() or (group_of >= k).any():
            raise ValueError("group indices out of range")
        # Two-pass vectorized collapse: receivers (rows), then senders (cols).
        rows = np.zeros((k, self.n))
        np.add.at(rows, group_of, self.matrix)
        collapsed = np.zeros((k, k))
        np.add.at(collapsed.T, group_of, rows.T)
        return CommGraph(collapsed)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Store the matrix as a compressed ``.npz``."""
        np.savez_compressed(Path(path), matrix=self.matrix)

    @classmethod
    def load(cls, path: str | Path) -> "CommGraph":
        """Load a graph stored with :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(data["matrix"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommGraph(n={self.n}, total={self.total_bytes:.3g} B)"
