"""The uniform workload API: execution modes and per-rank program factories.

Every traced application used to re-declare its own ``use_waves`` /
``use_kernels`` switches, and every consumer (single engine, bench
recorder, fuzz executor, sharded workers) re-assembled rank programs its
own way. This module unifies both:

* :class:`ExecutionMode` — the one enum naming how a workload drives the
  engine (``PER_MESSAGE`` / ``WAVES`` / ``KERNELS``). The app configs
  accept ``mode=`` and deprecate their ad-hoc boolean flags (one-release
  :class:`DeprecationWarning`; the booleans keep working and stay
  readable on the resolved config).
* :class:`Workload` — a *picklable* per-rank program factory protocol:
  ``workload.build_program(rank)`` returns the rank's program callable,
  so a shard worker ships one small object across the process boundary
  and instantiates only its slice of the world. ``shard_atoms()``
  exposes the workload's indivisible rank groups to the partitioner
  (e.g. one FTI node block per atom, keeping every wildcard gather and
  its candidate senders inside one shard).

Concrete adapters wrap the existing simulations: :class:`HeatWorkload`,
:class:`TsunamiWorkload`, :class:`SpectralWorkload`,
:class:`FTIWorkload` (the fig5 control-traffic world) and
:class:`ProgramsWorkload` (explicit closures — in-process only, closures
do not pickle).
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import replace as _dc_replace
from enum import Enum
from typing import Any, Callable, Sequence


class ExecutionMode(Enum):
    """How a workload's steady-state loop drives the engine.

    ``PER_MESSAGE`` posts individual isend/irecv/wait ops (the bit-exact
    reference path); ``WAVES`` posts persistent-request halo waves (one
    ``start_all`` + one ``waitall`` per iteration); ``KERNELS``
    additionally declares :class:`~repro.simmpi.engine.KernelLoop` ops so
    eligible steady states execute closed-form. Messages, traces and
    clocks are identical across all three — the equivalence suites pin
    it — so the mode is purely a performance choice.
    """

    PER_MESSAGE = "per-message"
    WAVES = "waves"
    KERNELS = "kernels"

    @property
    def use_waves(self) -> bool:
        """Whether this mode posts persistent-request waves."""
        return self is not ExecutionMode.PER_MESSAGE

    @property
    def use_kernels(self) -> bool:
        """Whether this mode declares steady-state kernel loops."""
        return self is ExecutionMode.KERNELS


def _mode_of(use_waves: bool, use_kernels: bool) -> ExecutionMode:
    """The mode implied by a legacy flag pair (kernels require waves)."""
    if use_waves and use_kernels:
        return ExecutionMode.KERNELS
    if use_waves:
        return ExecutionMode.WAVES
    return ExecutionMode.PER_MESSAGE


def resolve_execution(
    mode: ExecutionMode | None,
    use_waves: bool | None,
    use_kernels: bool | None,
    *,
    owner: str,
) -> tuple[ExecutionMode, bool, bool]:
    """Resolve an app config's execution fields to ``(mode, waves, kernels)``.

    The shared ``__post_init__`` helper behind every app config:

    * nothing given — the default, :attr:`ExecutionMode.KERNELS`;
    * ``mode=`` alone — the new API; booleans derive from the mode;
    * legacy booleans alone — the deprecated API; a one-release
      :class:`DeprecationWarning` is emitted and the mode derives from
      the flags (a missing flag defaults to its historical ``True``);
    * both — accepted only when they agree (``dataclasses.replace`` on a
      resolved config round-trips); a contradiction raises so no caller
      can silently depend on which one wins. Use :func:`with_mode` to
      switch a resolved config's mode.
    """
    if use_waves is None and use_kernels is None:
        mode = ExecutionMode.KERNELS if mode is None else mode
        return mode, mode.use_waves, mode.use_kernels
    waves = True if use_waves is None else bool(use_waves)
    kernels = True if use_kernels is None else bool(use_kernels)
    derived = _mode_of(waves, kernels)
    if mode is None:
        warnings.warn(
            f"{owner}(use_waves=…, use_kernels=…) is deprecated; pass "
            f"mode=ExecutionMode.{derived.name} instead (the boolean "
            f"flags will be removed one release after 0.4)",
            DeprecationWarning,
            stacklevel=4,
        )
        return derived, waves, kernels
    if derived is not mode:
        raise ValueError(
            f"{owner}: mode={mode.name} contradicts use_waves={waves} / "
            f"use_kernels={kernels} (they imply {derived.name}); set one "
            f"or the other, or use repro.apps.workload.with_mode"
        )
    return mode, waves, kernels


def with_mode(cfg: Any, mode: ExecutionMode) -> Any:
    """Copy an app config with its execution mode replaced.

    ``dataclasses.replace(cfg, mode=...)`` alone would carry the old
    resolved booleans into the contradiction check; this clears them so
    the new mode resolves cleanly.
    """
    return _dc_replace(cfg, mode=mode, use_waves=None, use_kernels=None)


class Workload(abc.ABC):
    """A picklable factory of per-rank engine programs.

    Consumers never build app closures themselves: they ship the workload
    (one small object wrapping a frozen config) wherever the programs are
    needed — a worker process, a replay, the fuzz executor — and call
    :meth:`build_program` per rank. Implementations must be picklable and
    deterministic: equal workloads build programs with identical traffic
    on every host (lazily-built caches are dropped from the pickled
    state).
    """

    @property
    @abc.abstractmethod
    def nranks(self) -> int:
        """World size this workload's programs are built for."""

    @abc.abstractmethod
    def build_program(self, rank: int) -> Callable:
        """The program callable for one world rank."""

    def build_programs(self) -> list[Callable]:
        """All rank programs, in world-rank order."""
        return [self.build_program(rank) for rank in range(self.nranks)]

    def shard_atoms(self) -> list[tuple[int, ...]]:
        """Indivisible rank groups for the shard partitioner, in world order.

        Atoms are never split across shards. The default is one rank per
        atom; workloads whose correctness-relevant matching spans a rank
        group (an FTI node's wildcard ready-gather and its candidate
        senders) override this so the group stays co-resident.
        """
        return [(rank,) for rank in range(self.nranks)]


class _LazyProgramWorkload(Workload):
    """Shared plumbing: build (and cache) programs lazily, pickle configs only.

    ``_build()`` returns either one rank-agnostic program callable or a
    full per-rank list; the cache never crosses a pickle boundary, so a
    worker rebuilds its programs from the config deterministically.
    """

    _CACHE = "_program_cache"

    def _build(self):  # pragma: no cover - abstract-ish hook
        raise NotImplementedError

    def _programs(self):
        cached = self.__dict__.get(self._CACHE)
        if cached is None:
            cached = self.__dict__[self._CACHE] = self._build()
        return cached

    def build_program(self, rank: int) -> Callable:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} outside world of {self.nranks}")
        built = self._programs()
        if callable(built):
            return built
        return built[rank]

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop(self._CACHE, None)
        return state

    def __eq__(self, other):
        return (
            other.__class__ is self.__class__
            and self.__getstate__() == other.__getstate__()
        )

    def __hash__(self):
        return hash((self.__class__, tuple(sorted(self.__getstate__()))))


class HeatWorkload(_LazyProgramWorkload):
    """The 2-D heat-diffusion stencil as a workload."""

    def __init__(self, cfg):
        self.cfg = cfg

    @property
    def nranks(self) -> int:
        return self.cfg.px * self.cfg.py

    def _build(self):
        from repro.apps.heat import HeatSimulation

        return HeatSimulation(self.cfg).make_program()


class TsunamiWorkload(_LazyProgramWorkload):
    """The tsunami shallow-water solver as a workload."""

    def __init__(self, cfg):
        self.cfg = cfg

    @property
    def nranks(self) -> int:
        return self.cfg.px * self.cfg.py

    def _build(self):
        from repro.apps.tsunami import TsunamiSimulation

        return TsunamiSimulation(self.cfg).make_program()


class SpectralWorkload(_LazyProgramWorkload):
    """The spectral transpose (pairwise all-to-all) as a workload."""

    def __init__(self, cfg):
        self.cfg = cfg

    @property
    def nranks(self) -> int:
        return self.cfg.nranks

    def _build(self):
        from repro.apps.spectral import SpectralSimulation

        return SpectralSimulation(self.cfg).make_program()


class FTIWorkload(_LazyProgramWorkload):
    """The fig5 world: app ranks plus per-node FTI encoder processes.

    Wraps :func:`repro.ftilib.tracesim.make_fti_world_programs` over a
    :class:`~repro.machine.placement.FTIPlacement`: each node block holds
    one encoder (world rank ``node * (app_per_node + 1)``) followed by
    its ``app_per_node`` application ranks. ``shard_atoms`` returns one
    atom per node block — the encoder's ``ANY_SOURCE`` ready-gathers and
    every candidate sender stay inside one shard, so cross-shard traffic
    is only the deterministic halo/ring/collective exchange.
    """

    def __init__(self, sim_cfg, *, nodes: int, app_per_node: int, iterations: int, trace_cfg=None):
        from repro.ftilib.tracesim import FTITraceConfig

        self.sim_cfg = sim_cfg
        self.nodes = nodes
        self.app_per_node = app_per_node
        self.iterations = iterations
        self.trace_cfg = trace_cfg if trace_cfg is not None else FTITraceConfig()

    @property
    def placement(self):
        from repro.machine.placement import FTIPlacement

        return FTIPlacement(self.nodes, self.app_per_node)

    @property
    def nranks(self) -> int:
        return self.nodes * (self.app_per_node + 1)

    def _build(self):
        from repro.apps.tsunami import TsunamiSimulation
        from repro.ftilib.tracesim import make_fti_world_programs

        return make_fti_world_programs(
            TsunamiSimulation(self.sim_cfg),
            self.placement,
            iterations=self.iterations,
            trace_cfg=self.trace_cfg,
        )

    def shard_atoms(self) -> list[tuple[int, ...]]:
        per_node = self.app_per_node + 1
        return [
            tuple(range(node * per_node, (node + 1) * per_node))
            for node in range(self.nodes)
        ]


class ProgramsWorkload(Workload):
    """Explicit per-rank program closures as a workload.

    The escape hatch for tests and ad-hoc programs. Closures generally do
    not pickle, so this workload only works with in-process execution
    (``workers=0`` in the sharded engine); the picklable adapters above
    are the multi-process path.
    """

    def __init__(self, programs: Sequence[Callable], *, atoms: Sequence[Sequence[int]] | None = None):
        self._program_list = list(programs)
        self._atoms = (
            None if atoms is None else [tuple(a) for a in atoms]
        )

    @property
    def nranks(self) -> int:
        return len(self._program_list)

    def build_program(self, rank: int) -> Callable:
        return self._program_list[rank]

    def build_programs(self) -> list[Callable]:
        return list(self._program_list)

    def shard_atoms(self) -> list[tuple[int, ...]]:
        if self._atoms is not None:
            return list(self._atoms)
        return super().shard_atoms()


def fig5_workload(
    *,
    nodes: int = 64,
    app_per_node: int = 16,
    iterations: int = 100,
    checkpoint_every: int = 25,
) -> FTIWorkload:
    """The §V fig5 world as a picklable workload.

    Same shapes as :func:`repro.core.experiments.experiment_fig5ab`: a
    synthetic tsunami grid sized to ``nodes * app_per_node`` application
    ranks (the paper's 1024-rank run keeps its 32×32 grid with the 24:1
    tile aspect), plus one FTI encoder per node.
    """
    import math

    from repro.apps.tsunami import TsunamiConfig
    from repro.ftilib.tracesim import FTITraceConfig

    n_app = nodes * app_per_node
    if n_app == 1024:
        px = 32
    else:
        # Most-square factorization: largest divisor not above the root.
        px = next(
            d for d in range(math.isqrt(n_app), 0, -1) if n_app % d == 0
        )
    py = n_app // px
    if px < 1 or px * py != n_app:
        raise ValueError(f"cannot build a 2-D grid over {n_app} app ranks")
    cfg = TsunamiConfig(
        px=px,
        py=py,
        nx=32 * px,
        ny=768 * py if n_app == 1024 else 32 * py,
        iterations=iterations,
        synthetic=True,
        allreduce_every=0,
    )
    return FTIWorkload(
        cfg,
        nodes=nodes,
        app_per_node=app_per_node,
        iterations=iterations,
        trace_cfg=FTITraceConfig(checkpoint_every=checkpoint_every),
    )


__all__ = [
    "ExecutionMode",
    "FTIWorkload",
    "HeatWorkload",
    "ProgramsWorkload",
    "SpectralWorkload",
    "TsunamiWorkload",
    "Workload",
    "fig5_workload",
    "resolve_execution",
    "with_mode",
]
