"""Application workloads running on the simulated MPI runtime.

* :mod:`repro.apps.tsunami` — the paper's evaluation workload: a 2-D
  shallow-water (tsunami) stencil with ghost-region exchange;
* :mod:`repro.apps.heat` — a Jacobi heat-diffusion stencil (second domain
  example);
* :mod:`repro.apps.stencil` — shared decomposition/halo machinery.
"""

from repro.apps.heat import HeatConfig, HeatSimulation, heat_step
from repro.apps.spectral import (
    SpectralConfig,
    SpectralSimulation,
    initial_field,
)
from repro.apps.stencil import (
    EAST,
    HALO_TAG_BASE,
    NORTH,
    ProcessGrid,
    SOUTH,
    WEST,
    halo_exchange,
    synthetic_halo_exchange,
)
from repro.apps.tsunami import (
    GRAVITY,
    TsunamiConfig,
    TsunamiSimulation,
    fill_physical_ghosts,
    initial_eta,
    paper_tsunami_config,
    swe_step,
)
from repro.apps.workload import (
    ExecutionMode,
    FTIWorkload,
    HeatWorkload,
    ProgramsWorkload,
    SpectralWorkload,
    TsunamiWorkload,
    Workload,
    fig5_workload,
    resolve_execution,
    with_mode,
)

__all__ = [
    "EAST",
    "ExecutionMode",
    "FTIWorkload",
    "GRAVITY",
    "HALO_TAG_BASE",
    "HeatConfig",
    "HeatSimulation",
    "HeatWorkload",
    "NORTH",
    "ProcessGrid",
    "ProgramsWorkload",
    "SOUTH",
    "SpectralConfig",
    "SpectralSimulation",
    "SpectralWorkload",
    "TsunamiConfig",
    "TsunamiSimulation",
    "TsunamiWorkload",
    "WEST",
    "Workload",
    "fig5_workload",
    "fill_physical_ghosts",
    "halo_exchange",
    "heat_step",
    "initial_eta",
    "initial_field",
    "paper_tsunami_config",
    "resolve_execution",
    "swe_step",
    "synthetic_halo_exchange",
    "with_mode",
]
