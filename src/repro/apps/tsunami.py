"""Tsunami simulation workload — the paper's evaluation application.

The original study ran the multi-GPU tsunami code of Arce-Acuna & Aoki [1]:
a 2-D shallow-water solver over a decomposed sea region where "each process
computes the fluid dynamics of its segment" and neighbors exchange ghost
regions (§III). We reproduce the *parallel structure* with a linearized
shallow-water solver (Lax–Friedrichs scheme over wave height ``eta`` and
depth-averaged velocities ``u``, ``v``) on the same 2-D decomposition.

Shape calibration (documented in DESIGN.md §5): the paper's trace shows the
east-west exchange dominating the north-south one, and consecutive-rank
clusters of 32 logging < 4 % of bytes. Both pin the tile aspect ratio near
height ≈ 24 × width; :func:`paper_tsunami_config` uses 32×768-cell tiles on
a 32×32 process grid.

Two payload modes:

* ``synthetic=False`` — full numerics, bit-comparable with
  :meth:`TsunamiSimulation.run_serial_reference` (used by correctness and
  recovery-equivalence tests at small scale);
* ``synthetic=True`` — halo messages carry byte counts only, making
  1024-rank trace collection cheap (the byte matrix is identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.stencil import (
    HaloWave,
    ProcessGrid,
    halo_exchange,
    synthetic_halo_exchange,
)
from repro.apps.workload import ExecutionMode, resolve_execution
from repro.util.validation import check_positive

#: Gravitational acceleration used by the solver (m/s^2).
GRAVITY = 9.81


@dataclass(frozen=True)
class TsunamiConfig:
    """Configuration of one tsunami run.

    ``allreduce_every`` mimics the global wave-height monitoring collective
    real tsunami codes perform (and exercises the collective path in the
    trace); set to 0 to disable.
    """

    px: int = 4
    py: int = 4
    nx: int = 64
    ny: int = 64
    iterations: int = 100
    dx: float = 1000.0  # cell size (m)
    depth: float = 100.0  # resting water depth (m)
    dt: float | None = None  # None: 0.4 * CFL limit
    synthetic: bool = False
    # How the steady-state loop drives the engine; the canonical knob.
    # None resolves to ExecutionMode.KERNELS (waves + kernel loops) unless
    # the deprecated boolean flags below say otherwise. Messages, traces
    # and clocks are identical across modes; PER_MESSAGE pins the
    # bit-exact isend/irecv/wait reference.
    mode: ExecutionMode | None = None
    # Deprecated flag pair (one release): resolved against ``mode`` by
    # resolve_execution, which rewrites both to concrete booleans so
    # existing ``cfg.use_waves`` readers keep working.
    use_waves: bool | None = None
    use_kernels: bool | None = None
    allreduce_every: int = 25
    # Initial condition: Gaussian hump (amplitude in m, width in cells).
    hump_amplitude: float = 2.0
    hump_width: float = 6.0
    hump_x: float = 0.5  # relative position in [0, 1]
    hump_y: float = 0.5

    def __post_init__(self) -> None:
        check_positive("iterations", self.iterations, strict=False)
        check_positive("dx", self.dx)
        check_positive("depth", self.depth)
        ProcessGrid(self.px, self.py, self.nx, self.ny)  # validates divisibility
        mode, waves, kernels = resolve_execution(
            self.mode, self.use_waves, self.use_kernels, owner="TsunamiConfig"
        )
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "use_waves", waves)
        object.__setattr__(self, "use_kernels", kernels)

    @property
    def grid(self) -> ProcessGrid:
        """The process grid implied by this configuration."""
        return ProcessGrid(self.px, self.py, self.nx, self.ny)

    @property
    def wave_speed(self) -> float:
        """Gravity-wave speed ``sqrt(g·H)`` (m/s)."""
        return float(np.sqrt(GRAVITY * self.depth))

    @property
    def timestep(self) -> float:
        """Explicit time step (0.4 × the 2-D CFL limit unless overridden)."""
        if self.dt is not None:
            return self.dt
        return 0.4 * self.dx / (self.wave_speed * np.sqrt(2.0))


def initial_eta(cfg: TsunamiConfig, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Initial wave height at global cell centers ``(ys, xs)`` (meshgrid-style).

    Both the serial reference and the per-rank tiles evaluate this same
    expression on global coordinates, so decomposition cannot perturb the
    initial condition.
    """
    # Relative positions map onto [0, n-1] so hump_x = 0.5 is the exact
    # geometric center of the cell grid (keeps symmetric setups symmetric).
    cx = cfg.hump_x * (cfg.nx - 1)
    cy = cfg.hump_y * (cfg.ny - 1)
    r2 = (xs - cx) ** 2 + (ys - cy) ** 2
    return cfg.hump_amplitude * np.exp(-r2 / (2.0 * cfg.hump_width**2))


def swe_step(
    eta: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    *,
    dt: float,
    dx: float,
    depth: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Lax–Friedrichs step of the linear shallow-water equations.

    Inputs are *padded* arrays (one ghost cell per side, already filled);
    returns the new interior (unpadded) fields. The identical function runs
    on the serial grid and on each parallel tile, so a correct halo fill
    implies bitwise-identical trajectories.
    """
    c = dt / (2.0 * dx)

    def avg4(f: np.ndarray) -> np.ndarray:
        return 0.25 * (f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:])

    detadx = eta[1:-1, 2:] - eta[1:-1, :-2]
    detady = eta[2:, 1:-1] - eta[:-2, 1:-1]
    dudx = u[1:-1, 2:] - u[1:-1, :-2]
    dvdy = v[2:, 1:-1] - v[:-2, 1:-1]

    eta_new = avg4(eta) - depth * c * (dudx + dvdy)
    u_new = avg4(u) - GRAVITY * c * detadx
    v_new = avg4(v) - GRAVITY * c * detady
    return eta_new, u_new, v_new


def fill_physical_ghosts(
    eta: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    *,
    north: bool,
    east: bool,
    south: bool,
    west: bool,
) -> None:
    """Reflective (closed-basin) boundary fill on the flagged sides.

    Wave height and tangential velocity mirror the adjacent interior cell;
    the wall-normal velocity flips sign, modeling a rigid coastline.
    """
    if north:
        eta[0, :] = eta[1, :]
        u[0, :] = u[1, :]
        v[0, :] = -v[1, :]
    if south:
        eta[-1, :] = eta[-2, :]
        u[-1, :] = u[-2, :]
        v[-1, :] = -v[-2, :]
    if west:
        eta[:, 0] = eta[:, 1]
        u[:, 0] = -u[:, 1]
        v[:, 0] = v[:, 1]
    if east:
        eta[:, -1] = eta[:, -2]
        u[:, -1] = -u[:, -2]
        v[:, -1] = v[:, -2]


def clone_state(state: dict) -> dict:
    """Deep-copy a rank state (NumPy leaves copied, scalars passed through)."""
    return {
        k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in state.items()
    }


class TsunamiSimulation:
    """Builds rank programs for (and serial references of) one configuration."""

    def __init__(self, cfg: TsunamiConfig):
        self.cfg = cfg
        self.grid = cfg.grid

    # -- parallel ----------------------------------------------------------

    def make_rank_state(self, rank: int) -> dict:
        """Initial padded tile state for ``rank`` (real-payload mode)."""
        cfg = self.cfg
        ty, tx = self.grid.tile_ny, self.grid.tile_nx
        ys_sl, xs_sl = self.grid.tile_slices(rank)
        ys, xs = np.meshgrid(
            np.arange(ys_sl.start, ys_sl.stop, dtype=np.float64),
            np.arange(xs_sl.start, xs_sl.stop, dtype=np.float64),
            indexing="ij",
        )
        eta = np.zeros((ty + 2, tx + 2))
        u = np.zeros_like(eta)
        v = np.zeros_like(eta)
        eta[1:-1, 1:-1] = initial_eta(cfg, ys, xs)
        return {"eta": eta, "u": u, "v": v, "iteration": 0}

    def _physical_sides(self, rank: int) -> dict[str, bool]:
        north, east, south, west = self.grid.neighbors_of(rank)
        return {
            "north": north is None,
            "east": east is None,
            "south": south is None,
            "west": west is None,
        }

    def step(self, comm, state: dict, *, kind: str = "halo"):
        """One parallel iteration: halo exchange, boundary fill, update.

        Generator coroutine (``yield from`` it inside a rank program).
        Mutates ``state`` in place and bumps ``state['iteration']``.
        With ``cfg.use_waves`` (and a communicator that supports them) the
        halo travels as a compiled persistent wave — same messages, traces
        and clocks as the per-message exchange, two engine yields per
        iteration.
        """
        cfg = self.cfg
        use_wave = cfg.use_waves and getattr(comm, "supports_waves", False)
        if cfg.synthetic:
            if use_wave:
                wave = HaloWave.cached(comm, self.grid, nfields=3, kind=kind)
                yield wave.start_op
                yield wave.drain_op
            else:
                yield from synthetic_halo_exchange(
                    comm, self.grid, nfields=3, itemsize=8, kind=kind
                )
        else:
            eta, u, v = state["eta"], state["u"], state["v"]
            if use_wave:
                wave = HaloWave.cached(
                    comm, self.grid, [eta, u, v], nfields=3, kind=kind
                )
                yield from wave.exchange()
            else:
                yield from halo_exchange(comm, self.grid, [eta, u, v], kind=kind)
            fill_physical_ghosts(eta, u, v, **self._physical_sides(comm.rank))
            eta_new, u_new, v_new = swe_step(
                eta, u, v, dt=cfg.timestep, dx=cfg.dx, depth=cfg.depth
            )
            eta[1:-1, 1:-1] = eta_new
            u[1:-1, 1:-1] = u_new
            v[1:-1, 1:-1] = v_new
        state["iteration"] += 1

        if cfg.allreduce_every and state["iteration"] % cfg.allreduce_every == 0:
            local_max = (
                0.0 if cfg.synthetic else float(np.abs(eta[1:-1, 1:-1]).max())
            )
            from repro.simmpi.collectives import max_op

            state["eta_max"] = yield from comm.allreduce(local_max, max_op)

    def make_program(
        self,
        *,
        iterations: int | None = None,
        hook: Callable | None = None,
        initial_states: list[dict] | None = None,
    ):
        """Build the rank program.

        ``hook(ctx, comm, sim, state, iteration)``, when given, must be a
        generator function invoked *before* every iteration — the seam where
        the fault-tolerance runtimes (FTI checkpoints, HydEE coordination)
        plug in without the application knowing about them.

        ``initial_states`` resumes every rank from a previous state (a list
        indexed by rank, e.g. checkpoints merged after a recovery); states
        are deep-copied so callers keep their snapshots.
        """
        niter = self.cfg.iterations if iterations is None else iterations

        def program(ctx):
            comm = ctx.comm
            if comm.size != self.grid.nranks:
                raise ValueError(
                    f"communicator size {comm.size} != process grid "
                    f"{self.grid.nranks}"
                )
            if initial_states is not None:
                state = clone_state(initial_states[comm.rank])
            elif self.cfg.synthetic:
                # Keep only scalar state; tiles are never touched.
                state = {"iteration": 0}
            else:
                state = self.make_rank_state(comm.rank)
            if (
                hook is None
                and self.cfg.synthetic
                and self.cfg.use_waves
                and self.cfg.use_kernels
                and getattr(comm, "supports_waves", False)
            ):
                yield from self._kernel_program(comm, state, niter)
                return state
            while state["iteration"] < niter:
                if hook is not None:
                    yield from hook(ctx, comm, self, state, state["iteration"])
                yield from self.step(comm, state)
            return state

        return program

    def _kernel_program(self, comm, state: dict, niter: int):
        """Synthetic steady loop as KernelLoop ops, chunked at allreduce
        boundaries so each chunk's trailing collective rides in the
        kernel's fused window (or, when the group can't take the fast
        path, as a plain allreduce after the chunk — same tags, traces
        and clocks as the interpreted loop either way)."""
        from repro.simmpi.collectives import max_op

        every = self.cfg.allreduce_every
        wave = HaloWave.cached(comm, self.grid, nfields=3, kind="halo")
        while state["iteration"] < niter:
            it = state["iteration"]
            if every:
                chunk = min((it // every + 1) * every, niter) - it
            else:
                chunk = niter - it
            fire = bool(every) and (it + chunk) % every == 0
            if fire and comm.collective_windows_ok():
                _, wres = yield wave.kernel_loop(
                    chunk, (comm.allreduce_op(0.0, max_op),)
                )
                state["eta_max"] = wres[0]
            else:
                yield wave.kernel_loop(chunk)
                if fire:
                    state["eta_max"] = yield from comm.allreduce(0.0, max_op)
            state["iteration"] = it + chunk

    # -- serial reference ---------------------------------------------------

    def run_serial_reference(self, iterations: int | None = None) -> dict:
        """Solve the same problem on one undecomposed grid.

        Returns the final global fields; used as the oracle for parallel
        correctness (bitwise equality, see tests).
        """
        cfg = self.cfg
        if cfg.synthetic:
            raise ValueError("serial reference requires real payloads")
        niter = cfg.iterations if iterations is None else iterations
        ys, xs = np.meshgrid(
            np.arange(cfg.ny, dtype=np.float64),
            np.arange(cfg.nx, dtype=np.float64),
            indexing="ij",
        )
        eta = np.zeros((cfg.ny + 2, cfg.nx + 2))
        u = np.zeros_like(eta)
        v = np.zeros_like(eta)
        eta[1:-1, 1:-1] = initial_eta(cfg, ys, xs)
        for _ in range(niter):
            fill_physical_ghosts(eta, u, v, north=True, east=True, south=True, west=True)
            eta_new, u_new, v_new = swe_step(
                eta, u, v, dt=cfg.timestep, dx=cfg.dx, depth=cfg.depth
            )
            eta[1:-1, 1:-1] = eta_new
            u[1:-1, 1:-1] = u_new
            v[1:-1, 1:-1] = v_new
        return {
            "eta": eta[1:-1, 1:-1].copy(),
            "u": u[1:-1, 1:-1].copy(),
            "v": v[1:-1, 1:-1].copy(),
        }

    def gather_global_field(self, states: list[dict], name: str = "eta") -> np.ndarray:
        """Stitch per-rank final tiles back into the global field."""
        cfg = self.cfg
        out = np.empty((cfg.ny, cfg.nx))
        for rank, state in enumerate(states):
            ys_sl, xs_sl = self.grid.tile_slices(rank)
            out[ys_sl, xs_sl] = state[name][1:-1, 1:-1]
        return out


def paper_tsunami_config(
    *,
    iterations: int = 100,
    synthetic: bool = True,
    tile_nx: int = 32,
    tile_ny: int = 768,
) -> TsunamiConfig:
    """The §V trace configuration: 32×32 process grid, tall-narrow tiles.

    1024 processes; tile aspect ``ny/nx = 24`` reproduces the paper's
    logging-fraction curve (≈25 % at clusters of 4, ≈13 % at 8, <4 % at 32 —
    Fig. 3). Synthetic payloads by default: at this scale only the byte
    matrix matters.
    """
    return TsunamiConfig(
        px=32,
        py=32,
        nx=32 * tile_nx,
        ny=32 * tile_ny,
        iterations=iterations,
        synthetic=synthetic,
        allreduce_every=25,
    )
