"""Spectral (all-to-all) workload — the §V caveat, made testable.

The paper closes its evaluation with a warning: "The same results are
expected for other HPC applications, **except in the case of all-to-all
communications**" (§V). This workload exercises exactly that regime: a
pencil-decomposed 2-D transform where every iteration performs a global
transpose (``MPI_Alltoall``), so every process exchanges data with every
other and *no* partition of the processes can keep much traffic
intra-cluster — the logged fraction of a k-cluster partition is pinned
near ``1 - 1/k`` regardless of how clever the clustering is.

The compute step is a real separable transform (forward + inverse DFT via
``numpy.fft`` along alternating axes), bit-reproducible against a serial
reference like the stencil apps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.workload import ExecutionMode, resolve_execution
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SpectralConfig:
    """Configuration of the pencil-decomposed transform workload.

    The global ``n × n`` complex field is split into ``nranks`` row pencils;
    each iteration applies an FFT along rows, transposes globally
    (all-to-all), applies an FFT along the (new) rows, damps the spectrum,
    and transforms back — a cut-down spectral solver time step.
    """

    nranks: int = 4
    n: int = 32
    iterations: int = 4
    damping: float = 0.99
    synthetic: bool = False
    # Execution mode (None resolves to ExecutionMode.KERNELS); the
    # boolean pair below is the deprecated one-release shim, rewritten to
    # concrete booleans by resolve_execution so existing readers work.
    mode: ExecutionMode | None = None
    use_waves: bool | None = None
    use_kernels: bool | None = None

    def __post_init__(self) -> None:
        check_positive("nranks", self.nranks)
        check_positive("iterations", self.iterations, strict=False)
        if self.n % self.nranks:
            raise ValueError(
                f"grid side {self.n} not divisible by {self.nranks} ranks"
            )
        mode, waves, kernels = resolve_execution(
            self.mode, self.use_waves, self.use_kernels, owner="SpectralConfig"
        )
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "use_waves", waves)
        object.__setattr__(self, "use_kernels", kernels)

    @property
    def rows_per_rank(self) -> int:
        """Pencil height owned by each rank."""
        return self.n // self.nranks

    @property
    def block_bytes(self) -> int:
        """Bytes of one all-to-all block (complex128)."""
        return self.rows_per_rank * self.rows_per_rank * 16


def initial_field(cfg: SpectralConfig) -> np.ndarray:
    """Deterministic full-grid initial condition (two crossed plane waves)."""
    ys, xs = np.meshgrid(
        np.arange(cfg.n, dtype=np.float64),
        np.arange(cfg.n, dtype=np.float64),
        indexing="ij",
    )
    return (
        np.sin(2.0 * np.pi * 3.0 * xs / cfg.n)
        + 0.5 * np.cos(2.0 * np.pi * 5.0 * ys / cfg.n)
    ).astype(np.complex128)


@dataclass(frozen=True)
class PencilGrid:
    """Minimal grid descriptor (interface parity with the stencil apps)."""

    nranks: int


class SpectralSimulation:
    """Builds rank programs for (and serial references of) one configuration."""

    def __init__(self, cfg: SpectralConfig):
        self.cfg = cfg
        self.grid = PencilGrid(cfg.nranks)

    @property
    def nranks(self) -> int:
        """Number of ranks the workload decomposes over."""
        return self.cfg.nranks

    def make_rank_state(self, rank: int) -> dict:
        """Initial pencil (rows ``rank·h … (rank+1)·h``) for ``rank``."""
        cfg = self.cfg
        h = cfg.rows_per_rank
        field = initial_field(cfg)
        return {"pencil": field[rank * h : (rank + 1) * h].copy(), "iteration": 0}

    @staticmethod
    def _blocks_of(pencil: np.ndarray, nranks: int) -> list[np.ndarray]:
        """Column blocks of a pencil, one per destination rank."""
        return [b.copy() for b in np.array_split(pencil, nranks, axis=1)]

    @staticmethod
    def _transpose_merge(blocks: list[np.ndarray]) -> np.ndarray:
        """Reassemble received blocks into the transposed pencil."""
        return np.concatenate([b.T for b in blocks], axis=1)

    def _transpose_wave(self, comm, *, kind: str):
        """Cached persistent wave of one synthetic all-to-all round.

        Compiled once per (rank, comm): the pairwise-exchange sends and
        explicit-source receives of one transpose, interleaved exactly as
        the per-message loop posts them. Both transpose rounds (and every
        iteration) restart the same wave.
        """
        user = comm.ctx.user
        # The key tuple holds the simulation itself (identity hash), so
        # the cache entry keeps it alive and a recycled id can never
        # resurrect a stale wave compiled for a different simulation.
        key = ("transpose_wave", self, comm.comm_id, kind)
        ops = user.get(key)
        if ops is None:
            wave = []
            recvs = []
            for step in range(1, comm.size):
                dst = (comm.rank + step) % comm.size
                src = (comm.rank - step) % comm.size
                wave.append(
                    comm.send_init(
                        None,
                        dest=dst,
                        tag=777,
                        nbytes=self.cfg.block_bytes,
                        kind=kind,
                    )
                )
                recv = comm.recv_init(source=src, tag=777)
                wave.append(recv)
                recvs.append(recv)
            ops = user[key] = (
                comm.start_all_op(tuple(wave)),
                comm.waitall_op(tuple(recvs)),
            )
        return ops

    def step(self, comm, state: dict, *, kind: str = "transpose"):
        """One iteration: FFT rows → global transpose → FFT rows →
        damp → inverse transform (transpose back included).

        Generator coroutine (``yield from`` it inside a rank program).
        """
        cfg = self.cfg
        if cfg.synthetic:
            # Two all-to-alls per iteration, metadata only. Mirrors the
            # pairwise-exchange algorithm (no self-message), posting every
            # send and explicit-source receive of a round before draining
            # it — the wave path and the per-message reference share this
            # structure, so their stamps, traces and clocks are identical.
            if cfg.use_waves and getattr(comm, "supports_waves", False):
                start, drain = self._transpose_wave(comm, kind=kind)
                for _ in range(2):
                    yield start
                    yield drain
            else:
                for _ in range(2):
                    recvs = []
                    for step in range(1, comm.size):
                        dst = (comm.rank + step) % comm.size
                        src = (comm.rank - step) % comm.size
                        yield from comm.isend(
                            None,
                            dest=dst,
                            tag=777,
                            nbytes=cfg.block_bytes,
                            kind=kind,
                        )
                        recvs.append(
                            (yield from comm.irecv(source=src, tag=777))
                        )
                    yield from comm.waitall(recvs)
            state["iteration"] += 1
            return

        pencil = state["pencil"]
        work = np.fft.fft(pencil, axis=1)
        blocks = yield from comm.alltoall(self._blocks_of(work, comm.size))
        work = self._transpose_merge(blocks)
        work = np.fft.fft(work, axis=1)
        work *= cfg.damping
        work = np.fft.ifft(work, axis=1)
        blocks = yield from comm.alltoall(self._blocks_of(work, comm.size))
        work = self._transpose_merge(blocks)
        state["pencil"] = np.fft.ifft(work, axis=1)
        state["iteration"] += 1

    def make_program(self, *, iterations: int | None = None, hook: Callable | None = None):
        """Rank-program factory (same interface as the stencil apps)."""
        niter = self.cfg.iterations if iterations is None else iterations

        def program(ctx):
            comm = ctx.comm
            if comm.size != self.cfg.nranks:
                raise ValueError(
                    f"communicator size {comm.size} != {self.cfg.nranks}"
                )
            state = (
                {"iteration": 0}
                if self.cfg.synthetic
                else self.make_rank_state(comm.rank)
            )
            if (
                hook is None
                and self.cfg.synthetic
                and self.cfg.use_waves
                and self.cfg.use_kernels
                and getattr(comm, "supports_waves", False)
                and state["iteration"] < niter
            ):
                from repro.simmpi.engine import KernelLoop

                start, drain = self._transpose_wave(comm, kind="transpose")
                # Two transpose rounds per iteration — same wave twice.
                remaining = niter - state["iteration"]
                yield KernelLoop(start, drain, 2 * remaining)
                state["iteration"] = niter
                return state
            while state["iteration"] < niter:
                if hook is not None:
                    yield from hook(ctx, comm, self, state, state["iteration"])
                yield from self.step(comm, state)
            return state

        return program

    def run_serial_reference(self, iterations: int | None = None) -> np.ndarray:
        """Undecomposed reference of the same transform sequence."""
        cfg = self.cfg
        if cfg.synthetic:
            raise ValueError("serial reference requires real payloads")
        niter = cfg.iterations if iterations is None else iterations
        field = initial_field(cfg)
        for _ in range(niter):
            work = np.fft.fft(field, axis=1)
            work = work.T
            work = np.fft.fft(work, axis=1)
            work *= cfg.damping
            work = np.fft.ifft(work, axis=1)
            work = work.T
            field = np.fft.ifft(work, axis=1)
        return field

    def gather_global_field(self, states: list[dict]) -> np.ndarray:
        """Stitch pencils back into the global field."""
        return np.concatenate([s["pencil"] for s in states], axis=0)
