"""2-D heat-diffusion workload: a second stencil application.

The paper argues its results generalize to "stencil applications which are
widely used in HPC" (§III); this Jacobi heat solver is the second data point
— same halo-exchange skeleton as the tsunami code, different physics and a
single field, so per-message volumes differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.stencil import (
    HaloWave,
    ProcessGrid,
    halo_exchange,
    synthetic_halo_exchange,
)
from repro.apps.workload import ExecutionMode, resolve_execution
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class HeatConfig:
    """Configuration of one heat-diffusion run (Dirichlet walls at 0)."""

    px: int = 4
    py: int = 4
    nx: int = 64
    ny: int = 64
    iterations: int = 100
    alpha: float = 0.2  # diffusion number dt*k/dx^2, stable for < 0.25
    synthetic: bool = False
    # Execution mode (None resolves to ExecutionMode.KERNELS); the
    # boolean pair below is the deprecated one-release shim, rewritten to
    # concrete booleans by resolve_execution so existing readers work.
    mode: ExecutionMode | None = None
    use_waves: bool | None = None
    use_kernels: bool | None = None
    hot_spot_temp: float = 100.0

    def __post_init__(self) -> None:
        check_positive("iterations", self.iterations, strict=False)
        check_in_range("alpha", self.alpha, 0.0, 0.25)
        ProcessGrid(self.px, self.py, self.nx, self.ny)
        mode, waves, kernels = resolve_execution(
            self.mode, self.use_waves, self.use_kernels, owner="HeatConfig"
        )
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "use_waves", waves)
        object.__setattr__(self, "use_kernels", kernels)

    @property
    def grid(self) -> ProcessGrid:
        """The process grid implied by this configuration."""
        return ProcessGrid(self.px, self.py, self.nx, self.ny)


def heat_step(t: np.ndarray, alpha: float) -> np.ndarray:
    """One Jacobi step on a padded array; returns the new interior."""
    return t[1:-1, 1:-1] + alpha * (
        t[:-2, 1:-1] + t[2:, 1:-1] + t[1:-1, :-2] + t[1:-1, 2:] - 4.0 * t[1:-1, 1:-1]
    )


def initial_temperature(cfg: HeatConfig, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Hot square in the domain center, evaluated on global coordinates."""
    out = np.zeros_like(xs, dtype=np.float64)
    in_x = (xs >= cfg.nx * 0.4) & (xs < cfg.nx * 0.6)
    in_y = (ys >= cfg.ny * 0.4) & (ys < cfg.ny * 0.6)
    out[in_x & in_y] = cfg.hot_spot_temp
    return out


class HeatSimulation:
    """Builds rank programs for (and serial references of) one configuration."""

    def __init__(self, cfg: HeatConfig):
        self.cfg = cfg
        self.grid = cfg.grid

    def make_rank_state(self, rank: int) -> dict:
        """Initial padded tile for ``rank``."""
        ty, tx = self.grid.tile_ny, self.grid.tile_nx
        ys_sl, xs_sl = self.grid.tile_slices(rank)
        ys, xs = np.meshgrid(
            np.arange(ys_sl.start, ys_sl.stop, dtype=np.float64),
            np.arange(xs_sl.start, xs_sl.stop, dtype=np.float64),
            indexing="ij",
        )
        t = np.zeros((ty + 2, tx + 2))
        t[1:-1, 1:-1] = initial_temperature(self.cfg, ys, xs)
        return {"t": t, "iteration": 0}

    def step(self, comm, state: dict, *, kind: str = "halo"):
        """One parallel iteration (generator coroutine)."""
        use_wave = self.cfg.use_waves and getattr(comm, "supports_waves", False)
        if self.cfg.synthetic:
            if use_wave:
                wave = HaloWave.cached(comm, self.grid, nfields=1, kind=kind)
                yield wave.start_op
                yield wave.drain_op
            else:
                yield from synthetic_halo_exchange(
                    comm, self.grid, nfields=1, itemsize=8, kind=kind
                )
        else:
            t = state["t"]
            if use_wave:
                wave = HaloWave.cached(comm, self.grid, [t], nfields=1, kind=kind)
                yield from wave.exchange()
            else:
                yield from halo_exchange(comm, self.grid, [t], kind=kind)
            # Dirichlet walls: ghost stays 0 on physical boundaries, which
            # the zero-initialized padding already provides.
            t[1:-1, 1:-1] = heat_step(t, self.cfg.alpha)
        state["iteration"] += 1

    def make_program(
        self,
        *,
        iterations: int | None = None,
        hook: Callable | None = None,
        initial_states: list[dict] | None = None,
    ):
        """Rank-program factory; ``hook``/``initial_states`` as in the tsunami app."""
        from repro.apps.tsunami import clone_state

        niter = self.cfg.iterations if iterations is None else iterations

        def program(ctx):
            comm = ctx.comm
            if initial_states is not None:
                state = clone_state(initial_states[comm.rank])
            elif self.cfg.synthetic:
                state = {"iteration": 0}
            else:
                state = self.make_rank_state(comm.rank)
            if (
                hook is None
                and self.cfg.synthetic
                and self.cfg.use_waves
                and self.cfg.use_kernels
                and getattr(comm, "supports_waves", False)
                and state["iteration"] < niter
            ):
                wave = HaloWave.cached(comm, self.grid, nfields=1, kind="halo")
                remaining = niter - state["iteration"]
                yield wave.kernel_loop(remaining)
                state["iteration"] = niter
                return state
            while state["iteration"] < niter:
                if hook is not None:
                    yield from hook(ctx, comm, self, state, state["iteration"])
                yield from self.step(comm, state)
            return state

        return program

    def run_serial_reference(self, iterations: int | None = None) -> np.ndarray:
        """Undecomposed solve; returns the final temperature field."""
        cfg = self.cfg
        if cfg.synthetic:
            raise ValueError("serial reference requires real payloads")
        niter = cfg.iterations if iterations is None else iterations
        ys, xs = np.meshgrid(
            np.arange(cfg.ny, dtype=np.float64),
            np.arange(cfg.nx, dtype=np.float64),
            indexing="ij",
        )
        t = np.zeros((cfg.ny + 2, cfg.nx + 2))
        t[1:-1, 1:-1] = initial_temperature(cfg, ys, xs)
        for _ in range(niter):
            t[1:-1, 1:-1] = heat_step(t, cfg.alpha)
        return t[1:-1, 1:-1].copy()

    def gather_global_field(self, states: list[dict]) -> np.ndarray:
        """Stitch per-rank tiles back into the global field."""
        out = np.empty((self.cfg.ny, self.cfg.nx))
        for rank, state in enumerate(states):
            ys_sl, xs_sl = self.grid.tile_slices(rank)
            out[ys_sl, xs_sl] = state["t"][1:-1, 1:-1]
        return out
