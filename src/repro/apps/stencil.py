"""Generic 2-D domain decomposition and halo exchange.

Both workloads (tsunami shallow-water, heat diffusion) are stencil codes:
each rank owns a rectangular tile of a global grid and exchanges ghost
(halo) rows/columns with its 4 neighbors every iteration — "processes
communicate with their neighbors to share ghosts regions" (§III). This
module holds the decomposition arithmetic and the exchange coroutine; the
physics lives in the per-application modules.

Rank numbering is **row-major**: rank = row · Px + col. With the paper's
placement (consecutive ranks per node), east/west neighbors are ±1 — mostly
intra-node — and north/south neighbors are ±Px — inter-node. That is what
produces the "blue double diagonal" of Fig. 5a/5b.

The exchange posts all four halo sends before the first wait, which is the
shape the engine's batched p2p pricing amortizes: each scheduler batch's
whole send wave (4 messages per rank) is priced in one vectorized
``NetworkModel.transfer_times`` call (see :mod:`repro.simmpi.engine`,
"Batched p2p pricing").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Direction indices, clockwise from north.
NORTH, EAST, SOUTH, WEST = 0, 1, 2, 3
_DIR_NAMES = ("north", "east", "south", "west")

#: Base tag for halo messages; direction is encoded in the low bits.
HALO_TAG_BASE = 1000

# Interior slices sent to each direction / ghost slices filled from it.
# Hoisted to module level: halo_exchange runs once per rank per iteration,
# and rebuilding these dicts dominated its non-engine cost at 1024 ranks.
_SEND_SLICES = {
    NORTH: (slice(1, 2), slice(1, -1)),
    SOUTH: (slice(-2, -1), slice(1, -1)),
    WEST: (slice(1, -1), slice(1, 2)),
    EAST: (slice(1, -1), slice(-2, -1)),
}
_RECV_SLICES = {
    NORTH: (slice(0, 1), slice(1, -1)),
    SOUTH: (slice(-1, None), slice(1, -1)),
    WEST: (slice(1, -1), slice(0, 1)),
    EAST: (slice(1, -1), slice(-1, None)),
}
_OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


@dataclass(frozen=True)
class ProcessGrid:
    """A ``py × px`` grid of ranks over a ``ny × nx`` global cell grid.

    ``px`` counts ranks along x (columns / width), ``py`` along y (rows /
    height). Tiles must divide evenly — the paper's runs are powers of two.
    """

    px: int
    py: int
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.px <= 0 or self.py <= 0:
            raise ValueError(f"process grid must be positive, got {self.px}x{self.py}")
        if self.nx % self.px or self.ny % self.py:
            raise ValueError(
                f"grid {self.nx}x{self.ny} not divisible by process grid "
                f"{self.px}x{self.py}"
            )

    @property
    def nranks(self) -> int:
        """Total rank count ``px · py``."""
        return self.px * self.py

    @property
    def tile_nx(self) -> int:
        """Tile width in cells."""
        return self.nx // self.px

    @property
    def tile_ny(self) -> int:
        """Tile height in cells."""
        return self.ny // self.py

    def coords_of(self, rank: int) -> tuple[int, int]:
        """(row, col) of ``rank`` (row-major numbering)."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return divmod(rank, self.px)

    def rank_at(self, row: int, col: int) -> int:
        """Rank at grid position (row, col)."""
        if not (0 <= row < self.py and 0 <= col < self.px):
            raise ValueError(f"coords ({row}, {col}) outside {self.py}x{self.px}")
        return row * self.px + col

    def neighbors_of(self, rank: int) -> tuple[int | None, int | None, int | None, int | None]:
        """(north, east, south, west) neighbor ranks, ``None`` at walls."""
        row, col = self.coords_of(rank)
        return (
            self.rank_at(row - 1, col) if row > 0 else None,
            self.rank_at(row, col + 1) if col < self.px - 1 else None,
            self.rank_at(row + 1, col) if row < self.py - 1 else None,
            self.rank_at(row, col - 1) if col > 0 else None,
        )

    def tile_slices(self, rank: int) -> tuple[slice, slice]:
        """Global (y, x) index slices of ``rank``'s tile."""
        row, col = self.coords_of(rank)
        ty, tx = self.tile_ny, self.tile_nx
        return (slice(row * ty, (row + 1) * ty), slice(col * tx, (col + 1) * tx))


def halo_exchange(
    comm,
    grid: ProcessGrid,
    fields: list[np.ndarray],
    *,
    synthetic: bool = False,
    tag_base: int = HALO_TAG_BASE,
    kind: str = "halo",
):
    """Exchange 1-cell-deep ghost layers of padded tiles with 4 neighbors.

    Every array in ``fields`` must be a padded tile of shape
    ``(tile_ny + 2, tile_nx + 2)``; ghost layers of all fields travel in one
    message per direction (as real stencil codes pack them).

    In ``synthetic`` mode no data moves — messages carry only the byte count
    — which is how 1024-rank traces stay cheap; the engine and tracer see
    exactly the same messages either way.

    This is a generator coroutine: call with ``yield from`` inside a rank
    program. Message tags encode the direction so the four concurrent
    exchanges never cross-match.
    """
    rank = comm.rank
    neighbors = grid.neighbors_of(rank)
    ty, tx = grid.tile_ny, grid.tile_nx
    for f in fields:
        if f.shape != (ty + 2, tx + 2):
            raise ValueError(
                f"field shape {f.shape} != padded tile ({ty + 2}, {tx + 2})"
            )

    send_slices = _SEND_SLICES
    recv_slices = _RECV_SLICES
    opposite = _OPPOSITE
    itemsize = fields[0].itemsize
    edge_bytes = {
        NORTH: len(fields) * tx * itemsize,
        SOUTH: len(fields) * tx * itemsize,
        EAST: len(fields) * ty * itemsize,
        WEST: len(fields) * ty * itemsize,
    }

    recv_reqs: list[tuple[int, object]] = []
    for direction in (NORTH, EAST, SOUTH, WEST):
        neighbor = neighbors[direction]
        if neighbor is None:
            continue
        # My message toward `direction` arrives at the neighbor labeled as
        # coming from the opposite direction.
        send_tag = tag_base + direction
        recv_tag = tag_base + opposite[direction]
        if synthetic:
            payload = None
        else:
            payload = np.concatenate(
                [f[send_slices[direction]].ravel() for f in fields]
            )
        yield from comm.isend(
            payload,
            dest=neighbor,
            tag=send_tag,
            nbytes=edge_bytes[direction],
            kind=kind,
        )
        req = yield from comm.irecv(source=neighbor, tag=recv_tag)
        recv_reqs.append((direction, req))

    for direction, req in recv_reqs:
        payload = yield from comm.wait(req)
        if synthetic:
            continue
        sl = recv_slices[direction]
        n = fields[0][sl].size
        for i, f in enumerate(fields):
            f[sl] = payload[i * n : (i + 1) * n].reshape(f[sl].shape)


def halo_wave_init(
    comm,
    grid: ProcessGrid,
    rank: int | None = None,
    *,
    nfields: int = 1,
    itemsize: int = 8,
    tag_base: int = HALO_TAG_BASE,
    kind: str = "halo",
):
    """Build the persistent-request halo wave of one rank (metadata-only).

    Returns ``(wave, recvs)``: ``wave`` is the full posting wave (sends and
    receives interleaved exactly like :func:`synthetic_halo_exchange` posts
    them, so matching stamps, traces and clocks come out identical) and
    ``recvs`` the receive handles in completion-wait order. Steady-state
    usage pairs it with the communicator's reusable ops::

        wave, recvs = halo_wave_init(comm, grid, nfields=3)
        start = comm.start_all_op(wave)
        drain = comm.waitall_op(recvs)
        for _ in range(iterations):
            yield start
            yield drain

    This is MPI's persistent-communication shape (``MPI_Send_init`` /
    ``MPI_Startall``): one engine interaction posts the whole wave and one
    drains it, which is what makes the wave benchmark p2p-bound instead of
    generator-bound. (Thin wrapper over :class:`HaloWave` — the single
    owner of the posting-order recipe.)
    """
    wave = HaloWave(
        comm,
        grid,
        None,
        rank=rank,
        nfields=nfields,
        itemsize=itemsize,
        tag_base=tag_base,
        kind=kind,
    )
    return wave.requests, wave.recvs


class HaloWave:
    """Compiled persistent-request halo exchange of one (comm, fields) pair.

    Construction compiles the rank's per-iteration exchange once — the
    persistent send/recv recipes interleaved exactly as
    :func:`halo_exchange` / :func:`synthetic_halo_exchange` post them, so
    matching stamps, traces and clocks come out identical to the
    per-message reference — plus the reusable ``start_all_op`` /
    ``waitall_op`` engine ops. Each steady-state iteration then costs two
    engine yields (:attr:`start_op`, :attr:`drain_op`) instead of one
    interaction per message.

    Two payload modes, mirroring the exchange functions:

    * *synthetic* (``fields=None``) — messages carry byte counts only;
      ``nfields``/``itemsize`` size them;
    * *real* (``fields`` given) — each direction owns a persistent pack
      buffer; :meth:`exchange` gathers the current ghost slices into it
      before the start (the engine's buffered-send capture then snapshots
      the buffer, exactly like the fresh ``np.concatenate`` the
      per-message path sends) and scatters received payloads back into
      the ghost layers after the drain.

    The wave is bound to the communicator and field arrays it was built
    with; stencil codes mutate their tiles in place, so one wave per rank
    per run is the expected shape (see ``TsunamiSimulation.step``).
    """

    __slots__ = (
        "comm",
        "grid",
        "fields",
        "requests",
        "recvs",
        "start_op",
        "drain_op",
        "_pack",
        "_unpack",
    )

    def __init__(
        self,
        comm,
        grid: ProcessGrid,
        fields: list[np.ndarray] | None = None,
        *,
        rank: int | None = None,
        nfields: int = 1,
        itemsize: int = 8,
        tag_base: int = HALO_TAG_BASE,
        kind: str = "halo",
    ):
        self.comm = comm
        self.grid = grid
        self.fields = fields
        if rank is None:
            rank = comm.rank
        neighbors = grid.neighbors_of(rank)
        ty, tx = grid.tile_ny, grid.tile_nx
        if fields is not None:
            nfields = len(fields)
            itemsize = fields[0].itemsize
            for f in fields:
                if f.shape != (ty + 2, tx + 2):
                    raise ValueError(
                        f"field shape {f.shape} != padded tile "
                        f"({ty + 2}, {tx + 2})"
                    )
        edge_cells = {NORTH: tx, SOUTH: tx, EAST: ty, WEST: ty}
        wave = []
        recvs = []
        # Per-direction (buffer, send slices) and (ghost slices) tables for
        # the real-payload pack/unpack passes, in posting/wait order.
        self._pack: list[tuple[np.ndarray, tuple[slice, slice]]] = []
        self._unpack: list[tuple[slice, slice]] = []
        for direction in (NORTH, EAST, SOUTH, WEST):
            neighbor = neighbors[direction]
            if neighbor is None:
                continue
            nbytes = nfields * edge_cells[direction] * itemsize
            if fields is None:
                payload = None
            else:
                payload = np.empty(
                    nfields * edge_cells[direction], dtype=fields[0].dtype
                )
                self._pack.append((payload, _SEND_SLICES[direction]))
                self._unpack.append(_RECV_SLICES[direction])
            wave.append(
                comm.send_init(
                    payload,
                    dest=neighbor,
                    tag=tag_base + direction,
                    nbytes=nbytes,
                    kind=kind,
                )
            )
            recv = comm.recv_init(
                source=neighbor, tag=tag_base + _OPPOSITE[direction]
            )
            wave.append(recv)
            recvs.append(recv)
        self.requests = tuple(wave)
        self.recvs = recvs
        self.start_op = comm.start_all_op(self.requests)
        self.drain_op = comm.waitall_op(recvs)

    @classmethod
    def cached(
        cls,
        comm,
        grid: ProcessGrid,
        fields: list[np.ndarray] | None = None,
        *,
        nfields: int = 1,
        itemsize: int = 8,
        tag_base: int = HALO_TAG_BASE,
        kind: str = "halo",
    ) -> "HaloWave":
        """Compile-once accessor for steady-state loops.

        The wave is cached in the communicator's ``ctx.user`` dict, keyed
        by the caller-visible shape (communicator, tag space, kind) —
        scoped to one engine run — and recompiled when the bound field
        list changes identity (a caller stepping a different state through
        the same communicator). The cache entry holds the wave (and the
        wave its requests), so nothing here can be resurrected under a
        recycled ``id``.
        """
        user = comm.ctx.user
        key = ("halo_wave", comm.comm_id, tag_base, kind, nfields, itemsize)
        wave = user.get(key)
        if (
            wave is None
            or wave.grid != grid
            or (wave.fields is None) != (fields is None)
            or (
                fields is not None
                and (
                    len(wave.fields) != len(fields)
                    or any(a is not b for a, b in zip(wave.fields, fields))
                )
            )
        ):
            wave = user[key] = cls(
                comm,
                grid,
                fields,
                nfields=nfields,
                itemsize=itemsize,
                tag_base=tag_base,
                kind=kind,
            )
        return wave

    def exchange(self):
        """One halo exchange (generator coroutine — ``yield from`` it).

        Synthetic waves should prefer yielding :attr:`start_op` /
        :attr:`drain_op` directly from the caller's loop (no subgenerator
        frame); this coroutine packs/unpacks real payloads around them.
        """
        fields = self.fields
        if fields is not None:
            for buf, sl in self._pack:
                np.concatenate([f[sl].ravel() for f in fields], out=buf)
        yield self.start_op
        payloads = yield self.drain_op
        if fields is not None:
            for payload, sl in zip(payloads, self._unpack):
                n = fields[0][sl].size
                for i, f in enumerate(fields):
                    f[sl] = payload[i * n : (i + 1) * n].reshape(f[sl].shape)

    def kernel_loop(self, iterations: int, colls: tuple = ()):
        """A :class:`~repro.simmpi.engine.KernelLoop` op repeating this
        wave ``iterations`` times (synthetic waves only — the kernel never
        touches payload buffers, so packing fields would be skipped)."""
        from repro.simmpi.engine import KernelLoop

        return KernelLoop(self.start_op, self.drain_op, iterations, colls)


def synthetic_halo_exchange(
    comm,
    grid: ProcessGrid,
    *,
    nfields: int = 1,
    itemsize: int = 8,
    tag_base: int = HALO_TAG_BASE,
    kind: str = "halo",
):
    """Metadata-only halo exchange: same messages and byte counts as
    :func:`halo_exchange`, no arrays. Used for large-scale trace collection
    where only the communication matrix matters.
    """
    rank = comm.rank
    neighbors = grid.neighbors_of(rank)
    opposite = _OPPOSITE
    edge_cells = {
        NORTH: grid.tile_nx,
        SOUTH: grid.tile_nx,
        EAST: grid.tile_ny,
        WEST: grid.tile_ny,
    }
    recv_reqs = []
    for direction in (NORTH, EAST, SOUTH, WEST):
        neighbor = neighbors[direction]
        if neighbor is None:
            continue
        yield from comm.isend(
            None,
            dest=neighbor,
            tag=tag_base + direction,
            nbytes=nfields * edge_cells[direction] * itemsize,
            kind=kind,
        )
        req = yield from comm.irecv(
            source=neighbor, tag=tag_base + opposite[direction]
        )
        recv_reqs.append(req)
    for req in recv_reqs:
        yield from comm.wait(req)
