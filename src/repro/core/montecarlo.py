"""Monte-Carlo validation of the analytic four-dimensional scores.

The Table II pipeline computes the recovery and reliability columns from
closed-form models. This module re-derives both *empirically*: sample
failure events from the same taxonomy, apply each to the clustering, and
measure the restart fraction and catastrophic rate directly. The analytic
and sampled values must agree within sampling error — a cross-validation
that guards the whole evaluation against model-implementation drift.

Performance notes
-----------------
:func:`montecarlo_scores` is fully batched: the estimator draws every
event kind, victim process, cascade length and run start in one set of
NumPy calls (:meth:`MonteCarloEstimator.sample_events
<repro.failures.catastrophic.MonteCarloEstimator.sample_events>`), and
scoring is pure array indexing into the precomputed per-(clustering,
placement) lookup tables of :mod:`repro.core.tables` — restart fraction
and catastrophic verdict of every possible contiguous node run are
computed once and reused across samples, seeds and strategies. The
per-event loop survives as :func:`montecarlo_scores_scalar`, the reference
implementation the equivalence tests compare against; it is 10–100×
slower. Profile with ``benchmarks/record_bench.py``, which times both
paths and records samples/sec into ``BENCH_montecarlo.json``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.clustering.base import Clustering
from repro.core.scenario import Scenario
from repro.core.tables import restart_tables
from repro.failures.catastrophic import (
    CatastrophicModel,
    MonteCarloEstimator,
    rs_half_tolerance,
)
from repro.models.recovery_cost import restart_set_for_nodes
from repro.util.rng import resolve_rng


@dataclass(frozen=True)
class MonteCarloScores:
    """Empirical counterparts of two FourDimScore columns."""

    name: str
    n_samples: int
    restart_fraction_mean: float
    restart_fraction_p95: float
    catastrophic_rate: float
    soft_error_share: float

    def summary(self) -> str:
        """One-line report for benches and examples."""
        return (
            f"{self.name}: restart mean {100 * self.restart_fraction_mean:.2f}% "
            f"(p95 {100 * self.restart_fraction_p95:.2f}%), "
            f"catastrophic rate {self.catastrophic_rate:.3g} "
            f"over {self.n_samples} sampled failures"
        )


def _scores_from_samples(
    name: str, restart_fractions: np.ndarray, catastrophic: int, soft: int
) -> MonteCarloScores:
    n_samples = restart_fractions.size
    return MonteCarloScores(
        name=name,
        n_samples=n_samples,
        restart_fraction_mean=float(restart_fractions.mean()),
        restart_fraction_p95=float(np.quantile(restart_fractions, 0.95)),
        catastrophic_rate=catastrophic / n_samples,
        soft_error_share=soft / n_samples,
    )


def analytic_restart_mixture(scenario: Scenario, clustering: Clustering) -> float:
    """Analytic expected restart fraction under the full event mixture.

    Soft errors restart one cluster (size-weighted mean of the process's
    own cluster), node events ~ the single-node expectation (multi-node
    cascades are vanishingly rare) — the closed form the sampled
    ``restart_fraction_mean`` must converge to.
    """
    from repro.models.recovery_cost import expected_restart_fraction

    p_soft = scenario.taxonomy.p_soft
    mean_cluster = float(
        (clustering.l1_sizes() ** 2).sum() / clustering.n**2
    )
    analytic_node = expected_restart_fraction(clustering, scenario.placement)
    return p_soft * mean_cluster + (1 - p_soft) * analytic_node


def montecarlo_scores(
    scenario: Scenario,
    clustering: Clustering,
    *,
    n_samples: int = 2000,
    rng=None,
    tolerance=rs_half_tolerance,
) -> MonteCarloScores:
    """Deprecated loose-kwarg form of the batched Monte-Carlo evaluation.

    .. deprecated::
        Construct a :class:`repro.core.query.ReliabilityQuery` with
        ``metric="montecarlo"`` (:func:`repro.core.query.query_for`
        converts live scenario/clustering objects) and call
        :func:`repro.core.query.run_query`; under an integer seed the
        query path draws and scores the identical event stream. This shim
        survives one release.
    """
    warnings.warn(
        "montecarlo_scores(...) is deprecated; build a "
        "ReliabilityQuery(metric='montecarlo') via repro.core.query and "
        "call run_query (bit-identical under an integer seed)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _montecarlo_scores(
        scenario, clustering, n_samples=n_samples, rng=rng, tolerance=tolerance
    )


def _montecarlo_scores(
    scenario: Scenario,
    clustering: Clustering,
    *,
    n_samples: int = 2000,
    rng=None,
    tolerance=rs_half_tolerance,
) -> MonteCarloScores:
    """Sample failures and measure restart fraction + catastrophic rate.

    Soft errors roll back the process's own L1 cluster; node events roll
    back the union of the affected clusters (exactly the protocol's
    restart-set rule, :func:`repro.models.restart_set_for_nodes`). The
    whole batch is drawn and scored with a handful of array operations —
    see the module's performance notes. ``tolerance`` must match the
    erasure configuration of the analytic model being validated (e.g.
    ``xor_tolerance`` when the evaluator scores XOR parity).

    (Internal engine behind the deprecated :func:`montecarlo_scores` shim
    and the query API's ``metric="montecarlo"``; unlike a query it still
    accepts live ``numpy`` generators as ``rng``.)
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    gen = resolve_rng(rng)
    model = CatastrophicModel(
        scenario.placement, taxonomy=scenario.taxonomy, tolerance=tolerance
    )
    sampler = MonteCarloEstimator(model, rng=gen)

    batch = sampler.sample_events(n_samples)
    tables = restart_tables(clustering, scenario.placement)
    restart_fractions = tables.batch_restart_fractions(batch)
    catastrophic = int(model.events_are_catastrophic(clustering, batch).sum())
    return _scores_from_samples(
        clustering.name, restart_fractions, catastrophic, int(batch.is_soft.sum())
    )


def montecarlo_scores_scalar(
    scenario: Scenario,
    clustering: Clustering,
    *,
    n_samples: int = 2000,
    rng=None,
    tolerance=rs_half_tolerance,
) -> MonteCarloScores:
    """Per-event reference implementation of :func:`montecarlo_scores`.

    Walks every sampled event through the scalar predicates — the original
    sample-then-measure loop. Kept (and exercised by the equivalence tests)
    as the ground truth the batched engine must reproduce; use the batched
    path everywhere else.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    gen = resolve_rng(rng)
    model = CatastrophicModel(
        scenario.placement, taxonomy=scenario.taxonomy, tolerance=tolerance
    )
    sampler = MonteCarloEstimator(model, rng=gen)

    restart_fractions = np.empty(n_samples)
    catastrophic = 0
    soft = 0
    n = clustering.n
    for i in range(n_samples):
        event = sampler.sample_event()
        if event.kind == "soft":
            soft += 1
            members = clustering.l1_members(clustering.l1_of(event.process))
            restart_fractions[i] = members.size / n
        else:
            restart = restart_set_for_nodes(
                clustering, scenario.placement, event.nodes
            )
            restart_fractions[i] = restart.size / n
        if model.event_is_catastrophic(clustering, event):
            catastrophic += 1

    return _scores_from_samples(
        clustering.name, restart_fractions, catastrophic, soft
    )


def validate_against_analytic(
    scenario: Scenario,
    clustering: Clustering,
    *,
    n_samples: int = 2000,
    rng=None,
    restart_tolerance: float = 0.02,
    tolerance=rs_half_tolerance,
) -> dict[str, float]:
    """Run the Monte Carlo and compare with the analytic models.

    Returns the absolute deviations; raises ``AssertionError`` when the
    sampled restart fraction strays beyond ``restart_tolerance`` of the
    analytic node-failure expectation (adjusted for the soft-error mix).
    """
    mc = _montecarlo_scores(
        scenario, clustering, n_samples=n_samples, rng=rng, tolerance=tolerance
    )
    model = CatastrophicModel(
        scenario.placement, taxonomy=scenario.taxonomy, tolerance=tolerance
    )
    analytic_cat = model.probability(clustering)
    analytic_mixture = analytic_restart_mixture(scenario, clustering)

    deviation = abs(mc.restart_fraction_mean - analytic_mixture)
    if deviation > restart_tolerance:
        raise AssertionError(
            f"Monte-Carlo restart {mc.restart_fraction_mean:.4f} deviates "
            f"{deviation:.4f} from analytic {analytic_mixture:.4f}"
        )
    return {
        "restart_deviation": deviation,
        "analytic_restart": analytic_mixture,
        "mc_restart": mc.restart_fraction_mean,
        "analytic_catastrophic": analytic_cat,
        "mc_catastrophic": mc.catastrophic_rate,
    }
