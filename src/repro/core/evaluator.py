"""Four-dimensional clustering evaluation — the machinery behind Table II.

Given a :class:`~repro.core.scenario.Scenario`, the evaluator scores any
clustering along the paper's four axes:

1. message-logging overhead — fraction of application bytes crossing L1
   boundaries (:mod:`repro.models.logging_overhead`);
2. recovery cost — expected fraction of processes rolled back by a
   uniformly random single-node failure (:mod:`repro.models.recovery_cost`);
3. encoding time — s/GB for the clustering's L2 size, from the calibrated
   linear law (:mod:`repro.models.encoding_time`);
4. reliability — P[catastrophic] from the failure taxonomy
   (:mod:`repro.failures.catastrophic`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.base import Clustering
from repro.clustering.hierarchical import hierarchical_clustering
from repro.clustering.strategies import (
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core.scenario import Scenario
from repro.core.tables import restart_tables
from repro.failures.catastrophic import CatastrophicModel, rs_half_tolerance
from repro.models.baseline import PAPER_BASELINE, BaselineRequirements, FourDimScore
from repro.models.encoding_time import EncodingTimeModel
from repro.util.tables import AsciiTable


@dataclass
class EvaluationReport:
    """Scores for a set of clusterings plus baseline verdicts."""

    scores: list[FourDimScore]
    baseline: BaselineRequirements

    def satisfying(self) -> list[str]:
        """Names of clusterings inside the baseline polygon on all axes."""
        return [s.name for s in self.scores if self.baseline.satisfied(s)]

    def score_named(self, name: str) -> FourDimScore:
        """Look up one clustering's score."""
        for s in self.scores:
            if s.name == name:
                return s
        raise KeyError(f"no score named {name!r}")

    def normalized(self) -> dict[str, dict[str, float]]:
        """Fig. 5c radar data: per clustering, per axis, score/baseline."""
        return {s.name: self.baseline.normalized(s) for s in self.scores}

    def to_dict(self) -> dict:
        """JSON-serializable form (for CI artifacts and regression diffs)."""
        return {
            "baseline": {
                "max_logging_fraction": self.baseline.max_logging_fraction,
                "max_encoding_s_per_gb": self.baseline.max_encoding_s_per_gb,
                "max_prob_catastrophic": self.baseline.max_prob_catastrophic,
                "max_recovery_fraction": self.baseline.max_recovery_fraction,
            },
            "scores": [
                {
                    "name": s.name,
                    "logging_fraction": s.logging_fraction,
                    "recovery_fraction": s.recovery_fraction,
                    "encoding_s_per_gb": s.encoding_s_per_gb,
                    "prob_catastrophic": s.prob_catastrophic,
                    "satisfies_baseline": self.baseline.satisfied(s),
                }
                for s in self.scores
            ],
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as indented JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def to_table(self, *, title: str = "Clustering comparison (Table II)") -> str:
        """Render the Table II-style comparison."""
        table = AsciiTable(
            [
                "Clustering method",
                "Msg.Log. overhead",
                "Recovery cost",
                "Encoding time (1GB)",
                "Prob. cat. failure",
                "meets baseline",
            ],
            title=title,
        )
        for s in self.scores:
            table.add_row(s.as_row() + ["yes" if self.baseline.satisfied(s) else "NO"])
        return table.render()


class ClusteringEvaluator:
    """Scores clusterings on one scenario; builds the paper's strategy set.

    Scoring goes through the precomputed per-(clustering, placement) lookup
    tables (:mod:`repro.core.tables`), which are cached and keyed by the
    scenario placement and ``tolerance`` — a Table II sweep over many
    strategies computes each placement-derived table exactly once, and
    repeated evaluations of the same clustering are pure lookups.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        baseline: BaselineRequirements = PAPER_BASELINE,
        encoding_model: EncodingTimeModel | None = None,
        tolerance=rs_half_tolerance,
    ):
        self.scenario = scenario
        self.baseline = baseline
        self.encoding_model = encoding_model or EncodingTimeModel()
        self.tolerance = tolerance
        self.catastrophic = CatastrophicModel(
            scenario.placement, taxonomy=scenario.taxonomy, tolerance=tolerance
        )

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "ClusteringEvaluator":
        """Alias constructor matching the README quickstart."""
        return cls(scenario)

    # -- scoring --------------------------------------------------------------

    def typical_l2_size(self, clustering: Clustering) -> int:
        """Median L2 cluster size (the encoding-time driver)."""
        return int(np.median(clustering.l2_sizes()))

    def evaluate(self, clustering: Clustering) -> FourDimScore:
        """Score one clustering along all four dimensions."""
        scenario = self.scenario
        recovery = restart_tables(clustering, scenario.placement)
        return FourDimScore(
            name=clustering.name,
            logging_fraction=scenario.graph.logged_fraction(
                clustering.l1_labels
            ),
            recovery_fraction=float(recovery.node_restart_fraction.mean()),
            encoding_s_per_gb=self.encoding_model.seconds_per_gb(
                self.typical_l2_size(clustering)
            ),
            prob_catastrophic=self.catastrophic.probability(clustering),
        )

    # -- the paper's strategy set -------------------------------------------------

    def paper_strategies(self) -> list[Clustering]:
        """The four Table II rows: naïve-32, size-guided-8, distributed-16,
        hierarchical (L1 ≥ 4 nodes, L2 stripes of 4)."""
        scenario = self.scenario
        n = scenario.placement.nranks
        return [
            naive_clustering(n, 32),
            size_guided_clustering(n, 8),
            distributed_clustering(scenario.placement, 16),
            hierarchical_clustering(
                scenario.node_comm_graph(),
                scenario.placement,
                cost=scenario.partition_cost,
            ),
        ]

    def evaluate_all(
        self, clusterings: list[Clustering] | None = None
    ) -> EvaluationReport:
        """Score a set of clusterings (default: the paper's four)."""
        clusterings = clusterings or self.paper_strategies()
        return EvaluationReport(
            scores=[self.evaluate(c) for c in clusterings],
            baseline=self.baseline,
        )
